//! The seven design strategies of the paper's evaluation (§6), behind one
//! dispatch point.

use crate::{af, deep, dumc, mc, mcmr, shallow, undr};
use colorist_er::ErGraph;
use colorist_mct::{MctSchema, SchemaError};
use std::fmt;

/// A schema design strategy. The first three are single-color XML (§4), the
/// rest multi-colored MCT (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Figure 4: single color, association recoverable, not node normal.
    Deep,
    /// Figure 3: single color, node normal, maximal structural coverage.
    Af,
    /// Figure 2: single color, node normal, not association recoverable.
    Shallow,
    /// Algorithm MC (Figure 7): NN + EN + AR.
    En,
    /// Minimal color maximal recoverable (§5.2 heuristic): NN + AR, local
    /// color minimality, best-effort DR.
    Mcmr,
    /// Algorithm DUMC (§5.2): NN + AR + DR (Figure 5 for TPC-W).
    Dr,
    /// §6: DR with selective in-color duplication (not NN).
    Undr,
}

impl Strategy {
    /// The evaluation's presentation order (Table 1 / Figures 8–11).
    pub const ALL: [Strategy; 7] = [
        Strategy::Deep,
        Strategy::Af,
        Strategy::Shallow,
        Strategy::En,
        Strategy::Mcmr,
        Strategy::Dr,
        Strategy::Undr,
    ];

    /// The six strategies used on the ER collection (Figures 12–14 exclude
    /// UNDR, "since there were too many subjective ways in which to
    /// unnormalize each schema").
    pub const COLLECTION: [Strategy; 6] = [
        Strategy::Deep,
        Strategy::Af,
        Strategy::Shallow,
        Strategy::En,
        Strategy::Mcmr,
        Strategy::Dr,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Deep => "DEEP",
            Strategy::Af => "AF",
            Strategy::Shallow => "SHALLOW",
            Strategy::En => "EN",
            Strategy::Mcmr => "MCMR",
            Strategy::Dr => "DR",
            Strategy::Undr => "UNDR",
        }
    }

    /// Parse a label (case-insensitive).
    pub fn parse(s: &str) -> Option<Strategy> {
        Self::ALL.iter().copied().find(|x| x.label().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Design a schema for `graph` with the given strategy.
///
/// Debug builds run the static schema linter ([`colorist_mct::lint`]) and
/// the `S007` property-checker cross-validation on every designed schema.
pub fn design(graph: &ErGraph, strategy: Strategy) -> Result<MctSchema, SchemaError> {
    let _span = colorist_trace::span("design", format!("design:{strategy}"));
    let schema = match strategy {
        Strategy::Deep => deep::deep(graph),
        Strategy::Af => af::af(graph),
        Strategy::Shallow => shallow::shallow(graph),
        Strategy::En => mc::mc(graph),
        Strategy::Mcmr => mcmr::mcmr(graph),
        Strategy::Dr => dumc::dumc(graph),
        Strategy::Undr => undr::undr(graph),
    }?;
    #[cfg(debug_assertions)]
    {
        let diags = colorist_mct::lint::lint_schema(graph, &schema);
        debug_assert!(
            diags.is_empty(),
            "{strategy} schema failed lint:\n{}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
        let elig = colorist_er::EligibleAssociations::enumerate_default(graph);
        let xv = crate::properties::cross_validate(&schema, graph, &elig);
        debug_assert!(xv.is_empty(), "{strategy} property cross-validation:\n{}", xv.join("\n"));
    }
    Ok(schema)
}

/// Design all seven schemas (the per-diagram schema family of §6).
pub fn design_all(graph: &ErGraph) -> Result<Vec<(Strategy, MctSchema)>, SchemaError> {
    Strategy::ALL.iter().map(|&s| design(graph, s).map(|schema| (s, schema))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn labels_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.label()), Some(s));
            assert_eq!(Strategy::parse(&s.label().to_lowercase()), Some(s));
        }
        assert_eq!(Strategy::parse("nope"), None);
    }

    #[test]
    fn all_strategies_design_tpcw() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let all = design_all(&g).unwrap();
        assert_eq!(all.len(), 7);
        for (s, schema) in &all {
            assert_eq!(schema.strategy, s.label());
            assert_eq!(schema.diagram, "tpcw");
        }
        // paper's Table 1 color counts: DEEP/AF/SHALLOW 1, EN/MCMR 2
        let colors: Vec<(Strategy, usize)> =
            all.iter().map(|(s, sch)| (*s, sch.color_count())).collect();
        for (s, c) in &colors {
            match s {
                Strategy::Deep | Strategy::Af | Strategy::Shallow => assert_eq!(*c, 1, "{s}"),
                Strategy::En | Strategy::Mcmr => assert_eq!(*c, 2, "{s}"),
                Strategy::Dr | Strategy::Undr => assert!(*c >= 2, "{s}"),
            }
        }
    }

    #[test]
    fn sixty_six_schemas_like_the_paper() {
        // §6.2: 11 diagrams x 6 strategies = 66 schemas (paper excludes
        // UNDR). With TPC-W the collection has 12; we check the 6-strategy
        // sweep completes everywhere.
        let mut count = 0;
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            for s in Strategy::COLLECTION {
                design(&g, s).unwrap_or_else(|e| panic!("{name}/{s}: {e}"));
                count += 1;
            }
        }
        assert_eq!(count, 72);
    }
}

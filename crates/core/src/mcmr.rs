//! The **MCMR** heuristic (§5.2): *minimal color, maximal recoverable*.
//!
//! Start from the MCT schema produced by Algorithm MC (which is locally
//! color-minimal) and add as many edges as possible to each colored tree,
//! thereby giving up edge normal form in exchange for direct
//! recoverability. The color count never grows, node normal form is
//! preserved (a grown color never repeats a node type), and the extra edge
//! realizations become ICICs.
//!
//! MCMR is the paper's recommended default: on their evaluation it matches
//! DR's query metrics with fewer colors and less storage. It does *not*
//! always achieve complete direct recoverability — the second §5.2 toy graph
//! is the counterexample, reproduced in the tests.

use crate::forest::Forest;
use crate::mc;
use colorist_er::ErGraph;
use colorist_mct::{MctSchema, MctSchemaBuilder, SchemaError};

/// Build the MCMR schema: Algorithm MC, then maximal edge growth per color.
pub fn mcmr(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    let base = mc::mc(graph)?;
    grow(graph, &base, "MCMR")
}

/// Grow every color of `base` to a maximal functional forest.
pub(crate) fn grow(
    graph: &ErGraph,
    base: &MctSchema,
    strategy: &str,
) -> Result<MctSchema, SchemaError> {
    let mut b = MctSchemaBuilder::new(&graph.name, strategy);
    for color in base.colors() {
        let mut f = Forest::from_schema(base, color, graph.node_count());
        f.extend_maximal(graph);
        let c = b.add_color();
        f.emit(&mut b, c);
    }
    b.finish(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::{catalog, EligibleAssociations};

    #[test]
    fn mcmr_keeps_mc_color_count_and_nn_ar() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let base = mc::mc(&g).unwrap();
            let s = mcmr(&g).unwrap();
            assert_eq!(s.color_count(), base.color_count(), "{name}: color minimality");
            let elig = EligibleAssociations::enumerate(&g, 3);
            let p = properties::check(&s, &g, &elig);
            assert!(p.node_normal, "{name}");
            assert!(p.association_recoverable, "{name}");
        }
    }

    #[test]
    fn mcmr_fixes_the_first_toy_graph() {
        // MC leaves one of (a,d)/(c,d) indirect; MCMR covers both by
        // realizing b->r3->d in both colors (giving up EN).
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let base = mc::mc(&g).unwrap();
        assert!(!properties::check(&base, &g, &elig).direct_recoverable);
        let s = mcmr(&g).unwrap();
        let p = properties::check(&s, &g, &elig);
        assert!(p.direct_recoverable, "\n{}", s.render(&g));
        assert!(!p.edge_normal, "DR here costs EN");
        assert!(p.node_normal);
        assert_eq!(p.colors, 2);
    }

    #[test]
    fn mcmr_cannot_fix_the_second_toy_graph() {
        // §5.2: "an MCT schema needs to have two colors to support complete
        // direct recoverability on this ER graph, which cannot be obtained
        // by any MCMR-style approach."
        let g = ErGraph::from_diagram(&catalog::toy_dumc()).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let s = mcmr(&g).unwrap();
        let p = properties::check(&s, &g, &elig);
        assert!(!p.direct_recoverable, "\n{}", s.render(&g));
        // the uncovered association involves the 1:1 b--c pair
        let missing = properties::uncovered_associations(&s, &elig);
        assert!(!missing.is_empty());
    }

    #[test]
    fn mcmr_icics_nonempty_when_it_actually_grew() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = mcmr(&g).unwrap();
        assert!(!s.icics().is_empty(), "TPC-W growth must duplicate some edge");
    }

    #[test]
    fn deterministic() {
        let g = ErGraph::from_diagram(&catalog::derby()).unwrap();
        assert_eq!(mcmr(&g).unwrap().render(&g), mcmr(&g).unwrap().render(&g));
    }
}

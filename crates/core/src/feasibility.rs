//! Theorem 4.1: when can a *single-color* XML schema achieve both node
//! normal form and association recoverability?
//!
//! > Let `G` be an arbitrary ER graph. `G` can be translated into an
//! > equivalent single-color XML schema satisfying both AR and NN iff
//! > (i) `G` is a forest; (ii) `G` contains no many-many or k-ary (k ≥ 3)
//! > relationship types; and (iii) no entity type is on the "many" side of
//! > more than one one-many relationship type.
//!
//! (k-ary types are already excluded by the *simplified* precondition of
//! [`colorist_er::ErGraph`]; the checker reports them through the
//! simplification layer instead.)
//!
//! The checker is decoupled from the constructive algorithms so tests can
//! confirm both directions of the theorem: when [`Feasibility::feasible`]
//! holds, the AF translation achieves NN + AR with one color; when it does
//! not, no single-color schema produced by any strategy does.

use colorist_er::{ErGraph, NodeId};

/// The outcome of the Theorem 4.1 test, with per-condition diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// Condition (i): the underlying undirected ER graph is a forest.
    pub is_forest: bool,
    /// Condition (ii) violations: many-many relationship type names.
    pub many_many: Vec<String>,
    /// Condition (iii) violations: entity/relationship types on the many
    /// side of more than one one-many relationship type.
    pub overloaded_many_side: Vec<String>,
}

impl Feasibility {
    /// Whether a single-color XML schema with NN + AR exists.
    pub fn feasible(&self) -> bool {
        self.is_forest && self.many_many.is_empty() && self.overloaded_many_side.is_empty()
    }

    /// Human-readable explanation of why single-color NN + AR fails (empty
    /// when feasible).
    pub fn explain(&self) -> String {
        let mut parts = Vec::new();
        if !self.is_forest {
            parts.push("the ER graph is not a forest".to_string());
        }
        if !self.many_many.is_empty() {
            parts.push(format!("many-many relationship(s): {}", self.many_many.join(", ")));
        }
        if !self.overloaded_many_side.is_empty() {
            parts.push(format!(
                "on the many side of several one-many relationships: {}",
                self.overloaded_many_side.join(", ")
            ));
        }
        parts.join("; ")
    }
}

/// Run the Theorem 4.1 test on an ER graph.
pub fn single_color_feasibility(graph: &ErGraph) -> Feasibility {
    let many_many =
        graph.many_many_relationships().into_iter().map(|n| graph.node(n).name.clone()).collect();
    let overloaded_many_side = graph
        .many_side_counts()
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 1)
        .map(|(i, _)| graph.node(NodeId(i as u32)).name.clone())
        .collect();
    Feasibility { is_forest: graph.is_forest(), many_many, overloaded_many_side }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;
    use colorist_er::{Attribute, ErDiagram};

    #[test]
    fn chain_of_one_many_is_feasible() {
        let mut d = ErDiagram::new("t");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "b", "c").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let f = single_color_feasibility(&g);
        assert!(f.feasible(), "{}", f.explain());
    }

    #[test]
    fn tpcw_is_infeasible_for_the_reasons_the_paper_gives() {
        // §5.1: "the many-many relationship type order_line between order and
        // item, and the fact that order is on the many side of multiple
        // one-many relationship types, billing, shipping, make".
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let f = single_color_feasibility(&g);
        assert!(!f.feasible());
        assert_eq!(f.many_many, vec!["order_line".to_string()]);
        assert!(f.overloaded_many_side.contains(&"order".to_string()));
        assert!(f.explain().contains("order_line"));
    }

    #[test]
    fn many_many_alone_is_infeasible() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_mn("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let f = single_color_feasibility(&g);
        assert!(!f.feasible());
        assert!(f.is_forest);
        assert_eq!(f.many_many, vec!["r".to_string()]);
    }

    #[test]
    fn double_many_side_alone_is_infeasible() {
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let f = single_color_feasibility(&g);
        assert!(!f.feasible());
        assert!(f.many_many.is_empty());
        assert_eq!(f.overloaded_many_side, vec!["b".to_string()]);
    }

    #[test]
    fn cycle_alone_is_infeasible() {
        let mut d = ErDiagram::new("t");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        // triangle of 1:1s: forest fails, nothing else does
        d.add_rel_11("r1", "a", "b").unwrap();
        d.add_rel_11("r2", "b", "c").unwrap();
        d.add_rel_11("r3", "c", "a").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let f = single_color_feasibility(&g);
        assert!(!f.feasible());
        assert!(!f.is_forest);
        assert!(f.many_many.is_empty());
        assert!(f.overloaded_many_side.is_empty());
    }

    #[test]
    fn toy_dumc_is_infeasible_only_by_cycle() {
        // a->b, a->c, b-c(1:1): underlying graph has a cycle.
        let g = ErGraph::from_diagram(&catalog::toy_dumc()).unwrap();
        let f = single_color_feasibility(&g);
        assert!(!f.is_forest);
        assert!(!f.feasible());
    }
}

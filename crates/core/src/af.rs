//! The **AF** ("anomaly-free") translation (Figure 3): a single-color schema
//! that is node normal and captures as many associations structurally as one
//! color allows, value-encoding the rest.
//!
//! Implementation: run exactly one color of Algorithm MC (which greedily
//! builds a maximal forest of correctly-oriented edges, adding extra roots
//! while any fit), then
//!
//! * place every still-unplaced node as an additional root (entity under the
//!   document root), and
//! * encode every uncolored ER edge as an id/idref link.
//!
//! On TPC-W this reproduces Figure 3: the
//! `country → in → address → has → customer → make → order` spine with
//! `order_line`, `billing`, `shipping`, `associate` under `order`, the
//! `author → write → item` tree beside it, and idrefs exactly where the
//! figure draws value edges (`item_idref`, `bill_address_idref`,
//! `ship_address_idref`).

use crate::mc::{McPolicy, McRun};
use colorist_er::ErGraph;
use colorist_mct::{ColorId, MctSchema, SchemaError};

/// Build the AF schema of an ER graph.
pub fn af(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    af_with_policy(graph, McPolicy::natural(graph))
}

/// AF under an explicit MC traversal policy (used by tests to explore
/// alternative single-color designs).
pub fn af_with_policy(graph: &ErGraph, policy: McPolicy) -> Result<MctSchema, SchemaError> {
    let mut run = McRun::new(graph, policy, "AF");
    let color = run.run_one_color();
    let (mut builder, edge_colored, placed) = run.into_parts();
    let color = color.unwrap_or_else(|| builder.add_color());
    debug_assert_eq!(color, ColorId(0));

    for n in graph.node_ids() {
        if !placed[n.idx()] {
            builder.add_root(color, n);
        }
    }
    for e in graph.edge_ids() {
        if !edge_colored[e.idx()] {
            builder.add_idref(graph, e);
        }
    }
    builder.finish(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::{catalog, EligibleAssociations};

    #[test]
    fn af_is_nn_en_single_color() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = af(&g).unwrap();
            let elig = EligibleAssociations::enumerate(&g, 2);
            let p = properties::check(&s, &g, &elig);
            assert!(p.node_normal, "{name}");
            assert!(p.edge_normal, "{name}");
            assert_eq!(p.colors, 1, "{name}");
        }
    }

    #[test]
    fn af_reproduces_figure_3_on_tpcw() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = af(&g).unwrap();

        // The figure's spine: country -> in -> address -> has -> customer ->
        // make -> order, everything in one color.
        let node = |n: &str| g.node_by_name(n).unwrap();
        let place =
            |n: &str| *s.placements_of(node(n)).first().unwrap_or_else(|| panic!("{n} placed"));
        for (child, parent) in [
            ("in", "country"),
            ("address", "in"),
            ("has", "address"),
            ("customer", "has"),
            ("make", "customer"),
            ("order", "make"),
            ("order_line", "order"),
            ("billing", "order"),
            ("shipping", "order"),
            ("associate", "order"),
            ("credit_card_transaction", "associate"),
            ("write", "author"),
            ("item", "write"),
        ] {
            let (p, _) = s
                .placement(place(child))
                .parent
                .unwrap_or_else(|| panic!("{child} should not be a root:\n{}", s.render(&g)));
            assert_eq!(s.placement(p).node, node(parent), "{child} under {parent}");
        }

        // Exactly the figure's idrefs.
        let mut attrs: Vec<&str> = s.idrefs().iter().map(|l| l.attr.as_str()).collect();
        attrs.sort_unstable();
        assert_eq!(attrs, vec!["bill_address_idref", "item_idref", "ship_address_idref"]);
    }

    #[test]
    fn af_equals_full_ar_when_theorem_4_1_feasible() {
        // on a feasible graph AF captures every edge structurally
        let mut d = colorist_er::ErDiagram::new("chain");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![colorist_er::Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "b", "c").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        assert!(crate::feasibility::single_color_feasibility(&g).feasible());
        let s = af(&g).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(p.association_recoverable, "Theorem 4.1 'if' direction");
        assert!(s.idrefs().is_empty());
    }

    #[test]
    fn af_never_ar_when_theorem_4_1_infeasible() {
        // the 'only if' direction, checked over the catalog: every catalog
        // diagram is infeasible, and indeed AF always leaves idrefs.
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            assert!(!crate::feasibility::single_color_feasibility(&g).feasible(), "{name}");
            let s = af(&g).unwrap();
            assert!(!s.idrefs().is_empty(), "{name}: infeasible => some idref needed");
        }
    }
}

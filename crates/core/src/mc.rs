//! **Algorithm MC** (Figure 7): translate a simplified ER graph into an MCT
//! schema satisfying node normal form, edge normal form, and association
//! recoverability (Theorem 5.1).
//!
//! Sketch, following the paper's five steps:
//!
//! 1. Orient edges from the "one" side to the "many" side (done once by
//!    [`colorist_er::ErGraph`]); 1:1 edges stay undirected and are oriented
//!    as traversed.
//! 2. Pick an unprocessed node from a **source SCC** — an SCC with no
//!    incoming directed edge from another SCC — and open a new color with it
//!    as the *current start node*. We compute SCCs over the subgraph of
//!    *uncolored* edges: on the full static graph the source condition can
//!    deadlock once the original sources are exhausted while stray 1:1 edges
//!    remain (e.g. the second §5.2 toy graph), whereas on the residual graph
//!    every remaining edge eventually belongs to a source component.
//! 3. Depth-first traverse colorable edges in the correct direction, adding
//!    every traversed node/edge to the current color. An edge is *colorable*
//!    if it is uncolored and its far end either lacks the current color or
//!    is a current root other than the start node (in which case the two
//!    trees merge). We additionally refuse a merge that would attach a root
//!    above its own descendant — a cycle the paper's prose glosses over.
//! 4. While possible, add further roots (from source SCCs, with at least one
//!    colorable incident edge) to the *same* color and keep traversing.
//! 5. Repeat from step 2 with a fresh color until every edge is colored.
//!
//! Each node appears at most once per color (NN), each edge in exactly one
//! color (EN), and every edge somewhere (AR).
//!
//! The traversal order is controlled by an [`McPolicy`] so that Algorithm
//! DUMC can take the "disjoint union over MC runs" of §5.2 by re-running MC
//! under different priority permutations.

use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::{ColorId, MctSchema, MctSchemaBuilder, PlacementId, SchemaError};
use std::collections::HashMap;

/// Tie-breaking priorities for Algorithm MC: lower rank = preferred.
#[derive(Debug, Clone)]
pub struct McPolicy {
    /// Rank per node id, used when choosing start nodes / extra roots.
    pub node_rank: Vec<u32>,
    /// Rank per edge id, used to order DFS edge traversal.
    pub edge_rank: Vec<u32>,
}

impl McPolicy {
    /// Declaration order (the deterministic default).
    pub fn natural(graph: &ErGraph) -> Self {
        McPolicy {
            node_rank: (0..graph.node_count() as u32).collect(),
            edge_rank: (0..graph.edge_count() as u32).collect(),
        }
    }

    /// A seeded permutation of the natural policy (splitmix64-based
    /// Fisher–Yates; no external RNG so `colorist-core` stays
    /// dependency-free). Seed 0 reproduces the natural order.
    pub fn seeded(graph: &ErGraph, seed: u64) -> Self {
        if seed == 0 {
            return Self::natural(graph);
        }
        let mut policy = Self::natural(graph);
        let mut state = seed;
        shuffle(&mut policy.node_rank, &mut state);
        shuffle(&mut policy.edge_rank, &mut state);
        policy
    }

    /// A policy that prefers starting from `root` (rank 0) and otherwise
    /// follows the given seed. Used by DUMC to seed trees at association
    /// sources.
    pub fn rooted(graph: &ErGraph, root: NodeId, seed: u64) -> Self {
        let mut p = Self::seeded(graph, seed);
        for r in p.node_rank.iter_mut() {
            *r += 1;
        }
        p.node_rank[root.idx()] = 0;
        p
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffle(ranks: &mut [u32], state: &mut u64) {
    for i in (1..ranks.len()).rev() {
        let j = (splitmix(state) % (i as u64 + 1)) as usize;
        ranks.swap(i, j);
    }
}

/// Run Algorithm MC with the natural policy; the paper's `EN` strategy.
pub fn mc(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    McRun::new(graph, McPolicy::natural(graph), "EN").run()
}

/// Run Algorithm MC with an explicit policy and strategy label.
pub fn mc_with_policy(
    graph: &ErGraph,
    policy: McPolicy,
    strategy: &str,
) -> Result<MctSchema, SchemaError> {
    McRun::new(graph, policy, strategy).run()
}

/// In-progress MC state. Exposed so the AF translation can run exactly one
/// color and value-encode the rest.
pub struct McRun<'g> {
    graph: &'g ErGraph,
    policy: McPolicy,
    builder: MctSchemaBuilder,
    edge_colored: Vec<bool>,
    placed_anywhere: Vec<bool>,
}

impl<'g> McRun<'g> {
    /// Start a run over `graph`.
    pub fn new(graph: &'g ErGraph, policy: McPolicy, strategy: &str) -> Self {
        McRun {
            graph,
            policy,
            builder: MctSchemaBuilder::new(&graph.name, strategy),
            edge_colored: vec![false; graph.edge_count()],
            placed_anywhere: vec![false; graph.node_count()],
        }
    }

    /// Whether the node still needs work: unplaced, or has an uncolored edge
    /// traversable from it.
    fn unfinished(&self, n: NodeId) -> bool {
        !self.placed_anywhere[n.idx()]
            || self
                .graph
                .incident(n)
                .iter()
                .any(|&(e, _)| !self.edge_colored[e.idx()] && self.graph.traversable_from(e, n))
    }

    /// Whether any edge remains uncolored.
    pub fn has_uncolored_edges(&self) -> bool {
        self.edge_colored.iter().any(|&c| !c)
    }

    /// Per-node flags: in a source SCC of the uncolored subgraph.
    fn source_flags(&self) -> Vec<bool> {
        let alive = |e: EdgeId| !self.edge_colored[e.idx()];
        let sccs = self.graph.sccs_masked(alive);
        self.graph.in_source_scc_masked(&sccs, alive)
    }

    /// Incident edges of `n` in policy order.
    fn edges_of(&self, n: NodeId) -> Vec<(EdgeId, NodeId)> {
        let mut v: Vec<(EdgeId, NodeId)> = self.graph.incident(n).to_vec();
        v.sort_by_key(|&(e, _)| self.policy.edge_rank[e.idx()]);
        v
    }

    /// Candidate start nodes in policy order.
    fn candidates(&self, exclude_in_color: &HashMap<NodeId, PlacementId>) -> Vec<NodeId> {
        let sources = self.source_flags();
        let mut v: Vec<NodeId> = self
            .graph
            .node_ids()
            .filter(|&n| {
                sources[n.idx()] && self.unfinished(n) && !exclude_in_color.contains_key(&n)
            })
            .collect();
        v.sort_by_key(|&n| self.policy.node_rank[n.idx()]);
        v
    }

    /// Whether `anc` is an ancestor of (or equal to) `desc` among the
    /// builder's placements.
    fn placement_is_ancestor(&self, anc: PlacementId, desc: PlacementId) -> bool {
        let mut cur = desc;
        loop {
            if cur == anc {
                return true;
            }
            match self.builder.placements()[cur.idx()].parent {
                Some((p, _)) => cur = p,
                None => return false,
            }
        }
    }

    /// Steps 2–4: open one new color, grow it to fixpoint. Returns the color
    /// id, or `None` if no progress is possible.
    pub fn run_one_color(&mut self) -> Option<ColorId> {
        // Step 2: pick the start node.
        let in_color: HashMap<NodeId, PlacementId> = HashMap::new();
        let start = *self.candidates(&in_color).first()?;

        let color = self.builder.add_color();
        let mut in_color = in_color;
        let mut roots: Vec<NodeId> = vec![start];
        let p = self.builder.add_root(color, start);
        in_color.insert(start, p);
        self.placed_anywhere[start.idx()] = true;

        loop {
            // Step 3 (to fixpoint): grow the current forest.
            self.grow_to_fixpoint(start, color, &mut in_color, &mut roots);

            // Step 4: another root in the same color?
            let next_root = self
                .candidates(&in_color)
                .into_iter()
                .find(|&n| self.has_colorable_edge(n, start, &in_color, &roots));
            match next_root {
                Some(n) => {
                    let p = self.builder.add_root(color, n);
                    in_color.insert(n, p);
                    self.placed_anywhere[n.idx()] = true;
                    roots.push(n);
                }
                None => break,
            }
        }
        Some(color)
    }

    fn has_colorable_edge(
        &self,
        n: NodeId,
        start: NodeId,
        in_color: &HashMap<NodeId, PlacementId>,
        roots: &[NodeId],
    ) -> bool {
        self.graph
            .incident(n)
            .iter()
            .any(|&(e, m)| self.colorable(e, n, m, start, in_color, roots).is_some())
    }

    /// The colorability test of step 3. Returns the merge target placement
    /// if the edge reaches a mergeable current root, `Some(None)` for a
    /// plain extension... encoded as: `None` = not colorable;
    /// `Some(existing)` where `existing` is `Some(placement)` when the far
    /// end is already placed (root merge) or `None` when it is new.
    #[allow(clippy::option_option)]
    fn colorable(
        &self,
        e: EdgeId,
        n: NodeId,
        m: NodeId,
        start: NodeId,
        in_color: &HashMap<NodeId, PlacementId>,
        roots: &[NodeId],
    ) -> Option<Option<PlacementId>> {
        if self.edge_colored[e.idx()] || !self.graph.traversable_from(e, n) {
            return None;
        }
        match in_color.get(&m) {
            None => Some(None),
            Some(&pm) => {
                // far end already in current color: mergeable only if it is
                // a current root, not the start, and not an ancestor of n
                // (cycle guard). When probing from a candidate root, n has
                // no placement yet and cannot be below anything.
                let below = in_color.get(&n).is_some_and(|&pn| self.placement_is_ancestor(pm, pn));
                if m != start && roots.contains(&m) && !below {
                    Some(Some(pm))
                } else {
                    None
                }
            }
        }
    }

    /// Depth-first growth from every node currently in the color until no
    /// colorable edge remains (covers opportunities opened by merges).
    fn grow_to_fixpoint(
        &mut self,
        start: NodeId,
        _color: ColorId,
        in_color: &mut HashMap<NodeId, PlacementId>,
        roots: &mut Vec<NodeId>,
    ) {
        // worklist DFS; nodes may be revisited after merges
        let mut changed = true;
        while changed {
            changed = false;
            // snapshot: iterate placements in insertion order for determinism
            let members: Vec<NodeId> = {
                let mut v: Vec<(PlacementId, NodeId)> =
                    in_color.iter().map(|(&n, &p)| (p, n)).collect();
                v.sort_by_key(|&(p, _)| p);
                v.into_iter().map(|(_, n)| n).collect()
            };
            for n in members {
                if self.grow_from(n, start, in_color, roots) {
                    changed = true;
                }
            }
        }
    }

    /// Recursive DFS from `n`; returns whether anything was colored.
    fn grow_from(
        &mut self,
        n: NodeId,
        start: NodeId,
        in_color: &mut HashMap<NodeId, PlacementId>,
        roots: &mut Vec<NodeId>,
    ) -> bool {
        let mut any = false;
        for (e, m) in self.edges_of(n) {
            match self.colorable(e, n, m, start, in_color, roots) {
                None => continue,
                Some(existing) => {
                    let pn = in_color[&n];
                    self.edge_colored[e.idx()] = true;
                    any = true;
                    match existing {
                        Some(pm) => {
                            // merge: attach root m's tree under n
                            self.builder
                                .attach_root(pm, pn, e)
                                .expect("merge target verified as root");
                            roots.retain(|&r| r != m);
                        }
                        None => {
                            let pm = self.builder.add_child(pn, e, m);
                            in_color.insert(m, pm);
                            self.placed_anywhere[m.idx()] = true;
                            self.grow_from(m, start, in_color, roots);
                        }
                    }
                }
            }
        }
        any
    }

    /// Finish the run: exhaust colors (step 5), then place any never-placed
    /// isolated nodes as extra roots of the first color (frugality; the
    /// letter of the paper would give each its own color).
    pub fn run(mut self) -> Result<MctSchema, SchemaError> {
        while self.run_one_color().is_some() {}
        debug_assert!(!self.has_uncolored_edges(), "MC left uncolored edges");
        self.place_stragglers();
        self.builder.finish(self.graph)
    }

    /// Place unplaced isolated nodes as roots of color 0.
    fn place_stragglers(&mut self) {
        let unplaced: Vec<NodeId> =
            self.graph.node_ids().filter(|&n| !self.placed_anywhere[n.idx()]).collect();
        if unplaced.is_empty() {
            return;
        }
        let color =
            if self.builder.color_count() == 0 { self.builder.add_color() } else { ColorId(0) };
        for n in unplaced {
            self.builder.add_root(color, n);
            self.placed_anywhere[n.idx()] = true;
        }
    }

    /// Hand the partially-built schema to a custom finisher (used by AF).
    pub fn into_parts(self) -> (MctSchemaBuilder, Vec<bool>, Vec<bool>) {
        (self.builder, self.edge_colored, self.placed_anywhere)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::{catalog, EligibleAssociations};

    fn check_invariants(graph: &ErGraph, schema: &MctSchema) {
        let elig = EligibleAssociations::enumerate_default(graph);
        let p = properties::check(schema, graph, &elig);
        assert!(p.node_normal, "MC output must be NN for {}", graph.name);
        assert!(p.edge_normal, "MC output must be EN for {}", graph.name);
        assert!(p.association_recoverable, "MC output must be AR for {}", graph.name);
        assert!(schema.idrefs().is_empty());
    }

    #[test]
    fn theorem_5_1_on_the_whole_catalog() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = mc(&g).unwrap();
            check_invariants(&g, &s);
        }
    }

    #[test]
    fn tpcw_needs_exactly_two_colors() {
        // §6: "EN and MCMR, which have only 2 colors" — Algorithm MC covers
        // TPC-W with two colors.
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = mc(&g).unwrap();
        assert_eq!(s.color_count(), 2, "\n{}", s.render(&g));
    }

    #[test]
    fn toy_mcmr_needs_two_colors_and_misses_one_association() {
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let s = mc(&g).unwrap();
        assert_eq!(s.color_count(), 2, "\n{}", s.render(&g));
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(!p.direct_recoverable);
        // exactly one of (a,d) / (c,d) is not direct (plus sub-path variants
        // through the relationship nodes)
        let missing = properties::uncovered_associations(&s, &elig);
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        let d = g.node_by_name("d").unwrap();
        let ad = missing.iter().any(|x| x.source == a && x.target == d);
        let cd = missing.iter().any(|x| x.source == c && x.target == d);
        assert!(ad ^ cd, "exactly one of a..d / c..d must be uncovered");
    }

    #[test]
    fn toy_dumc_missing_reverse_one_one() {
        let g = ErGraph::from_diagram(&catalog::toy_dumc()).unwrap();
        let s = mc(&g).unwrap();
        check_invariants(&g, &s);
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(!p.direct_recoverable, "the 1:1 b--c association cannot be direct both ways");
    }

    #[test]
    fn seeded_policies_all_preserve_theorem_5_1() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        for seed in 1..=8u64 {
            let s = mc_with_policy(&g, McPolicy::seeded(&g, seed), "EN").unwrap();
            check_invariants(&g, &s);
        }
    }

    #[test]
    fn rooted_policy_starts_at_requested_root_when_reasonable() {
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let c = g.node_by_name("c").unwrap();
        let s = mc_with_policy(&g, McPolicy::rooted(&g, c, 1), "EN").unwrap();
        // first color must be rooted at c
        let r0 = s.roots(ColorId(0))[0];
        assert_eq!(s.placement(r0).node, c);
    }

    #[test]
    fn policy_seed_zero_is_natural() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let a = McPolicy::natural(&g);
        let b = McPolicy::seeded(&g, 0);
        assert_eq!(a.node_rank, b.node_rank);
        assert_eq!(a.edge_rank, b.edge_rank);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = ErGraph::from_diagram(&catalog::derby()).unwrap();
        let s1 = mc(&g).unwrap();
        let s2 = mc(&g).unwrap();
        assert_eq!(s1.render(&g), s2.render(&g));
    }
}

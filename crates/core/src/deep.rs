//! The **DEEP** translation (Figure 4): a single-color schema that captures
//! every association structurally — in both directions — at the cost of
//! extreme data redundancy.
//!
//! The paper presents DEEP as a schema *graph* traversed from the root,
//! "permitting multiple occurrences of elements". We materialize the
//! traversal: starting from a root chosen per connected component, unfold
//! along **every** incident ER edge regardless of its §4.1 orientation.
//! Traversing an edge against its functional direction is exactly what
//! duplicates data (an `item` element under every `order_line` that refers
//! to it; an `address` under every order's `billing`), and is also what
//! makes queries like `//customer//item` single ancestor–descendant steps.
//!
//! Cycle rule: when the unfolding reaches a node type already on the current
//! root path, it places it as a *leaf* (the element with its attributes,
//! no further expansion). This realizes the edge while terminating the
//! recursion — e.g. TPC-W's `order → billing → address(leaf)`, the paper's
//! "redundancy in the representation of various types of address, country,
//! item, and author elements".
//!
//! The root of each connected component is the entity with the greatest
//! eccentricity in the mixed graph (ties broken by id) — on TPC-W this
//! selects `country`, reproducing Figure 4's
//! `country → address → customer → order → …` spine. Associations that a
//! single unfolding leaves without a complete descending chain are still
//! answered exactly (the query compiler falls back to parent-child link
//! joins), just not with a single `//` step.

use colorist_er::{ErGraph, NodeId, NodeKind};
use colorist_mct::{MctSchema, MctSchemaBuilder, PlacementId, SchemaError};

/// Default bound on generated placements; dense diagrams can have
/// exponentially many root-to-leaf unfoldings.
pub const DEFAULT_MAX_PLACEMENTS: usize = 100_000;

/// Build the DEEP schema with the default placement bound.
pub fn deep(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    deep_bounded(graph, DEFAULT_MAX_PLACEMENTS)
}

/// Build the DEEP schema, stopping expansion (placing leaves) once
/// `max_placements` is reached; a repair pass afterwards guarantees every ER
/// edge is still realized at least once.
pub fn deep_bounded(graph: &ErGraph, max_placements: usize) -> Result<MctSchema, SchemaError> {
    let mut b = MctSchemaBuilder::new(&graph.name, "DEEP");
    let color = b.add_color();

    let mut edge_realized = vec![false; graph.edge_count()];
    let mut first_placement: Vec<Option<PlacementId>> = vec![None; graph.node_count()];

    for root in component_roots(graph) {
        let p = b.add_root(color, root);
        first_placement[root.idx()].get_or_insert(p);
        let mut on_path = vec![false; graph.node_count()];
        on_path[root.idx()] = true;
        unfold(
            graph,
            &mut b,
            root,
            p,
            &mut on_path,
            &mut edge_realized,
            &mut first_placement,
            max_placements,
        );
    }

    // Repair pass (placement cap only): realize any dropped edge as a leaf
    // under the first placement of one endpoint, creating a root for the
    // other endpoint if the cap starved it of placements entirely.
    for e in graph.edge_ids() {
        if edge_realized[e.idx()] {
            continue;
        }
        let edge = graph.edge(e);
        let (parent, child) =
            match (first_placement[edge.rel.idx()], first_placement[edge.participant.idx()]) {
                (Some(p), _) => (p, edge.participant),
                (None, Some(p)) => (p, edge.rel),
                (None, None) => {
                    let p = b.add_root(color, edge.rel);
                    first_placement[edge.rel.idx()] = Some(p);
                    (p, edge.participant)
                }
            };
        let p = b.add_child(parent, e, child);
        first_placement[child.idx()].get_or_insert(p);
        edge_realized[e.idx()] = true;
    }
    // Nodes starved of every placement by the cap become extra roots.
    for n in graph.node_ids() {
        if first_placement[n.idx()].is_none() {
            first_placement[n.idx()] = Some(b.add_root(color, n));
        }
    }

    b.finish(graph)
}

#[allow(clippy::too_many_arguments)]
fn unfold(
    graph: &ErGraph,
    b: &mut MctSchemaBuilder,
    n: NodeId,
    pn: PlacementId,
    on_path: &mut [bool],
    edge_realized: &mut [bool],
    first_placement: &mut [Option<PlacementId>],
    max_placements: usize,
) {
    // deterministic order: ascending edge id
    let mut incident: Vec<_> = graph.incident(n).to_vec();
    incident.sort_by_key(|&(e, _)| e);
    // skip the edge we arrived by
    let arrived = b.placements()[pn.idx()].parent.map(|(_, e)| e);
    for (e, m) in incident {
        if Some(e) == arrived {
            continue;
        }
        if b.placements().len() >= max_placements {
            // cap: realize the edge as a leaf if not yet realized anywhere,
            // otherwise drop it here (repair pass backstops).
            if !edge_realized[e.idx()] {
                let p = b.add_child(pn, e, m);
                first_placement[m.idx()].get_or_insert(p);
                edge_realized[e.idx()] = true;
            }
            continue;
        }
        let pm = b.add_child(pn, e, m);
        first_placement[m.idx()].get_or_insert(pm);
        edge_realized[e.idx()] = true;
        if !on_path[m.idx()] {
            on_path[m.idx()] = true;
            unfold(graph, b, m, pm, on_path, edge_realized, first_placement, max_placements);
            on_path[m.idx()] = false;
        }
        // else: leaf placement (cycle cut)
    }
}

/// One root per connected component of the mixed graph: the entity node of
/// maximal eccentricity (ties: lowest id); falls back to any node for
/// entity-free components (impossible for validated diagrams).
fn component_roots(graph: &ErGraph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in graph.node_ids() {
        if comp[start.idx()] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start.idx()] = count;
        while let Some(u) = stack.pop() {
            for &(_, v) in graph.incident(u) {
                if comp[v.idx()] == usize::MAX {
                    comp[v.idx()] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }

    let mut roots: Vec<Option<(usize, NodeId)>> = vec![None; count]; // (ecc, node), max
    for u in graph.node_ids() {
        if graph.node(u).kind != NodeKind::Entity {
            continue;
        }
        let ecc = eccentricity(graph, u);
        let slot = &mut roots[comp[u.idx()]];
        let better = match *slot {
            None => true,
            Some((best, node)) => ecc > best || (ecc == best && u < node),
        };
        if better {
            *slot = Some((ecc, u));
        }
    }
    for u in graph.node_ids() {
        let c = comp[u.idx()];
        if roots[c].is_none() {
            roots[c] = Some((0, u));
        }
    }
    roots.into_iter().map(|r| r.expect("component root").1).collect()
}

/// BFS eccentricity in the mixed graph (edges traversed freely).
fn eccentricity(graph: &ErGraph, from: NodeId) -> usize {
    let mut dist = vec![usize::MAX; graph.node_count()];
    dist[from.idx()] = 0;
    let mut queue = std::collections::VecDeque::from([from]);
    let mut max = 0;
    while let Some(u) = queue.pop_front() {
        for &(_, v) in graph.incident(u) {
            if dist[v.idx()] == usize::MAX {
                dist[v.idx()] = dist[u.idx()] + 1;
                max = max.max(dist[v.idx()]);
                queue.push_back(v);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::{catalog, EligibleAssociations};

    #[test]
    fn deep_is_en_ar_but_not_nn_on_tpcw() {
        // §3.2: "the XML schema in Figure 4 is in edge normal form (since it
        // has only one color), but not in node normal form".
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = deep(&g).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(!p.node_normal);
        assert!(p.edge_normal);
        assert!(p.association_recoverable);
        assert_eq!(p.colors, 1);
        assert!(s.idrefs().is_empty());
        // the single unfolding makes the workload-relevant chains of
        // Figure 4 descending paths:
        let direct = |src: &str, dst: &str| {
            let s_id = g.node_by_name(src).unwrap();
            let d_id = g.node_by_name(dst).unwrap();
            elig.between(s_id, d_id).iter().any(|a| properties::is_directly_recoverable(&s, a))
        };
        for (x, y) in [
            ("country", "order"),
            ("country", "customer"),
            ("customer", "order"),
            ("address", "order"),
        ] {
            assert!(direct(x, y), "{x}..{y} must be direct in DEEP");
        }
    }

    #[test]
    fn tpcw_root_is_country_like_figure_4() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = deep(&g).unwrap();
        let roots = s.roots(colorist_mct::ColorId(0));
        assert_eq!(roots.len(), 1);
        assert_eq!(s.placement(roots[0]).node, g.node_by_name("country").unwrap());
    }

    #[test]
    fn cycle_cut_places_leaves() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = deep(&g).unwrap();
        // some address placement under billing must be a leaf (address is on
        // the path country -> ... -> order -> billing)
        let address = g.node_by_name("address").unwrap();
        let billing = g.node_by_name("billing").unwrap();
        let leaf = s.placements_of(address).iter().copied().find(|&p| {
            s.placement(p).parent.is_some_and(|(parent, _)| s.placement(parent).node == billing)
        });
        let leaf = leaf.expect("address leaf under billing");
        assert!(s.children(leaf).is_empty(), "cycle cut must not expand");
    }

    #[test]
    fn whole_catalog_within_bounds() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = deep(&g).unwrap();
            let elig = EligibleAssociations::enumerate(&g, 2);
            let p = properties::check(&s, &g, &elig);
            assert!(p.edge_normal && p.association_recoverable, "{name}");
            assert!(
                s.placements().len() < DEFAULT_MAX_PLACEMENTS,
                "{name}: {} placements",
                s.placements().len()
            );
        }
    }

    #[test]
    fn tight_cap_still_realizes_every_edge() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = deep_bounded(&g, 8).unwrap();
        let elig = EligibleAssociations::enumerate(&g, 1);
        let p = properties::check(&s, &g, &elig);
        assert!(p.association_recoverable, "repair pass must keep AR");
    }

    #[test]
    fn multi_component_graphs_get_one_root_each() {
        let mut d = colorist_er::ErDiagram::new("two");
        for n in ["a", "b", "x", "y"] {
            d.add_entity(n, vec![colorist_er::Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "x", "y").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = deep(&g).unwrap();
        assert_eq!(s.roots(colorist_mct::ColorId(0)).len(), 2);
    }
}

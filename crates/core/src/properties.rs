//! Checkers for the four desirable schema properties (§3).
//!
//! These are *verifiers*, independent of the construction algorithms: every
//! strategy's output is validated against them in tests (including property
//! tests over random ER graphs), which is how Theorems 5.1 and 5.2 are
//! checked mechanically.

use colorist_er::{Association, EligibleAssociations, ErGraph};
use colorist_mct::MctSchema;

/// The verified property profile of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Properties {
    /// Node normal form: no ER node has two placements in one color.
    pub node_normal: bool,
    /// Edge normal form: no ER edge realized in more than one color
    /// (equivalently, the schema has no ICICs).
    pub edge_normal: bool,
    /// Association recoverability: every ER edge realized structurally in at
    /// least one color (no idref-only edges).
    pub association_recoverable: bool,
    /// Direct recoverability: every eligible association is a descending
    /// placement path in a single color.
    pub direct_recoverable: bool,
    /// Number of colors (color frugality metric).
    pub colors: usize,
    /// Number of inter-color integrity constraints.
    pub icics: usize,
}

impl Properties {
    /// Render like the paper's property shorthand, e.g. `NN+EN+AR, 2 colors`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.node_normal {
            parts.push("NN");
        }
        if self.edge_normal {
            parts.push("EN");
        }
        if self.association_recoverable {
            parts.push("AR");
        }
        if self.direct_recoverable {
            parts.push("DR");
        }
        format!(
            "{} ({} color{}, {} ICIC{})",
            if parts.is_empty() { "-".to_string() } else { parts.join("+") },
            self.colors,
            if self.colors == 1 { "" } else { "s" },
            self.icics,
            if self.icics == 1 { "" } else { "s" },
        )
    }
}

/// Check all four properties of `schema` against its ER graph and the
/// enumerated eligible associations.
pub fn check(schema: &MctSchema, graph: &ErGraph, eligible: &EligibleAssociations) -> Properties {
    Properties {
        node_normal: is_node_normal(schema, graph),
        edge_normal: is_edge_normal(schema),
        association_recoverable: is_association_recoverable(schema, graph),
        direct_recoverable: is_direct_recoverable(schema, eligible),
        colors: schema.color_count(),
        icics: schema.icics().len(),
    }
}

/// NN (§3.2): within every color, every ER node type has at most one
/// placement. (The per-color forests are trees by construction of
/// [`MctSchema`], so repeated placements are the only way instances could be
/// represented more than once per color.)
pub fn is_node_normal(schema: &MctSchema, graph: &ErGraph) -> bool {
    for n in graph.node_ids() {
        let mut seen = vec![false; schema.color_count()];
        for &p in schema.placements_of(n) {
            let c = schema.placement(p).color.idx();
            if seen[c] {
                return false;
            }
            seen[c] = true;
        }
    }
    true
}

/// EN (§3.2): no ER edge (binary association) realized in more than one
/// color; equivalently, the derived ICIC set is empty.
pub fn is_edge_normal(schema: &MctSchema) -> bool {
    schema.icics().is_empty()
}

/// AR (§3.1): every ER edge realized structurally somewhere, so arbitrary
/// association graphs can be traversed with (multi-colored) XPath without
/// value-based comparisons.
pub fn is_association_recoverable(schema: &MctSchema, graph: &ErGraph) -> bool {
    graph.edge_ids().all(|e| !schema.edge_realizations(e).is_empty())
}

/// DR (§3.1): every eligible association is directly recoverable.
pub fn is_direct_recoverable(schema: &MctSchema, eligible: &EligibleAssociations) -> bool {
    eligible.iter().all(|a| is_directly_recoverable(schema, a))
}

/// Whether one eligible association is realized as a descending placement
/// path in some single color — i.e. retrievable with a single parent-child
/// (length-1 path) or ancestor-descendant axis step, along its exact ER
/// path so that exactly the associated pairs are retrieved.
pub fn is_directly_recoverable(schema: &MctSchema, assoc: &Association) -> bool {
    // Walk up from every placement of the target; the chain of realizing
    // edges must equal the association's path reversed, ending at source.
    'outer: for &p in schema.placements_of(assoc.target) {
        let mut cur = p;
        for (i, &edge) in assoc.path.iter().rev().enumerate() {
            match schema.placement(cur).parent {
                Some((parent, via)) if via == edge => {
                    // interior nodes must match too (a path is a node/edge
                    // alternation; edges determine nodes here, but be safe)
                    let expect = assoc.nodes[assoc.nodes.len() - 2 - i];
                    if schema.placement(parent).node != expect {
                        continue 'outer;
                    }
                    cur = parent;
                }
                _ => continue 'outer,
            }
        }
        return true;
    }
    false
}

/// The associations that are *not* directly recoverable (diagnostics for
/// reports and the MCMR/DUMC algorithms).
pub fn uncovered_associations<'a>(
    schema: &MctSchema,
    eligible: &'a EligibleAssociations,
) -> Vec<&'a Association> {
    eligible.iter().filter(|a| !is_directly_recoverable(schema, a)).collect()
}

/// Cross-validate this module's property checkers against the schema
/// linter's independent recomputation ([`colorist_mct::lint::lint_model`],
/// which works from the raw placement table with opposite walk directions).
/// Any disagreement is reported as an `S007` diagnostic — it means one of
/// the two implementations is wrong, not the schema.
pub fn cross_validate(
    schema: &MctSchema,
    graph: &ErGraph,
    eligible: &EligibleAssociations,
) -> Vec<String> {
    let checked = check(schema, graph, eligible);
    let model = colorist_mct::lint::lint_model(graph, schema, eligible);
    let mut diags = Vec::new();
    let mut cmp = |what: &str, a: bool, b: bool| {
        if a != b {
            diags.push(format!("S007: {what} disagreement: checker says {a}, lint model says {b}"));
        }
    };
    cmp("node-normal", checked.node_normal, model.node_normal);
    cmp("edge-normal", checked.edge_normal, model.edge_normal);
    cmp("association-recoverable", checked.association_recoverable, model.association_recoverable);
    cmp("direct-recoverable", checked.direct_recoverable, model.direct_recoverable);
    if checked.colors != model.colors {
        diags.push(format!(
            "S007: color-count disagreement: checker says {}, lint model says {}",
            checked.colors, model.colors
        ));
    }
    if checked.icics != model.icics {
        diags.push(format!(
            "S007: ICIC-count disagreement: checker says {}, lint model says {}",
            checked.icics, model.icics
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{Attribute, EdgeId, ErDiagram};
    use colorist_mct::MctSchemaBuilder;

    fn small() -> (ErGraph, EligibleAssociations) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let e = EligibleAssociations::enumerate_default(&g);
        (g, e)
    }

    fn edge(g: &ErGraph, rel: &str, part: &str) -> EdgeId {
        let rel = g.node_by_name(rel).unwrap();
        let part = g.node_by_name(part).unwrap();
        g.edge_ids().find(|&e| g.edge(e).rel == rel && g.edge(e).participant == part).unwrap()
    }

    #[test]
    fn linear_schema_has_all_properties() {
        let (g, elig) = small();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, g.node_by_name("a").unwrap());
        let pr = b.add_child(pa, edge(&g, "r", "a"), g.node_by_name("r").unwrap());
        b.add_child(pr, edge(&g, "r", "b"), g.node_by_name("b").unwrap());
        let s = b.finish(&g).unwrap();
        let p = check(&s, &g, &elig);
        assert!(p.node_normal);
        assert!(p.edge_normal);
        assert!(p.association_recoverable);
        // the only eligible association, a..b via r, descends in the color
        assert!(p.direct_recoverable);
        assert!(uncovered_associations(&s, &elig).is_empty());
        assert_eq!(p.summary(), "NN+EN+AR+DR (1 color, 0 ICICs)");
    }

    #[test]
    fn idref_schema_not_association_recoverable() {
        let (g, elig) = small();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, g.node_by_name("a").unwrap());
        b.add_child(pa, edge(&g, "r", "a"), g.node_by_name("r").unwrap());
        b.add_root(c, g.node_by_name("b").unwrap());
        b.add_idref(&g, edge(&g, "r", "b"));
        let s = b.finish(&g).unwrap();
        let p = check(&s, &g, &elig);
        assert!(p.node_normal);
        assert!(p.edge_normal);
        assert!(!p.association_recoverable);
        assert!(!p.direct_recoverable);
    }

    #[test]
    fn duplicate_placement_in_color_breaks_nn() {
        let (g, elig) = small();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let pa = b.add_root(c, a);
        let pr = b.add_child(pa, edge(&g, "r", "a"), r);
        b.add_child(pr, edge(&g, "r", "b"), bb);
        // duplicate b as a second root in the same color
        b.add_root(c, bb);
        let s = b.finish(&g).unwrap();
        let p = check(&s, &g, &elig);
        assert!(!p.node_normal);
        assert!(p.edge_normal);
    }

    #[test]
    fn redundant_edge_breaks_en() {
        let (g, elig) = small();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c1 = b.add_color();
        let c2 = b.add_color();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let pa = b.add_root(c1, a);
        let pr = b.add_child(pa, edge(&g, "r", "a"), r);
        b.add_child(pr, edge(&g, "r", "b"), bb);
        let pb = b.add_root(c2, bb);
        b.add_child(pb, edge(&g, "r", "b"), r);
        let s = b.finish(&g).unwrap();
        let p = check(&s, &g, &elig);
        assert!(p.node_normal);
        assert!(!p.edge_normal);
        assert_eq!(p.icics, 1);
        // now (b, r) is direct in color 2; all eligible associations covered
        assert!(p.direct_recoverable);
        assert!(p.association_recoverable);
    }

    #[test]
    fn direct_recoverability_requires_matching_path() {
        // two parallel 1:m rels a--b; schema realizes only r1 structurally
        // twice, r2 by idref: the a..b-via-r2 association must NOT count as
        // direct even though a is an ancestor of b.
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let mut bld = MctSchemaBuilder::new("t", "TEST");
        let c = bld.add_color();
        let a = g.node_by_name("a").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        let r2 = g.node_by_name("r2").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let pa = bld.add_root(c, a);
        let pr1 = bld.add_child(pa, edge(&g, "r1", "a"), r1);
        bld.add_child(pr1, edge(&g, "r1", "b"), bb);
        let _pr2 = bld.add_child(pa, edge(&g, "r2", "a"), r2);
        bld.add_idref(&g, edge(&g, "r2", "b"));
        let s = bld.finish(&g).unwrap();
        let via_r2 = elig.between(a, bb).into_iter().find(|assoc| assoc.label(&g) == "r2").unwrap();
        assert!(!is_directly_recoverable(&s, via_r2));
        let via_r1 = elig.between(a, bb).into_iter().find(|assoc| assoc.label(&g) == "r1").unwrap();
        assert!(is_directly_recoverable(&s, via_r1));
    }
}

//! Internal mutable per-color forest used by the MCMR, DUMC, and UNDR
//! strategies.
//!
//! An [`MctSchema`] is immutable once built; the post-pass strategies start
//! from an Algorithm-MC (or DUMC) output, copy each color into a [`Forest`],
//! graft additional edges/placements onto it, and re-emit the result through
//! [`colorist_mct::MctSchemaBuilder`].

use colorist_er::{Association, EdgeId, ErGraph, NodeId};
use colorist_mct::{ColorId, MctSchema, MctSchemaBuilder, PlacementId};

/// One node occurrence in a mutable forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occ {
    /// The ER node type.
    pub node: NodeId,
    /// Parent occurrence index and realizing ER edge; `None` for roots.
    pub parent: Option<(usize, EdgeId)>,
}

/// A mutable forest over ER node occurrences (one color under construction).
#[derive(Debug, Clone, Default)]
pub struct Forest {
    occs: Vec<Occ>,
    by_node: Vec<Vec<usize>>,
}

impl Forest {
    /// An empty forest over a graph with `node_count` ER nodes.
    pub fn new(node_count: usize) -> Self {
        Forest { occs: Vec::new(), by_node: vec![Vec::new(); node_count] }
    }

    /// Copy one color of a schema.
    pub fn from_schema(schema: &MctSchema, color: ColorId, node_count: usize) -> Self {
        let mut f = Forest::new(node_count);
        // map schema placement -> occurrence index
        let mut map = vec![usize::MAX; schema.placements().len()];
        for &root in schema.roots(color) {
            let mut stack = vec![root];
            while let Some(p) = stack.pop() {
                let pl = schema.placement(p);
                let parent = pl.parent.map(|(pp, e)| (map[pp.idx()], e));
                map[p.idx()] = f.push(Occ { node: pl.node, parent });
                // reverse so the LIFO pop preserves sibling order
                stack.extend(schema.children(p).iter().rev().copied());
            }
        }
        f
    }

    fn push(&mut self, occ: Occ) -> usize {
        let i = self.occs.len();
        self.by_node[occ.node.idx()].push(i);
        self.occs.push(occ);
        i
    }

    /// All occurrences.
    pub fn occs(&self) -> &[Occ] {
        &self.occs
    }

    /// Occurrence indexes of an ER node type.
    pub fn of(&self, node: NodeId) -> &[usize] {
        &self.by_node[node.idx()]
    }

    /// Whether `node` occurs at all.
    pub fn contains(&self, node: NodeId) -> bool {
        !self.by_node[node.idx()].is_empty()
    }

    /// Add a root occurrence.
    pub fn add_root(&mut self, node: NodeId) -> usize {
        self.push(Occ { node, parent: None })
    }

    /// Add a child occurrence under `parent` realizing `edge`.
    pub fn add_child(&mut self, parent: usize, edge: EdgeId, node: NodeId) -> usize {
        debug_assert!(parent < self.occs.len());
        self.push(Occ { node, parent: Some((parent, edge)) })
    }

    /// Reparent a root under `new_parent`. Panics if `occ` is not a root or
    /// if the attachment would create a cycle.
    pub fn attach_root(&mut self, occ: usize, new_parent: usize, edge: EdgeId) {
        assert!(self.occs[occ].parent.is_none(), "occurrence is not a root");
        assert!(!self.is_ancestor(occ, new_parent), "attachment would create a cycle");
        self.occs[occ].parent = Some((new_parent, edge));
    }

    /// Whether `anc` is an ancestor of (or equal to) `desc`.
    pub fn is_ancestor(&self, anc: usize, desc: usize) -> bool {
        let mut cur = desc;
        loop {
            if cur == anc {
                return true;
            }
            match self.occs[cur].parent {
                Some((p, _)) => cur = p,
                None => return false,
            }
        }
    }

    /// Whether an ER edge is realized by some occurrence edge.
    pub fn realizes(&self, edge: EdgeId) -> bool {
        self.occs.iter().any(|o| o.parent.is_some_and(|(_, e)| e == edge))
    }

    /// Whether the association's exact path descends within this forest.
    pub fn covers(&self, assoc: &Association) -> bool {
        'outer: for &t in self.of(assoc.target) {
            let mut cur = t;
            for (i, &edge) in assoc.path.iter().rev().enumerate() {
                match self.occs[cur].parent {
                    Some((p, via)) if via == edge => {
                        let expect = assoc.nodes[assoc.nodes.len() - 2 - i];
                        if self.occs[p].node != expect {
                            continue 'outer;
                        }
                        cur = p;
                    }
                    _ => continue 'outer,
                }
            }
            return true;
        }
        false
    }

    /// The MCMR growth step (§5.2: "adding as many edges as possible to each
    /// colored tree"): repeatedly, for every occurrence `n`, try to realize
    /// each yet-unrealized (in this forest) ER edge traversable from
    /// `n.node`, either by adding the far node (if absent — keeps NN) or by
    /// reparenting it (if it is a root and no cycle arises). Runs to
    /// fixpoint; deterministic (occurrence order, then edge id).
    pub fn extend_maximal(&mut self, graph: &ErGraph) {
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < self.occs.len() {
                let n = self.occs[i].node;
                let mut incident: Vec<_> = graph.incident(n).to_vec();
                incident.sort_by_key(|&(e, _)| e);
                for (e, m) in incident {
                    if !graph.traversable_from(e, n) || self.realized_here(i, e) {
                        continue;
                    }
                    match self.unique_or_none(m) {
                        None if !self.contains(m) => {
                            self.add_child(i, e, m);
                            changed = true;
                        }
                        Some(occ_m)
                            if self.occs[occ_m].parent.is_none() && !self.is_ancestor(occ_m, i) =>
                        {
                            self.attach_root(occ_m, i, e);
                            changed = true;
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
        }
    }

    /// Whether `edge` is already realized *in this forest* (anywhere).
    fn realized_here(&self, _at: usize, edge: EdgeId) -> bool {
        self.realizes(edge)
    }

    fn unique_or_none(&self, node: NodeId) -> Option<usize> {
        self.by_node[node.idx()].first().copied()
    }

    /// Emit this forest as one color of the builder (topological order).
    pub fn emit(&self, b: &mut MctSchemaBuilder, color: ColorId) -> Vec<PlacementId> {
        let mut ids = vec![PlacementId(u32::MAX); self.occs.len()];
        // children lists
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.occs.len()];
        let mut roots = Vec::new();
        for (i, o) in self.occs.iter().enumerate() {
            match o.parent {
                Some((p, _)) => children[p].push(i),
                None => roots.push(i),
            }
        }
        for r in roots {
            let mut stack = vec![r];
            while let Some(i) = stack.pop() {
                let o = &self.occs[i];
                ids[i] = match o.parent {
                    None => b.add_root(color, o.node),
                    Some((p, e)) => b.add_child(ids[p], e, o.node),
                };
                stack.extend(children[i].iter().rev().copied());
            }
        }
        debug_assert!(ids.iter().all(|p| p.0 != u32::MAX), "forest contains a cycle");
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use colorist_er::{catalog, EligibleAssociations, ErGraph};

    #[test]
    fn round_trip_through_schema() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = mc::mc(&g).unwrap();
        let mut b = MctSchemaBuilder::new(&g.name, "RT");
        for c in s.colors() {
            let f = Forest::from_schema(&s, c, g.node_count());
            let c2 = b.add_color();
            f.emit(&mut b, c2);
        }
        let s2 = b.finish(&g).unwrap();
        assert_eq!(s.render(&g).replace("[EN]", "[RT]"), s2.render(&g));
    }

    #[test]
    fn extend_maximal_covers_toy_mcmr() {
        // after extension, *both* colors of the toy graph must contain
        // b -> r3 -> d, so both (a,d) and (c,d) become direct.
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let s = mc::mc(&g).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let mut uncovered = 0;
        for c in s.colors() {
            let mut f = Forest::from_schema(&s, c, g.node_count());
            f.extend_maximal(&g);
            for a in elig.iter() {
                if !f.covers(a) {
                    uncovered += 1;
                }
            }
        }
        // Every eligible association is covered by at least one extended
        // color. (a,d) in one, (c,d) in the other.
        let a = g.node_by_name("a").unwrap();
        let d = g.node_by_name("d").unwrap();
        let mut covered_ad = false;
        for c in s.colors() {
            let mut f = Forest::from_schema(&s, c, g.node_count());
            f.extend_maximal(&g);
            covered_ad |= elig.between(a, d).iter().all(|x| f.covers(x));
        }
        assert!(covered_ad);
        let _ = uncovered;
    }

    #[test]
    fn attach_root_cycle_guard() {
        let g = ErGraph::from_diagram(&catalog::toy_mcmr()).unwrap();
        let a = g.node_by_name("a").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        let e = g.edge_ids().find(|&e| g.edge(e).rel == r1 && g.edge(e).participant == a).unwrap();
        let mut f = Forest::new(g.node_count());
        let pa = f.add_root(a);
        let pr = f.add_child(pa, e, r1);
        assert!(f.is_ancestor(pa, pr));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut f2 = f.clone();
            f2.attach_root(pa, pr, e);
        }));
        assert!(result.is_err(), "cycle attachment must panic");
    }
}

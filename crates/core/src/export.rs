//! Schema export: render an MCT schema as one DTD-like grammar per color.
//!
//! "Informally, a multi-colored XML schema is a set of XML schemas, one for
//! each color, along with possible inter-color integrity constraints"
//! (§2.3) — this module prints exactly that view: per color, an element
//! declaration per placement with the §4.2 occurrence bounds from
//! [`crate::constraints`], attribute declarations (keys, idrefs), and the
//! ICIC list at the end.

use crate::constraints::occurs;
use colorist_er::{Domain, ErGraph};
use colorist_mct::{color_name, MctSchema, PlacementId};
use std::fmt::Write as _;

/// Render the per-color DTD-like grammars of a schema.
///
/// Debug builds lint the schema first: exporting a malformed schema would
/// print a grammar that no database can satisfy.
pub fn export_dtd(schema: &MctSchema, graph: &ErGraph) -> String {
    #[cfg(debug_assertions)]
    {
        let diags = colorist_mct::lint::lint_schema(graph, schema);
        debug_assert!(
            diags.is_empty(),
            "exporting schema that fails lint:\n{}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
    let mut s = String::new();
    let _ = writeln!(s, "<!-- MCT schema for `{}` [{}] -->", schema.diagram, schema.strategy);
    for c in schema.colors() {
        let _ = writeln!(s, "\n<!-- color: {} -->", color_name(c).to_uppercase());
        // document root content: the color's roots, all optional/repeated
        let roots: Vec<String> = schema
            .roots(c)
            .iter()
            .map(|&r| format!("{}*", graph.node(schema.placement(r).node).name))
            .collect();
        let _ = writeln!(s, "<!ELEMENT root ({})>", join_or_empty(&roots));
        for &r in schema.roots(c) {
            emit_element(schema, graph, r, &mut s);
        }
    }
    if !schema.icics().is_empty() {
        let _ = writeln!(s, "\n<!-- inter-color integrity constraints -->");
        for icic in schema.icics() {
            let e = graph.edge(icic.edge);
            let colors: Vec<String> = icic.colors.iter().map(|&c| color_name(c)).collect();
            let _ = writeln!(
                s,
                "<!-- ICIC: {}--{} present in all of {{{}}} or none -->",
                graph.node(e.rel).name,
                graph.node(e.participant).name,
                colors.join(", ")
            );
        }
    }
    for l in schema.idrefs() {
        let e = graph.edge(l.edge);
        let _ = writeln!(
            s,
            "<!-- idref: {} @{} refers to {} @id -->",
            graph.node(e.rel).name,
            l.attr,
            graph.node(e.participant).name
        );
    }
    s
}

fn emit_element(schema: &MctSchema, graph: &ErGraph, p: PlacementId, s: &mut String) {
    let node = graph.node(schema.placement(p).node);
    let children: Vec<String> = schema
        .children(p)
        .iter()
        .map(|&c| {
            let o = occurs(schema, graph, c);
            format!("{}{}", graph.node(schema.placement(c).node).name, suffix(o.dtd()))
        })
        .collect();
    let _ = writeln!(s, "<!ELEMENT {} ({})>", node.name, join_or_empty(&children));
    // attributes: implicit id, declared attributes (a declared key named
    // `id` is subsumed by the implicit one), idrefs
    let mut attrs = vec!["id ID #REQUIRED".to_string()];
    for a in &node.attributes {
        if a.name == "id" {
            continue;
        }
        let ty = match a.domain {
            Domain::Text | Domain::Date => "CDATA",
            _ => "NMTOKEN",
        };
        attrs.push(format!(
            "{} {} {}",
            a.name,
            ty,
            if a.is_key { "#REQUIRED" } else { "#IMPLIED" }
        ));
    }
    for l in schema.idrefs() {
        if graph.edge(l.edge).rel == schema.placement(p).node {
            attrs.push(format!("{} IDREF #IMPLIED", l.attr));
        }
    }
    let _ = writeln!(s, "<!ATTLIST {} {}>", node.name, attrs.join(" "));
    for &c in schema.children(p) {
        emit_element(schema, graph, c, s);
    }
}

fn suffix(dtd: &str) -> &str {
    match dtd {
        "1" => "",
        other => other,
    }
}

fn join_or_empty(parts: &[String]) -> String {
    if parts.is_empty() {
        // rendered without the usual parentheses by the callers' format
        // strings, so supply our own content model keyword
        "#PCDATA".to_string()
    } else {
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{design, Strategy};
    use colorist_er::catalog;

    #[test]
    fn af_dtd_shows_figure_3_structure() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Af).unwrap();
        let dtd = export_dtd(&schema, &g);
        assert!(dtd.contains("<!ELEMENT country (in*)>"), "{dtd}");
        assert!(dtd.contains("bill_address_idref IDREF"), "{dtd}");
        // order totally participates in make: the child is `order`, exactly 1
        assert!(dtd.contains("<!ELEMENT make (order)>"), "{dtd}");
    }

    #[test]
    fn dr_dtd_lists_colors_and_icics() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Dr).unwrap();
        let dtd = export_dtd(&schema, &g);
        for color in ["BLUE", "RED", "PURPLE", "ORANGE", "GREEN"] {
            assert!(dtd.contains(&format!("<!-- color: {color} -->")), "{dtd}");
        }
        assert!(dtd.contains("ICIC:"), "{dtd}");
        assert!(!dtd.contains("idref:"), "DR has no idrefs");
    }

    #[test]
    fn every_strategy_exports() {
        let g = ErGraph::from_diagram(&catalog::er5()).unwrap();
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let dtd = export_dtd(&schema, &g);
            assert!(dtd.contains("<!ELEMENT"), "{s}");
        }
    }
}

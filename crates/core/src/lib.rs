//! # colorist-core — the paper's contribution: ER → MCT schema design
//!
//! This crate implements the design methodology of *Making Designer Schemas
//! with Colors* (ICDE 2006): algorithms that translate an ER diagram into
//! XML or MCT schemas satisfying chosen combinations of the four desirable
//! properties (§3):
//!
//! | property | meaning | formalizes |
//! |---|---|---|
//! | **NN** (node normal form) | no node type appears twice in any color | update-anomaly avoidance within a color |
//! | **EN** (edge normal form) | no ER edge realized in more than one color (zero ICICs) | update-anomaly avoidance across colors |
//! | **AR** (association recoverability) | every ER association recoverable by structural navigation — no value joins | query expressibility/efficiency |
//! | **DR** (direct recoverability) | every *eligible* association is one parent-child / ancestor-descendant step in a single color | aggressive AR |
//!
//! Strategies ([`Strategy`]): the three single-color translations of §4
//! (`DEEP`, `SHALLOW`, `AF`), Algorithm MC of Figure 7 (`EN`), Algorithm
//! DUMC (`DR`), the MCMR heuristic (`MCMR`), and the un-normalized `UNDR`
//! variant of §6. [`properties::check`] verifies any schema against all four
//! properties, and [`feasibility`] decides Theorem 4.1 (when a *single
//! color* suffices for NN + AR).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod af;
pub mod constraints;
pub mod deep;
pub mod dumc;
pub mod export;
pub mod feasibility;
mod forest;
pub mod mc;
pub mod mcmr;
pub mod properties;
pub mod report;
pub mod shallow;
pub mod strategy;
pub mod undr;

pub use export::export_dtd;
pub use feasibility::{single_color_feasibility, Feasibility};
pub use properties::{check, Properties};
pub use report::design_report;
pub use strategy::{design, design_all, Strategy};

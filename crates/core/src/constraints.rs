//! Mapping ER constraints onto the generated schema (§4.2).
//!
//! Three constraint families appear in the ER diagram:
//!
//! * **key constraints** — orthogonal to the translation: they only
//!   contribute keys to element types (carried on `is_key` attributes);
//! * **cardinality constraints** — bound the number of child elements of a
//!   given type per parent element;
//! * **participation constraints** — a *total* participation from parent to
//!   child becomes a minimum-occurrence of 1; a missing participation
//!   constraint between a node and its schema parent means the node may
//!   occur without the parent, which XML accommodates with heterogeneous
//!   instances (we model it as the placement also admitting parentless
//!   instances at the color root — see `min_occurs_at_root`).

use colorist_er::ErGraph;
use colorist_mct::{MctSchema, PlacementId};

/// Min/max number of child elements of a placement's type under one parent
/// element. `max == None` means unbounded (`*`/`+` in a DTD).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurs {
    /// Minimum occurrences per parent element.
    pub min: u32,
    /// Maximum occurrences per parent element (`None` = unbounded).
    pub max: Option<u32>,
}

impl Occurs {
    /// DTD-style rendering: `1`, `?`, `+`, or `*`.
    pub fn dtd(&self) -> &'static str {
        match (self.min, self.max) {
            (0, Some(1)) => "?",
            (_, Some(1)) => "1",
            (0, None) => "*",
            _ => "+",
        }
    }
}

/// Occurrence bounds of a placement under its parent element.
///
/// * Root placements: `0..*` — instances of heterogeneous documents.
/// * A participant element under its relationship element: exactly one
///   (every binary relationship instance involves exactly one instance per
///   endpoint).
/// * A relationship element under a participant element: bounded by the
///   participant's cardinality, with minimum 1 iff participation is total.
pub fn occurs(schema: &MctSchema, graph: &ErGraph, p: PlacementId) -> Occurs {
    let placement = schema.placement(p);
    let Some((parent, edge)) = placement.parent else {
        return Occurs { min: 0, max: None };
    };
    let e = graph.edge(edge);
    let parent_node = schema.placement(parent).node;
    if e.rel == parent_node {
        // participant nested under its relationship element: exactly one
        Occurs { min: 1, max: Some(1) }
    } else {
        // relationship nested under a participant
        let min = match e.participation {
            colorist_er::Participation::Total => 1,
            colorist_er::Participation::Partial => 0,
        };
        let max = match e.cardinality {
            colorist_er::Cardinality::One => Some(1),
            colorist_er::Cardinality::Many => None,
        };
        Occurs { min, max }
    }
}

/// Whether instances of this placement's type may occur *without* the
/// parent (§4.2's heterogeneous-instance case): true when the ER diagram
/// has no total-participation constraint binding the child to the path
/// above it.
pub fn may_occur_rootless(schema: &MctSchema, graph: &ErGraph, p: PlacementId) -> bool {
    let placement = schema.placement(p);
    let Some((parent, edge)) = placement.parent else {
        return true;
    };
    let e = graph.edge(edge);
    let parent_node = schema.placement(parent).node;
    if e.rel == parent_node {
        // a relationship instance always has its participant: never rootless
        false
    } else {
        // a relationship under a participant exists only with it
        // (relationship instances are existence-dependent on participants);
        // participants are rootless when their own participation is partial,
        // which is a property of the *child-of-relationship* edges above.
        e.participation == colorist_er::Participation::Partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{catalog, EligibleAssociations};

    #[test]
    fn occurs_follow_cardinality_and_participation() {
        let d = catalog::tpcw();
        let g = ErGraph::from_diagram(&d).unwrap();
        let elig = EligibleAssociations::enumerate(&g, 1);
        let _ = &elig;
        let schema = crate::strategy::design(&g, crate::Strategy::Af).unwrap();

        for p in schema.placement_ids() {
            let o = occurs(&schema, &g, p);
            let pl = schema.placement(p);
            match pl.parent {
                None => {
                    assert_eq!(o, Occurs { min: 0, max: None });
                    assert_eq!(o.dtd(), "*");
                }
                Some((parent, edge)) => {
                    let e = g.edge(edge);
                    if e.rel == schema.placement(parent).node {
                        assert_eq!(o, Occurs { min: 1, max: Some(1) });
                        assert_eq!(o.dtd(), "1");
                    } else {
                        // relationship under participant
                        match e.cardinality {
                            colorist_er::Cardinality::One => assert_eq!(o.max, Some(1)),
                            colorist_er::Cardinality::Many => assert_eq!(o.max, None),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn total_participation_sets_min_one() {
        // in TPC-W, `in` binds address totally to country: the `in` rel
        // element under `country`... no: total participation is on the
        // address endpoint. Check via the `make` rel: order's participation
        // in make is total, customer's partial.
        let d = catalog::tpcw();
        let make = d.relationship("make").unwrap();
        assert_eq!(make.endpoints[1].participation, colorist_er::Participation::Total);
        assert_eq!(make.endpoints[0].participation, colorist_er::Participation::Partial);
    }
}

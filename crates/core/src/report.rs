//! A textual design report for a diagram: schema family, property matrix,
//! color counts — the "which strategy should I use" summary an end user of
//! the methodology reads.

use crate::feasibility::single_color_feasibility;
use crate::properties;
use crate::strategy::{design, Strategy};
use colorist_er::{EligibleAssociations, ErGraph};
use std::fmt::Write as _;

/// Render a full design report for an ER graph: the Theorem 4.1 verdict,
/// then one row per strategy with the verified property profile.
pub fn design_report(graph: &ErGraph) -> String {
    let mut out = String::new();
    let elig = EligibleAssociations::enumerate_default(graph);
    let feas = single_color_feasibility(graph);
    let _ = writeln!(
        out,
        "diagram `{}`: {} nodes, {} edges, {} eligible associations",
        graph.name,
        graph.node_count(),
        graph.edge_count(),
        elig.len()
    );
    if feas.feasible() {
        let _ = writeln!(out, "single-color NN+AR: feasible (Theorem 4.1)");
    } else {
        let _ = writeln!(out, "single-color NN+AR: infeasible — {}", feas.explain());
    }
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>6} {:>10} {:>5} {:>5} {:>5} {:>5}",
        "strategy", "colors", "icics", "placements", "NN", "EN", "AR", "DR"
    );
    for s in Strategy::ALL {
        match design(graph, s) {
            Ok(schema) => {
                let p = properties::check(&schema, graph, &elig);
                let b = |x: bool| if x { "yes" } else { "-" };
                let _ = writeln!(
                    out,
                    "{:<8} {:>6} {:>6} {:>10} {:>5} {:>5} {:>5} {:>5}",
                    s.label(),
                    p.colors,
                    p.icics,
                    schema.placements().len(),
                    b(p.node_normal),
                    b(p.edge_normal),
                    b(p.association_recoverable),
                    b(p.direct_recoverable),
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<8} failed: {e}", s.label());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn tpcw_report_shows_paper_matrix() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let r = design_report(&g);
        assert!(r.contains("infeasible"), "{r}");
        assert!(r.contains("order_line"), "{r}");
        for s in Strategy::ALL {
            assert!(r.contains(s.label()), "{r}");
        }
        assert!(!r.contains("failed"), "{r}");
    }
}

//! The **UNDR** strategy (§6): *un-normalized direct recoverable*.
//!
//! A multi-colored schema in which direct recoverability **without color
//! crossings** has been selectively increased at the cost of node
//! normalization. Starting from the DR (DUMC) schema, every color is
//! enriched with duplicate subtrees: wherever an occurrence could reach an
//! association along a functional edge that its own color realizes only
//! elsewhere, the far node (and its functional subtree, up to a graft-depth
//! bound) is duplicated in place.
//!
//! The effect on TPC-W is the paper's: a single color ends up holding, say,
//! `order` together with *both* its `billing → address → country` and
//! `shipping → address → country` chains, so queries such as Q12 ("orders
//! whose billing and shipping addresses are both in …") evaluate in one
//! color with zero crossings — while updates to duplicated elements (U3)
//! become very expensive, and storage grows substantially (Table 1: UNDR
//! sits between the normalized schemas and DEEP).

use crate::dumc;
use crate::forest::Forest;
use colorist_er::{EligibleAssociations, ErGraph, NodeId};
use colorist_mct::{MctSchema, MctSchemaBuilder, SchemaError};

/// Default bound on the depth of grafted duplicate subtrees. Two levels
/// below a relationship reach `billing → address → in` from an `order`;
/// the completion loop grafts the missing participant itself one level
/// deeper, so `country` sits four below `order`.
pub const DEFAULT_GRAFT_DEPTH: usize = 2;

/// Build the UNDR schema with the default graft depth.
pub fn undr(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    undr_with(graph, DEFAULT_GRAFT_DEPTH)
}

/// Build the UNDR schema with an explicit graft-depth bound (0 reproduces
/// DR exactly, larger values duplicate more aggressively).
pub fn undr_with(graph: &ErGraph, graft_depth: usize) -> Result<MctSchema, SchemaError> {
    let eligible = EligibleAssociations::enumerate_default(graph);
    let base = dumc::dumc_with(graph, &eligible)?;

    let mut b = MctSchemaBuilder::new(&graph.name, "UNDR");
    // each (relationship, missing side) is completed in exactly one color —
    // one zero-crossing home per association, not a blanket unfolding.
    let mut done: std::collections::HashSet<(colorist_er::NodeId, colorist_er::EdgeId)> =
        std::collections::HashSet::new();
    for color in base.colors() {
        let mut f = Forest::from_schema(&base, color, graph.node_count());
        let originals = f.occs().len();
        for i in 0..originals {
            if graft_depth == 0 {
                break;
            }
            // selectivity: only structurally-placed relationship elements
            // are completed in place (their missing side is the hop a query
            // would otherwise cross colors for).
            let n = f.occs()[i].node;
            if graph.node(n).kind != colorist_er::NodeKind::Relationship {
                continue;
            }
            // completing a many-many relationship buys nothing: the pair it
            // connects is not an eligible association, so the copies would
            // never make anything directly recoverable.
            let many_many = graph
                .incident(n)
                .iter()
                .filter(|&&(e, _)| graph.edge(e).rel == n)
                .all(|&(e, _)| graph.edge(e).cardinality == colorist_er::Cardinality::Many);
            if many_many {
                continue;
            }
            let path = path_nodes(&f, i);
            let mut incident: Vec<_> = graph.incident(n).to_vec();
            incident.sort_by_key(|&(e, _)| e);
            for (e, m) in incident {
                let local = f.occs().iter().any(|o| o.parent == Some((i, e)));
                let arrival = f.occs()[i].parent.map(|(_, x)| x) == Some(e);
                if local || arrival || path.contains(&m) || !done.insert((n, e)) {
                    continue;
                }
                let child = f.add_child(i, e, m);
                graft(graph, &mut f, child, graft_depth);
            }
        }
        let c = b.add_color();
        f.emit(&mut b, c);
    }
    b.finish(graph)
}

/// Duplicate, under occurrence `i`, adjacent nodes the color does not give
/// it locally. The *selectivity* rule: only follow edges with multiplicity
/// one from the graft point — a relationship completes its missing
/// participant, and a participant continues into a relationship it joins at
/// most once. Each grafted placement then stores one copy per base
/// instance (an `address` copy under each order's `billing`), never a
/// fan-out of copies, which keeps UNDR's redundancy strictly below DEEP's
/// while making chains like `order → billing → address → in → country`
/// single-color. Duplicates expand recursively down to `depth` levels,
/// cutting on node types already on the path to the root.
fn graft(graph: &ErGraph, f: &mut Forest, i: usize, depth: usize) {
    if depth == 0 {
        return;
    }
    let n = f.occs()[i].node;
    let arrival = f.occs()[i].parent.map(|(_, e)| e);
    let path = path_nodes(f, i);
    let mut incident: Vec<_> = graph.incident(n).to_vec();
    incident.sort_by_key(|&(e, _)| e);
    for (e, m) in incident {
        if Some(e) == arrival {
            continue;
        }
        // multiplicity-one rule: n is the relationship of e, or joins e at
        // most once.
        let edge = graph.edge(e);
        let linear = edge.rel == n
            || (edge.participant == n && edge.cardinality == colorist_er::Cardinality::One);
        if !linear {
            continue;
        }
        // already realized right here?
        let has_local_child = f.occs().iter().any(|o| o.parent == Some((i, e)));
        if has_local_child || path.contains(&m) {
            continue;
        }
        let child = f.add_child(i, e, m);
        graft(graph, f, child, depth - 1);
    }
}

/// Node types on the path from `i` to its root (inclusive).
fn path_nodes(f: &Forest, i: usize) -> Vec<NodeId> {
    let mut v = Vec::new();
    let mut cur = i;
    loop {
        v.push(f.occs()[cur].node);
        match f.occs()[cur].parent {
            Some((p, _)) => cur = p,
            None => return v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::catalog;

    #[test]
    fn undr_keeps_ar_dr_loses_nn() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let s = undr(&g).unwrap();
        let p = properties::check(&s, &g, &elig);
        assert!(!p.node_normal, "duplication is the point");
        assert!(p.association_recoverable);
        assert!(p.direct_recoverable, "superset of the DR schema");
    }

    #[test]
    fn graft_depth_zero_is_dr() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let dr = dumc::dumc(&g).unwrap();
        let s = undr_with(&g, 0).unwrap();
        assert_eq!(s.placements().len(), dr.placements().len());
        let elig = EligibleAssociations::enumerate_default(&g);
        assert!(properties::check(&s, &g, &elig).node_normal);
    }

    #[test]
    fn some_color_holds_billing_and_shipping_chains_together() {
        // the Q12 structure: one color in which some `order` placement has
        // both billing//address and shipping//address strictly below it.
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = undr(&g).unwrap();
        let order = g.node_by_name("order").unwrap();
        let billing = g.node_by_name("billing").unwrap();
        let shipping = g.node_by_name("shipping").unwrap();
        let address = g.node_by_name("address").unwrap();
        let ok = s.placements_of(order).iter().any(|&po| {
            let has_chain = |rel| {
                s.placements_of(address).iter().any(|&pa| {
                    let Some((pr, _)) = s.placement(pa).parent else {
                        return false;
                    };
                    s.placement(pr).node == rel
                        && s.is_ancestor(po, pr)
                        && s.placement(pr).color == s.placement(po).color
                })
            };
            has_chain(billing) && has_chain(shipping)
        });
        assert!(ok, "\n{}", s.render(&g));
    }

    #[test]
    fn storage_sits_between_dr_and_deep() {
        // Table 1 shape: placement-count proxy for storage.
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let dr = dumc::dumc(&g).unwrap();
        let un = undr(&g).unwrap();
        assert!(un.placements().len() > dr.placements().len());
    }

    #[test]
    fn whole_catalog_builds() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = undr(&g).unwrap();
            assert!(s.placements().len() < 100_000, "{name}");
        }
    }
}

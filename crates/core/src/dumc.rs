//! **Algorithm DUMC** (§5.2): complete direct recoverability through a
//! disjoint union of MC-style colored trees (Theorem 5.2: NN + AR + DR).
//!
//! The paper defines DUMC as "the disjoint union of the MCT schemas that can
//! be produced by Algorithm MC" over its nondeterministic choices — enough
//! trees that every eligible association ends up a descending path in some
//! color. Taking the union literally wastes colors, and the paper itself
//! notes the color count "is not necessarily minimized". We construct it
//! constructively and then prune:
//!
//! 1. start from the Algorithm-MC schema, with every color grown maximally
//!    (the MCMR growth — each grown color is a forest an MC run could have
//!    produced, and covers many associations already);
//! 2. while some eligible association `(X, …, Y)` is uncovered, open a new
//!    color seeded with exactly that path — a functional chain, hence a tree
//!    a suitably-seeded MC run would build — and grow it maximally too;
//! 3. greedily drop colors whose removal keeps every ER node placed, every
//!    ER edge realized (AR), and every eligible association covered (DR) —
//!    this is the *color frugality* pass.
//!
//! The result satisfies NN (each color is a forest over distinct node
//! types), AR, and DR by construction; EN is generally lost, matching the
//! fundamental EN-vs-DR tension of §5.

use crate::forest::Forest;
use crate::mc;
use colorist_er::{EligibleAssociations, ErGraph};
use colorist_mct::{MctSchema, MctSchemaBuilder, SchemaError};

/// Build the DR schema of an ER graph via Algorithm DUMC.
pub fn dumc(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    let eligible = EligibleAssociations::enumerate_default(graph);
    dumc_with(graph, &eligible)
}

/// DUMC against a pre-enumerated association set (lets callers bound the
/// association path length).
pub fn dumc_with(
    graph: &ErGraph,
    eligible: &EligibleAssociations,
) -> Result<MctSchema, SchemaError> {
    // 1. grown MC base
    let base = mc::mc(graph)?;
    let mut forests: Vec<Forest> = base
        .colors()
        .map(|c| {
            let mut f = Forest::from_schema(&base, c, graph.node_count());
            f.extend_maximal(graph);
            f
        })
        .collect();

    // 2. cover every association
    for assoc in eligible.iter() {
        if forests.iter().any(|f| f.covers(assoc)) {
            continue;
        }
        let mut f = Forest::new(graph.node_count());
        let mut cur = f.add_root(assoc.source);
        for (i, &edge) in assoc.path.iter().enumerate() {
            cur = f.add_child(cur, edge, assoc.nodes[i + 1]);
        }
        f.extend_maximal(graph);
        debug_assert!(f.covers(assoc));
        forests.push(f);
    }

    // 3. frugality: drop redundant colors, newest first (the seeded extras
    // often subsume the base colors, and vice versa).
    let mut keep: Vec<bool> = vec![true; forests.len()];
    for i in (0..forests.len()).rev() {
        keep[i] = false;
        if !covers_everything(graph, eligible, &forests, &keep) {
            keep[i] = true;
        }
    }

    let mut b = MctSchemaBuilder::new(&graph.name, "DR");
    for (f, _) in forests.iter().zip(&keep).filter(|&(_, &k)| k) {
        let c = b.add_color();
        f.emit(&mut b, c);
    }
    b.finish(graph)
}

/// Do the kept forests place every node, realize every edge, and cover
/// every eligible association?
fn covers_everything(
    graph: &ErGraph,
    eligible: &EligibleAssociations,
    forests: &[Forest],
    keep: &[bool],
) -> bool {
    let kept = || forests.iter().zip(keep).filter(|&(_, &k)| k).map(|(f, _)| f);
    graph.node_ids().all(|n| kept().any(|f| f.contains(n)))
        && graph.edge_ids().all(|e| kept().any(|f| f.realizes(e)))
        && eligible.iter().all(|a| kept().any(|f| f.covers(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::catalog;

    #[test]
    fn theorem_5_2_on_the_whole_catalog() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let elig = EligibleAssociations::enumerate_default(&g);
            let s = dumc_with(&g, &elig).unwrap();
            let p = properties::check(&s, &g, &elig);
            assert!(p.node_normal, "{name}: NN");
            assert!(p.association_recoverable, "{name}: AR");
            assert!(
                p.direct_recoverable,
                "{name}: DR\n{:?}",
                properties::uncovered_associations(&s, &elig)
                    .iter()
                    .map(|a| format!(
                        "{}..{} via {}",
                        g.node(a.source).name,
                        g.node(a.target).name,
                        a.label(&g)
                    ))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn paper_color_budget_holds() {
        // §6.2: "The maximum number of colors used was 7" across the
        // collection; TPC-W's DR schema (Figure 5) uses 5.
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = dumc(&g).unwrap();
            assert!(s.color_count() <= 7, "{name}: DR used {} colors", s.color_count());
        }
    }

    #[test]
    fn second_toy_graph_needs_exactly_two_colors() {
        // §5.2: "an MCT schema needs to have two colors to support complete
        // direct recoverability on this ER graph".
        let g = ErGraph::from_diagram(&catalog::toy_dumc()).unwrap();
        let s = dumc(&g).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(p.direct_recoverable);
        assert_eq!(p.colors, 2, "\n{}", s.render(&g));
    }

    #[test]
    fn dr_has_at_least_as_many_colors_as_en() {
        for name in ["tpcw", "er5", "er9", "derby"] {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let en = mc::mc(&g).unwrap();
            let dr = dumc(&g).unwrap();
            assert!(dr.color_count() >= en.color_count(), "{name}");
        }
    }

    #[test]
    fn deterministic() {
        let g = ErGraph::from_diagram(&catalog::er9()).unwrap();
        assert_eq!(dumc(&g).unwrap().render(&g), dumc(&g).unwrap().render(&g));
    }
}

//! The **SHALLOW** translation (Figure 2): the "straightforward" single-color
//! XML schema.
//!
//! Entity types become children of the schema root; each relationship type
//! becomes a child of one of its participating entity types; every remaining
//! association is captured through id/idref attribute values. The result is
//! node normal (no update anomalies) but not association recoverable —
//! queries like Q1 need multiple value-based joins, which is exactly the
//! poor-performance corner of the design space.

use colorist_er::{Cardinality, ErGraph, NodeKind};
use colorist_mct::{MctSchema, MctSchemaBuilder, SchemaError};

/// Build the SHALLOW schema of an ER graph.
///
/// The parent of each relationship type is chosen deterministically: the
/// first endpoint with [`Cardinality::One`] participation (so a parent has
/// at most one child of each relationship type — `make` under `order`,
/// `billing` under `order`, `in` under `address`), falling back to the
/// first endpoint for M:N relationships. The other endpoint becomes an
/// idref. On TPC-W this reproduces Figure 2's idrefs exactly:
/// `customer_idref`, `bill_address_idref`, `ship_address_idref`,
/// `country_idref`, `address_idref`, `author_idref`, `item_idref`, and
/// `credit_card_transaction_idref`.
pub fn shallow(graph: &ErGraph) -> Result<MctSchema, SchemaError> {
    let mut b = MctSchemaBuilder::new(&graph.name, "SHALLOW");
    let color = b.add_color();

    // place every entity (and nothing else) at the root, remembering ids
    let mut placement = vec![None; graph.node_count()];
    for n in graph.node_ids() {
        if graph.node(n).kind == NodeKind::Entity {
            placement[n.idx()] = Some(b.add_root(color, n));
        }
    }

    // relationship nodes in dependency order: a higher-order relationship
    // must be placed after the relationship it participates in has a
    // placement (its structural parent may itself be a relationship).
    let mut rels: Vec<_> = graph.relationship_nodes().collect();
    let mut guard = 0usize;
    while !rels.is_empty() {
        guard += 1;
        assert!(guard <= graph.node_count() + 1, "higher-order cycle (validated earlier)");
        rels.retain(|&r| {
            let incident = graph.incident(r);
            // edges from r to its participants, in endpoint order
            let mut participant_edges: Vec<_> =
                incident.iter().filter(|&&(e, _)| graph.edge(e).rel == r).copied().collect();
            participant_edges.sort_by_key(|&(e, _)| graph.edge(e).endpoint);

            // parent choice: first One endpoint, else first endpoint
            let (parent_edge, parent_node) = participant_edges
                .iter()
                .copied()
                .find(|&(e, _)| graph.edge(e).cardinality == Cardinality::One)
                .unwrap_or(participant_edges[0]);
            let Some(parent_placement) = placement[parent_node.idx()] else {
                return true; // parent not placed yet: retry next round
            };
            let pr = b.add_child(parent_placement, parent_edge, r);
            placement[r.idx()] = Some(pr);
            for (e, _) in participant_edges {
                if e != parent_edge {
                    b.add_idref(graph, e);
                }
            }
            false
        });
    }

    b.finish(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use colorist_er::{catalog, EligibleAssociations, ErGraph};

    #[test]
    fn shallow_is_nn_en_but_not_ar() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = shallow(&g).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = properties::check(&s, &g, &elig);
        assert!(p.node_normal);
        assert!(p.edge_normal, "single color is trivially EN");
        assert!(!p.association_recoverable);
        assert!(!p.direct_recoverable);
        assert_eq!(p.colors, 1);
    }

    #[test]
    fn one_idref_per_relationship() {
        // every binary relationship nests under one endpoint and idrefs the
        // other: #idrefs == #relationships
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let s = shallow(&g).unwrap();
        assert_eq!(s.idrefs().len(), 8);
        let mut attrs: Vec<&str> = s.idrefs().iter().map(|l| l.attr.as_str()).collect();
        attrs.sort_unstable();
        // exactly Figure 2's idref attributes
        assert_eq!(
            attrs,
            vec![
                "address_idref",
                "author_idref",
                "bill_address_idref",
                "country_idref",
                "credit_card_transaction_idref",
                "customer_idref",
                "item_idref",
                "ship_address_idref",
            ]
        );
    }

    #[test]
    fn depth_is_at_most_two_for_first_order_diagrams() {
        for name in ["tpcw", "er1", "er5", "er9"] {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = shallow(&g).unwrap();
            for p in s.placement_ids() {
                assert!(s.depth(p) <= 1, "{name}: shallow schema must be flat");
            }
        }
    }

    #[test]
    fn works_on_whole_catalog() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let s = shallow(&g).unwrap();
            let elig = EligibleAssociations::enumerate(&g, 2);
            let p = properties::check(&s, &g, &elig);
            assert!(p.node_normal && p.edge_normal, "{name}");
        }
    }

    #[test]
    fn recursive_relationship_nests_under_one_endpoint() {
        let g = ErGraph::from_diagram(&catalog::er6()).unwrap();
        let s = shallow(&g).unwrap();
        let sup = g.node_by_name("supervises").unwrap();
        let p = s.placements_of(sup)[0];
        let (parent, edge) = s.placement(p).parent.unwrap();
        assert_eq!(s.placement(parent).node, g.node_by_name("employee").unwrap());
        // the sub endpoint is the One side (each employee has one boss)
        assert_eq!(g.edge(edge).role.as_deref(), Some("sub"));
        // the boss endpoint became boss_idref
        assert!(s.idrefs().iter().any(|l| l.attr == "boss_idref"));
    }
}

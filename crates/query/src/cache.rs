//! Sharded prepared-plan cache (DESIGN.md §15).
//!
//! The query service compiles and cost-optimizes each distinct read
//! pattern **once** per `(pattern, strategy, statistics epoch)` and serves
//! the cached [`Plan`] thereafter. The statistics epoch
//! ([`colorist_store::Statistics::epoch`]) is part of the key, so a
//! catalog maintenance step — any `write_attr` / insert / delete /
//! relabel — shifts every key and the next lookup re-optimizes against
//! the fresh histograms instead of serving a stale plan. Entries under
//! old epochs are never looked up again and age out through the
//! capacity sweep; *zero stale serves* holds by construction (the tests
//! in `tests/server.rs` pin it).
//!
//! Concurrency: the map is split into [`SHARDS`] independently locked
//! shards selected by key hash. A miss **builds the plan while holding
//! its shard lock**, so concurrent first requests for one key serialize:
//! exactly one charges a miss, every other requester charges a hit. That
//! makes the `plan_cache_hits`/`plan_cache_misses` counter family a pure
//! function of the request multiset (first touch per key misses, the
//! rest hit) for any worker count, as long as capacity is not exceeded —
//! the determinism the perfgate exact-matches. Distinct keys hashing to
//! different shards never contend.
//!
//! Eviction: per-shard FIFO over insertion order, triggered when a shard
//! exceeds its slice of the configured capacity. FIFO (not LRU) keeps
//! eviction order independent of read timing, preserving counter
//! determinism even when the sweep runs.

use crate::pattern::Pattern;
use crate::plan::Plan;
use crate::QueryError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. A power of two so the shard
/// index is a cheap mask of the key hash.
pub const SHARDS: usize = 16;

/// Default total entry capacity (across all shards) of
/// [`PlanCache::new`]. Workloads have tens of distinct patterns × seven
/// strategies; 1024 keeps several statistics epochs' worth resident.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Cache key: the pattern's structural fingerprint, the schema/strategy
/// label, and the statistics epoch the plan was optimized under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    fingerprint: String,
    strategy: String,
    stats_epoch: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Arc<Plan>>,
    fifo: VecDeque<Key>,
}

/// Counter snapshot of a [`PlanCache`]; see [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled + optimized and inserted.
    pub misses: u64,
    /// Entries removed by the capacity sweep.
    pub evictions: u64,
    /// Entries currently resident (across all shards).
    pub entries: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The outcome of one [`PlanCache::get_or_insert_with`] lookup.
#[derive(Debug, Clone)]
pub struct Lookup {
    /// The cached or freshly built plan.
    pub plan: Arc<Plan>,
    /// Whether the lookup was served from the cache.
    pub hit: bool,
    /// Entries the capacity sweep evicted *because of this insert* (0 on
    /// hits) — the per-request share of `plan_cache_evictions`.
    pub evicted: u64,
}

/// The sharded prepared-plan cache. Cheap to share: wrap it in an
/// [`Arc`] and hand clones to every worker.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (split evenly across
    /// [`SHARDS`]; each shard holds at least one).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up the plan for `(pattern, strategy, stats_epoch)`; on a miss
    /// run `build` (under the shard lock — see the module docs for why)
    /// and insert its plan. A failing `build` caches nothing and charges
    /// a miss.
    pub fn get_or_insert_with(
        &self,
        pattern: &Pattern,
        strategy: &str,
        stats_epoch: u64,
        build: impl FnOnce() -> Result<Plan, QueryError>,
    ) -> Result<Lookup, QueryError> {
        let key = Key {
            fingerprint: format!("{pattern:?}"),
            strategy: strategy.to_string(),
            stats_epoch,
        };
        let shard = &self.shards[fnv1a(&key) as usize % SHARDS];
        let mut s = shard.lock().expect("plan-cache shard lock");
        if let Some(plan) = s.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Lookup { plan: Arc::clone(plan), hit: true, evicted: 0 });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        s.map.insert(key.clone(), Arc::clone(&plan));
        s.fifo.push_back(key);
        let mut evicted = 0;
        while s.map.len() > self.cap_per_shard {
            let victim = s.fifo.pop_front().expect("fifo tracks map");
            s.map.remove(&victim);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(Lookup { plan, hit: false, evicted })
    }

    /// Current counter totals and resident-entry count.
    pub fn stats(&self) -> CacheStats {
        let entries =
            self.shards.iter().map(|s| s.lock().expect("shard lock").map.len() as u64).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock().expect("shard lock");
            s.map.clear();
            s.fifo.clear();
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity_per_shard", &self.cap_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Optimize-through-cache: the query service's prepare step. Keys on the
/// database's schema strategy label and **current** statistics epoch, so
/// a catalog maintenance step between calls re-optimizes instead of
/// serving the stale plan.
pub fn optimize_cached(
    cache: &PlanCache,
    db: &colorist_store::Database,
    graph: &colorist_er::ErGraph,
    pattern: &Pattern,
) -> Result<Lookup, QueryError> {
    cache.get_or_insert_with(pattern, &db.schema.strategy, db.statistics().epoch(), || {
        crate::optimize(db, graph, pattern)
    })
}

/// FNV-1a over the key's three components — stable, allocation-free, and
/// independent of the std `HashMap` hasher (whose per-process seed must
/// not influence shard placement... it doesn't anyway, but FNV keeps the
/// shard layout reproducible for debugging).
fn fnv1a(key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(key.fingerprint.as_bytes());
    eat(&[0xff]);
    eat(key.strategy.as_bytes());
    eat(&key.stats_epoch.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(name: &str) -> Pattern {
        Pattern {
            name: name.to_string(),
            nodes: Vec::new(),
            edges: Vec::new(),
            output: 0,
            distinct: false,
            group_by: None,
        }
    }

    fn plan() -> Plan {
        Plan::new("q".into(), "DR".into(), Vec::new(), 0, 1, Vec::new())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let cache = PlanCache::new(64);
        let p = pattern("q1");
        let lk = cache.get_or_insert_with(&p, "DR", 0, || Ok(plan())).unwrap();
        assert!(!lk.hit);
        let lk = cache.get_or_insert_with(&p, "DR", 0, || panic!("cached")).unwrap();
        assert!(lk.hit && lk.evicted == 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strategy_and_epoch_partition_the_keyspace() {
        let cache = PlanCache::new(64);
        let p = pattern("q1");
        for (strategy, epoch) in [("DR", 0), ("DEEP", 0), ("DR", 1)] {
            let lk = cache.get_or_insert_with(&p, strategy, epoch, || Ok(plan())).unwrap();
            assert!(!lk.hit, "{strategy}@{epoch} must be a distinct key");
        }
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = PlanCache::new(64);
        let p = pattern("q1");
        cache.get_or_insert_with(&p, "AF", 7, || Ok(plan())).unwrap();
        // statistics epoch bumped: the old entry is unreachable
        let lk = cache.get_or_insert_with(&p, "AF", 8, || Ok(plan())).unwrap();
        assert!(!lk.hit, "post-bump lookup must rebuild, not serve the stale plan");
    }

    #[test]
    fn capacity_sweep_evicts_fifo() {
        // capacity 16 → one entry per shard; same-shard collisions evict
        let cache = PlanCache::new(16);
        for i in 0..64 {
            cache.get_or_insert_with(&pattern(&format!("q{i}")), "EN", 0, || Ok(plan())).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 64);
        assert_eq!(s.evictions, 64 - s.entries);
        assert!(s.entries <= 16);
    }

    #[test]
    fn build_errors_cache_nothing() {
        let cache = PlanCache::new(64);
        let p = pattern("q1");
        let err =
            cache.get_or_insert_with(&p, "EN", 0, || Err(QueryError::UnknownNode("q1".into())));
        assert!(err.is_err());
        let lk = cache.get_or_insert_with(&p, "EN", 0, || Ok(plan())).unwrap();
        assert!(!lk.hit, "failed build must not poison the key");
        assert_eq!(cache.stats().entries, 1);
    }
}

//! Association patterns: the schema-independent query representation.
//!
//! A pattern is a tree over ER node types: nodes may carry attribute
//! predicates, edges name the exact ER path they traverse (the paper's
//! association-graph edge labels, Figure 6). One node is the output.
//! Patterns correspond to the XPath/XQuery queries of the evaluation —
//! e.g. Q1, *"orders placed by customers having addresses in Japan"*, is
//! the chain `country[name=…] —in— address —has— customer —make— order`
//! with `order` as output.

use crate::error::QueryError;
use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_store::Value;

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

/// An attribute predicate on a pattern node.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute index in the node's declaration.
    pub attr: usize,
    /// Operator.
    pub op: CmpOp,
    /// Comparison constant.
    pub value: Value,
}

impl Predicate {
    /// Evaluate against a concrete value.
    pub fn eval(&self, v: &Value) -> bool {
        let ord = v.total_cmp(&self.value);
        match self.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        }
    }
}

/// A pattern node: an ER node type plus optional predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternNode {
    /// The ER node type.
    pub node: NodeId,
    /// Optional predicate.
    pub predicate: Option<Predicate>,
}

/// A pattern edge: a concrete ER path between two pattern nodes. Interior
/// nodes carry no predicates and are not returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEdge {
    /// Source pattern node index.
    pub from: usize,
    /// Target pattern node index.
    pub to: usize,
    /// ER nodes along the path (`from`'s type first, `to`'s type last).
    pub nodes: Vec<NodeId>,
    /// ER edges along the path (`nodes.len() - 1` of them).
    pub path: Vec<EdgeId>,
}

/// A complete read query.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Label (e.g. `"Q1"`).
    pub name: String,
    /// Pattern nodes.
    pub nodes: Vec<PatternNode>,
    /// Pattern edges (must form a tree over the used nodes).
    pub edges: Vec<PatternEdge>,
    /// Index of the output node.
    pub output: usize,
    /// Whether logical duplicate elimination is requested (XQuery
    /// `distinct-values` — needed whenever un-normalized schemas would
    /// return copies).
    pub distinct: bool,
    /// Whether the query groups its output by an attribute (index), like
    /// the aggregation queries of the workload.
    pub group_by: Option<usize>,
}

/// An update statement: locate targets with a pattern, then act.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateSpec {
    /// Label (e.g. `"U2"`).
    pub name: String,
    /// Target-locating pattern (`output` designates the target node, or the
    /// anchor node for inserts).
    pub pattern: Pattern,
    /// What to do.
    pub action: UpdateAction,
}

/// Update actions.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateAction {
    /// Set `attr` (declared-attribute index) of each matched element.
    Modify {
        /// Attribute index.
        attr: usize,
        /// New value.
        value: Value,
    },
    /// Delete each matched element (its subtrees go with it, everywhere).
    Delete,
    /// Insert new instances linked to matched anchors.
    Insert(InsertSpec),
}

/// New instances to insert, in dependency order.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertSpec {
    /// The instances.
    pub instances: Vec<NewInstance>,
}

/// One new logical instance.
#[derive(Debug, Clone, PartialEq)]
pub struct NewInstance {
    /// The (entity) ER node type.
    pub node: NodeId,
    /// Declared attribute values.
    pub attrs: Vec<Value>,
    /// Relationship instances to create, linking this instance.
    pub links: Vec<InsertLink>,
}

/// One relationship instance created by an insert: links the new instance
/// to a partner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertLink {
    /// The relationship ER node.
    pub rel: NodeId,
    /// Edge from `rel` to the new instance's endpoint.
    pub self_edge: EdgeId,
    /// Edge from `rel` to the partner's endpoint.
    pub partner_edge: EdgeId,
    /// Who the partner is.
    pub partner: Partner,
}

/// A link partner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partner {
    /// The first element matched by the locating pattern at this pattern
    /// node index.
    Matched(usize),
    /// Another new instance (index into [`InsertSpec::instances`], must be
    /// earlier).
    New(usize),
    /// An existing instance by type and ordinal (for partners unrelated to
    /// the locating pattern, e.g. the items of a new order's lines).
    ByOrdinal(NodeId, u32),
}

/// Fluent pattern construction against an ER graph.
///
/// ```
/// use colorist_er::{catalog, ErGraph};
/// use colorist_query::PatternBuilder;
/// use colorist_store::Value;
///
/// let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
/// // Q1: orders placed by customers having addresses in a given country
/// let q1 = PatternBuilder::new(&g, "Q1")
///     .node("country").pred_eq("name", Value::Text("country_name_0".into()))
///     .node("order")
///     .chain(0, 1, &["in", "address", "has", "customer", "make"]).unwrap()
///     .output(1)
///     .build()
///     .unwrap();
/// assert_eq!(q1.edges[0].path.len(), 6);
/// ```
#[derive(Debug)]
pub struct PatternBuilder<'g> {
    graph: &'g ErGraph,
    name: String,
    nodes: Vec<PatternNode>,
    edges: Vec<PatternEdge>,
    output: usize,
    distinct: bool,
    group_by: Option<usize>,
    error: Option<QueryError>,
}

impl<'g> PatternBuilder<'g> {
    /// Start a pattern.
    pub fn new(graph: &'g ErGraph, name: &str) -> Self {
        PatternBuilder {
            graph,
            name: name.to_string(),
            nodes: Vec::new(),
            edges: Vec::new(),
            output: 0,
            distinct: false,
            group_by: None,
            error: None,
        }
    }

    /// Add a pattern node by ER type name; returns `self` (node index is
    /// the count so far; use in order).
    pub fn node(mut self, er_name: &str) -> Self {
        match self.graph.node_by_name(er_name) {
            Some(n) => self.nodes.push(PatternNode { node: n, predicate: None }),
            None => self.set_err(QueryError::UnknownNode(er_name.to_string())),
        }
        self
    }

    /// Attach an equality predicate to the most recent node.
    pub fn pred_eq(self, attr: &str, value: Value) -> Self {
        self.pred(attr, CmpOp::Eq, value)
    }

    /// Attach a predicate to the most recent node.
    pub fn pred(mut self, attr: &str, op: CmpOp, value: Value) -> Self {
        let Some(last) = self.nodes.last_mut() else {
            self.set_err(QueryError::Malformed("predicate before any node".into()));
            return self;
        };
        let node = last.node;
        match self.graph.node(node).attributes.iter().position(|a| a.name == attr) {
            Some(idx) => last.predicate = Some(Predicate { attr: idx, op, value }),
            None => {
                let node_name = self.graph.node(node).name.clone();
                self.set_err(QueryError::UnknownAttribute { node: node_name, attr: attr.into() });
            }
        }
        self
    }

    /// Connect two pattern nodes through the named interior ER nodes
    /// (`via` excludes the endpoints). Each consecutive name pair must be
    /// joined by exactly one ER edge; recursive relationships can be
    /// disambiguated with `rel@role` on the *relationship* name.
    pub fn chain(mut self, from: usize, to: usize, via: &[&str]) -> Result<Self, QueryError> {
        if self.error.is_some() {
            return Ok(self);
        }
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(QueryError::Malformed("chain endpoint out of range".into()));
        }
        let mut names: Vec<String> = Vec::with_capacity(via.len() + 2);
        names.push(self.graph.node(self.nodes[from].node).name.clone());
        names.extend(via.iter().map(|s| s.to_string()));
        names.push(self.graph.node(self.nodes[to].node).name.clone());

        let mut nodes = Vec::with_capacity(names.len());
        let mut path: Vec<EdgeId> = Vec::with_capacity(names.len() - 1);
        for pair in names.windows(2) {
            let (a_raw, b_raw) = (&pair[0], &pair[1]);
            let (a_name, a_role) = split_role(a_raw);
            let (b_name, b_role) = split_role(b_raw);
            let a = self
                .graph
                .node_by_name(a_name)
                .ok_or_else(|| QueryError::UnknownNode(a_name.to_string()))?;
            let b = self
                .graph
                .node_by_name(b_name)
                .ok_or_else(|| QueryError::UnknownNode(b_name.to_string()))?;
            // a role given on the step entering a recursive relationship
            // names the edge of that hop; the hop leaving it takes the
            // *other* edge (never re-traverse the edge just used).
            let role = a_role.or(b_role);
            let prev = path.last().copied();
            let edge = find_edge_excluding(self.graph, a, b, role, prev).ok_or(
                QueryError::NoSuchEdge { from: a_name.to_string(), to: b_name.to_string() },
            )?;
            if nodes.is_empty() {
                nodes.push(a);
            }
            nodes.push(b);
            path.push(edge);
        }
        self.edges.push(PatternEdge { from, to, nodes, path });
        Ok(self)
    }

    /// Set the output node.
    pub fn output(mut self, node: usize) -> Self {
        self.output = node;
        self
    }

    /// Request logical duplicate elimination.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Group the output by an attribute of the output node.
    pub fn group_by(mut self, attr: &str) -> Self {
        if let Some(out) = self.nodes.get(self.output) {
            match self.graph.node(out.node).attributes.iter().position(|a| a.name == attr) {
                Some(i) => self.group_by = Some(i),
                None => {
                    let node_name = self.graph.node(out.node).name.clone();
                    self.set_err(QueryError::UnknownAttribute {
                        node: node_name,
                        attr: attr.into(),
                    });
                }
            }
        }
        self
    }

    fn set_err(&mut self, e: QueryError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Finalize.
    pub fn build(self) -> Result<Pattern, QueryError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.nodes.is_empty() {
            return Err(QueryError::Malformed("pattern has no nodes".into()));
        }
        if self.output >= self.nodes.len() {
            return Err(QueryError::Malformed("output out of range".into()));
        }
        // tree check: edges must connect all nodes acyclically when there
        // is more than one node
        let n = self.nodes.len();
        if self.edges.len() + 1 != n && n > 1 {
            return Err(QueryError::Malformed(format!(
                "{} nodes need {} edges (tree), got {}",
                n,
                n - 1,
                self.edges.len()
            )));
        }
        let mut seen = vec![false; n];
        let mut stack = vec![self.output];
        seen[self.output] = true;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                for (a, b) in [(e.from, e.to), (e.to, e.from)] {
                    if a == v && !seen[b] {
                        seen[b] = true;
                        stack.push(b);
                    }
                }
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(QueryError::Malformed("pattern is not connected".into()));
        }
        Ok(Pattern {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
            output: self.output,
            distinct: self.distinct,
            group_by: self.group_by,
        })
    }
}

fn split_role(s: &str) -> (&str, Option<&str>) {
    match s.split_once('@') {
        Some((n, r)) => (n, Some(r)),
        None => (s, None),
    }
}

/// The ER edge between adjacent nodes `a` and `b` (one of them a
/// relationship), optionally disambiguated by role.
pub fn find_edge(graph: &ErGraph, a: NodeId, b: NodeId, role: Option<&str>) -> Option<EdgeId> {
    find_edge_excluding(graph, a, b, role, None)
}

/// Like [`find_edge`], preferring any candidate different from `exclude`
/// (so recursive-relationship chains never re-traverse the entering edge).
pub fn find_edge_excluding(
    graph: &ErGraph,
    a: NodeId,
    b: NodeId,
    role: Option<&str>,
    exclude: Option<EdgeId>,
) -> Option<EdgeId> {
    let candidates: Vec<EdgeId> =
        graph.incident(a).iter().filter(|&&(_, other)| other == b).map(|&(e, _)| e).collect();
    // preference order: role-matching first, then the rest; within that,
    // anything different from `exclude` beats re-traversing it.
    let mut pool: Vec<EdgeId> = Vec::with_capacity(candidates.len());
    if let Some(r) = role {
        pool.extend(
            candidates.iter().copied().filter(|&e| graph.edge(e).role.as_deref() == Some(r)),
        );
    }
    let extra: Vec<EdgeId> = candidates.iter().copied().filter(|e| !pool.contains(e)).collect();
    pool.extend(extra);
    pool.iter().copied().find(|&e| Some(e) != exclude).or_else(|| pool.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    fn graph() -> ErGraph {
        ErGraph::from_diagram(&catalog::tpcw()).unwrap()
    }

    #[test]
    fn q1_shape() {
        let g = graph();
        let q = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("x".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        assert_eq!(q.nodes.len(), 2);
        assert_eq!(q.edges[0].nodes.len(), 7);
        assert_eq!(q.edges[0].path.len(), 6);
        assert!(q.nodes[0].predicate.is_some());
        assert_eq!(q.output, 1);
    }

    #[test]
    fn star_pattern_builds() {
        let g = graph();
        // customers of orders billed in country X and shipped in country Y
        let q = PatternBuilder::new(&g, "star")
            .node("order")
            .node("country")
            .pred_eq("name", Value::Text("x".into()))
            .node("country")
            .pred_eq("name", Value::Text("y".into()))
            .chain(0, 1, &["billing", "address", "in"])
            .unwrap()
            .chain(0, 2, &["shipping", "address", "in"])
            .unwrap()
            .output(0)
            .build()
            .unwrap();
        assert_eq!(q.edges.len(), 2);
    }

    #[test]
    fn unknown_names_error() {
        let g = graph();
        assert!(matches!(
            PatternBuilder::new(&g, "x").node("nope").build(),
            Err(QueryError::UnknownNode(_))
        ));
        assert!(matches!(
            PatternBuilder::new(&g, "x").node("country").pred_eq("bogus", Value::Int(1)).build(),
            Err(QueryError::UnknownAttribute { .. })
        ));
        let err =
            PatternBuilder::new(&g, "x").node("country").node("item").chain(0, 1, &[]).unwrap_err();
        assert!(matches!(err, QueryError::NoSuchEdge { .. }));
    }

    #[test]
    fn disconnected_pattern_rejected() {
        let g = graph();
        let r = PatternBuilder::new(&g, "x").node("country").node("item").build();
        assert!(matches!(r, Err(QueryError::Malformed(_))));
    }

    #[test]
    fn recursive_roles_resolve_distinct_edges() {
        let g = ErGraph::from_diagram(&catalog::er6()).unwrap();
        let emp = g.node_by_name("employee").unwrap();
        let sup = g.node_by_name("supervises").unwrap();
        let boss = find_edge(&g, sup, emp, Some("boss")).unwrap();
        let subo = find_edge(&g, sup, emp, Some("sub")).unwrap();
        assert_ne!(boss, subo);
        // a boss..subordinate chain through supervises
        let q = PatternBuilder::new(&g, "rec")
            .node("employee")
            .node("employee")
            .chain(0, 1, &["supervises@boss"]) // boss side adjacent to node 0
            .unwrap()
            .output(1)
            .build();
        // the chain uses role on the first hop; second hop picks the other
        // edge by elimination? No: both hops need roles. Expect an edge
        // found for hop 1 and hop 2 falls back to the first edge.
        assert!(q.is_ok());
    }

    #[test]
    fn predicate_eval() {
        let p = Predicate { attr: 0, op: CmpOp::Lt, value: Value::Int(5) };
        assert!(p.eval(&Value::Int(3)));
        assert!(!p.eval(&Value::Int(7)));
        let p = Predicate { attr: 0, op: CmpOp::Gt, value: Value::Float(1.5) };
        assert!(p.eval(&Value::Float(2.0)));
    }
}

//! Colored-XPath rendering of compiled plans.
//!
//! Maps a plan back to the multi-colored XPath dialect of §2.2 — every axis
//! step annotated with its color — so the examples and reports can show
//! *why* a schema is cheap or expensive for a query, e.g. on AF:
//!
//! ```text
//! Q1: /blue::country[@name='Japan']//blue::order
//! ```
//!
//! versus SHALLOW's value-join chains.

use crate::exec::{op_kind, OpProfile, QueryResult};
use crate::pattern::CmpOp;
use crate::plan::{Op, Plan, VDir};
use colorist_er::ErGraph;
use colorist_mct::color_name;
use colorist_store::Metrics;
use std::fmt::Write as _;

/// Render a plan as an annotated colored-XPath sketch, one line per
/// operator, with element names instead of internal ids.
pub fn explain(graph: &ErGraph, plan: &Plan) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} [{}]:", plan.name, plan.strategy);
    for op in &plan.ops {
        match op {
            Op::Scan { color, node, pred, .. } => {
                let _ = write!(s, "  //{}::{}", color_name(*color), graph.node(*node).name);
                if let Some(p) = pred {
                    let attr = &graph.node(*node).attributes[p.attr].name;
                    let op_str = match p.op {
                        CmpOp::Eq => "=",
                        CmpOp::Lt => "<",
                        CmpOp::Gt => ">",
                    };
                    let _ = write!(s, "[@{attr}{op_str}'{}']", p.value);
                }
                let _ = writeln!(s);
            }
            Op::StructSemi { color, node, via, dir, .. } => {
                let axis = match (dir, via.len()) {
                    (VDir::Down, 1) => "/",
                    (VDir::Down, _) => "//",
                    (VDir::Up, 1) => "/parent::",
                    (VDir::Up, _) => "/ancestor::",
                };
                let _ = writeln!(
                    s,
                    "  {axis}{}::{}   (structural join, {} ER edge(s))",
                    color_name(*color),
                    graph.node(*node).name,
                    via.len()
                );
            }
            Op::ValueSemi { edge, src_is_rel, .. } => {
                let e = graph.edge(*edge);
                let (from, to) = if *src_is_rel {
                    (&graph.node(e.rel).name, &graph.node(e.participant).name)
                } else {
                    (&graph.node(e.participant).name, &graph.node(e.rel).name)
                };
                let _ = writeln!(s, "  ==[{from} @idref = {to} @id]==   (value join)");
            }
            Op::LinkSemi { edge, src_is_rel, .. } => {
                let e = graph.edge(*edge);
                let (from, to) = if *src_is_rel {
                    (&graph.node(e.rel).name, &graph.node(e.participant).name)
                } else {
                    (&graph.node(e.participant).name, &graph.node(e.rel).name)
                };
                let _ = writeln!(s, "  --[{from} / {to}]--   (parent-child link join)");
            }
            Op::Cross { color, node, .. } => {
                let _ = writeln!(
                    s,
                    "  ~~> {}::{}   (color crossing)",
                    color_name(*color),
                    graph.node(*node).name
                );
            }
            Op::Intersect { .. } => {}
            Op::Distinct { .. } => {
                let _ = writeln!(s, "  distinct-values(.)   (duplicate elimination)");
            }
            Op::GroupBy { attr, .. } => {
                let _ = writeln!(s, "  group by @{attr}");
            }
        }
    }
    s
}

/// One-line description of an operator with element/color names resolved.
fn op_desc(graph: &ErGraph, op: &Op) -> String {
    let edge_ends = |e: colorist_er::EdgeId| {
        let ed = graph.edge(e);
        format!("{}[{}]", graph.node(ed.rel).name, graph.node(ed.participant).name)
    };
    match op {
        Op::Scan { color, node, pred, .. } => {
            let p = if pred.is_some() { " [pred]" } else { "" };
            format!("scan {}::{}{p}", color_name(*color), graph.node(*node).name)
        }
        Op::StructSemi { color, node, via, dir, .. } => format!(
            "struct{} {}::{} via {} edge(s)",
            if *dir == VDir::Down { "↓" } else { "↑" },
            color_name(*color),
            graph.node(*node).name,
            via.len()
        ),
        Op::ValueSemi { edge, .. } => format!("valuejoin across {}", edge_ends(*edge)),
        Op::LinkSemi { edge, .. } => format!("linkjoin across {}", edge_ends(*edge)),
        Op::Cross { color, node, .. } => {
            format!("cross -> {}::{}", color_name(*color), graph.node(*node).name)
        }
        Op::Intersect { a, b, .. } => format!("intersect r{a} ∩ r{b}"),
        Op::Distinct { .. } => "distinct".to_string(),
        Op::GroupBy { attr, .. } => format!("group by @{attr}"),
    }
}

/// The operation counts a single operator contributes statically (its slice
/// of [`Plan::static_metrics`]).
fn op_static(op: &Op) -> Metrics {
    let mut m = Metrics::default();
    match op {
        Op::Scan { .. } | Op::Intersect { .. } => {}
        Op::StructSemi { .. } | Op::LinkSemi { .. } => m.structural_joins += 1,
        Op::ValueSemi { .. } => m.value_joins += 1,
        Op::Cross { .. } => m.color_crossings += 1,
        Op::Distinct { .. } => m.dup_eliminations += 1,
        Op::GroupBy { .. } => m.group_bys += 1,
    }
    m
}

/// Do the *operation-count* fields of `measured` match `expected`? (Volume
/// counters — scans, probes, bytes — have no static prediction.)
fn op_counts_match(measured: &Metrics, expected: &Metrics) -> bool {
    (
        measured.structural_joins,
        measured.value_joins,
        measured.color_crossings,
        measured.dup_eliminations,
        measured.group_bys,
    ) == (
        expected.structural_joins,
        expected.value_joins,
        expected.color_crossings,
        expected.dup_eliminations,
        expected.group_bys,
    )
}

/// Symmetric relative error between an estimate and a measurement, with
/// +1 smoothing so empty operators compare cleanly: `max(a,b)/min(a,b)`
/// over the smoothed values. 1.0 is a perfect estimate.
pub fn q_error(est: f64, measured: f64) -> f64 {
    let a = est.max(0.0) + 1.0;
    let b = measured.max(0.0) + 1.0;
    if a >= b {
        a / b
    } else {
        b / a
    }
}

/// Render `EXPLAIN ANALYZE` output: the plan, one row per operator, each
/// annotated with its **static** operation counts (what the compiler
/// predicted at emission time) and its **measured** per-operator metrics
/// from one [`execute_profiled`](crate::exec::execute_profiled) run — rows
/// in/out, elements scanned, join probes, bytes touched, and wall time.
/// Rows where the measured operation counts drift from the static
/// prediction are flagged `<< DRIFT`; the trailer reconciles the per-op
/// deltas against the query's top-level totals. Cost-annotated plans (the
/// optimizer's output) additionally show each operator's estimated rows
/// and counter charges with the per-op q-error, plus a trailer comparing
/// the predicted and measured gate sums.
pub fn explain_analyze(
    graph: &ErGraph,
    plan: &Plan,
    result: &QueryResult,
    profile: &[OpProfile],
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXPLAIN ANALYZE {} [{}]  wall {:.1}µs  rows {} ({} distinct)",
        plan.name,
        plan.strategy,
        result.metrics.elapsed.as_secs_f64() * 1e6,
        result.results,
        result.distinct,
    );
    let mut sum = Metrics::default();
    for p in profile {
        let Some(op) = plan.ops.get(p.op) else { continue };
        sum += p.metrics;
        let mut line = format!(
            "  r{} = {:<42} {:>8} -> {:<8}",
            op.dst(),
            op_desc(graph, op),
            p.rows_in,
            p.rows_out
        );
        let m = &p.metrics;
        for (key, v) in [
            ("scanned", m.elements_scanned),
            ("probes", m.join_probes),
            ("bytes", m.bytes_touched),
            ("idx", m.index_lookups),
            ("skipped", m.elements_skipped),
            ("pg-r", m.page_reads),
            ("pg-hit", m.pool_hits),
            ("pg-ev", m.pool_evictions),
        ] {
            if v > 0 {
                let _ = write!(line, " {key}={v}");
            }
        }
        let _ = write!(line, " {:.1}µs", p.elapsed.as_secs_f64() * 1e6);
        if let Some(c) = plan.costs.get(p.op).filter(|c| c.op == p.op) {
            // the optimizer's prediction for this operator, in the same
            // units as the measured counters above
            let _ = write!(
                line,
                "  ~est rows {:.0} scanned {:.0} probes {:.0} bytes {:.0} idx {:.0} ({:?}, q={:.2})",
                c.rows,
                c.scanned,
                c.probes,
                c.bytes,
                c.index_lookups,
                c.kernel,
                q_error(c.gate_sum(), (m.elements_scanned + m.join_probes + m.bytes_touched) as f64),
            );
        }
        if !op_counts_match(m, &op_static(op)) {
            let _ = write!(line, "  << DRIFT: measured op counts differ from static");
        }
        let _ = writeln!(s, "{}  [{}]", line, op_kind(op));
    }
    if !plan.costs.is_empty() {
        let est: f64 = plan.costs.iter().map(|c| c.gate_sum()).sum();
        let meas = (result.metrics.elements_scanned
            + result.metrics.join_probes
            + result.metrics.bytes_touched) as f64;
        let _ = writeln!(
            s,
            "  estimates: gate sum {est:.0} predicted vs {meas:.0} measured (q-error {:.2})",
            q_error(est, meas)
        );
    }
    let t = &result.metrics;
    let _ = writeln!(
        s,
        "  totals: {} structural, {} value, {} crossings, {} dup-elim, {} group-by; \
         scanned {} probes {} bytes {} idx {} skipped {}; \
         pages read {} written {} pool-hits {} evictions {}{}",
        t.structural_joins,
        t.value_joins,
        t.color_crossings,
        t.dup_eliminations,
        t.group_bys,
        t.elements_scanned,
        t.join_probes,
        t.bytes_touched,
        t.index_lookups,
        t.elements_skipped,
        t.page_reads,
        t.page_writes,
        t.pool_hits,
        t.pool_evictions,
        if op_counts_match(&sum, t)
            && (
                sum.elements_scanned,
                sum.join_probes,
                sum.bytes_touched,
                sum.index_lookups,
                sum.elements_skipped,
            ) == (
                t.elements_scanned,
                t.join_probes,
                t.bytes_touched,
                t.index_lookups,
                t.elements_skipped,
            )
        {
            "  (per-op deltas sum exactly)"
        } else {
            "  << DRIFT: per-op deltas do not sum to the totals"
        },
    );
    // storage + service cost lines (DESIGN.md §14/§15): only printed when
    // the run touched the respective layer, so heap-backend direct
    // executions stay byte-identical to the historical output
    let requests = t.page_reads + t.pool_hits;
    if requests > 0 {
        let _ = writeln!(
            s,
            "  storage: pool hit rate {:.3} ({} hits / {} faults)",
            t.pool_hits as f64 / requests as f64,
            t.pool_hits,
            t.page_reads,
        );
    }
    if t.plan_cache_hits + t.plan_cache_misses > 0 {
        let _ = writeln!(
            s,
            "  plan cache: {} hit(s), {} miss(es), {} eviction(s); queue wait {}ns",
            t.plan_cache_hits, t.plan_cache_misses, t.plan_cache_evictions, t.queue_wait_ns,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::execute_profiled;
    use crate::pattern::PatternBuilder;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::catalog;
    use colorist_store::Value;

    #[test]
    fn af_q1_reads_like_the_paper() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Af).unwrap();
        let q1 = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("Japan".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        let plan = compile(&g, &schema, &q1).unwrap();
        let text = explain(&g, &plan);
        assert!(text.contains("blue::country[@name='Japan']"), "{text}");
        assert!(text.contains("structural join"), "{text}");
        assert!(!text.contains("value join"), "{text}");
    }

    #[test]
    fn explain_analyze_reconciles_exactly() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let inst = generate(&g, &ScaleProfile::tpcw(&g, 40), 42);
        for strategy in [Strategy::Af, Strategy::Shallow, Strategy::Dr] {
            let schema = design(&g, strategy).unwrap();
            let db = materialize(&g, &schema, &inst);
            let q1 = PatternBuilder::new(&g, "Q1")
                .node("country")
                .pred_eq("name", Value::Text("Japan".into()))
                .node("order")
                .chain(0, 1, &["in", "address", "has", "customer", "make"])
                .unwrap()
                .output(1)
                .build()
                .unwrap();
            let plan = compile(&g, &schema, &q1).unwrap();
            let (result, profile) = execute_profiled(&db, &g, &plan).unwrap();
            let text = explain_analyze(&g, &plan, &result, &profile);
            assert!(text.contains("EXPLAIN ANALYZE Q1"), "{text}");
            assert!(text.contains("per-op deltas sum exactly"), "{text}");
            assert!(!text.contains("DRIFT"), "{text}");
            // one rendered row per executed operator
            assert_eq!(
                text.lines().filter(|l| l.trim_start().starts_with('r')).count(),
                plan.ops.len(),
                "{text}"
            );
        }
    }

    #[test]
    fn explain_analyze_shows_estimates_for_optimized_plans() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let inst = generate(&g, &ScaleProfile::tpcw(&g, 40), 42);
        let schema = design(&g, Strategy::Af).unwrap();
        let db = materialize(&g, &schema, &inst);
        let q1 = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("Japan".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        let plan = crate::optimize::optimize(&db, &g, &q1).unwrap();
        assert!(!plan.costs.is_empty());
        let (result, profile) = execute_profiled(&db, &g, &plan).unwrap();
        let text = explain_analyze(&g, &plan, &result, &profile);
        assert!(text.contains("~est rows"), "{text}");
        assert!(text.contains("estimates: gate sum"), "{text}");
        assert!(!text.contains("DRIFT"), "{text}");
        assert!(q_error(10.0, 10.0) == 1.0 && q_error(0.0, 9.0) == 10.0);
    }

    #[test]
    fn shallow_q1_shows_value_joins() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Shallow).unwrap();
        let q1 = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("Japan".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        let plan = compile(&g, &schema, &q1).unwrap();
        let text = explain(&g, &plan);
        assert!(text.contains("value join"), "{text}");
    }
}

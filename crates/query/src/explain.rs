//! Colored-XPath rendering of compiled plans.
//!
//! Maps a plan back to the multi-colored XPath dialect of §2.2 — every axis
//! step annotated with its color — so the examples and reports can show
//! *why* a schema is cheap or expensive for a query, e.g. on AF:
//!
//! ```text
//! Q1: /blue::country[@name='Japan']//blue::order
//! ```
//!
//! versus SHALLOW's value-join chains.

use crate::pattern::CmpOp;
use crate::plan::{Op, Plan, VDir};
use colorist_er::ErGraph;
use colorist_mct::color_name;
use std::fmt::Write as _;

/// Render a plan as an annotated colored-XPath sketch, one line per
/// operator, with element names instead of internal ids.
pub fn explain(graph: &ErGraph, plan: &Plan) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} [{}]:", plan.name, plan.strategy);
    for op in &plan.ops {
        match op {
            Op::Scan { color, node, pred, .. } => {
                let _ = write!(s, "  //{}::{}", color_name(*color), graph.node(*node).name);
                if let Some(p) = pred {
                    let attr = &graph.node(*node).attributes[p.attr].name;
                    let op_str = match p.op {
                        CmpOp::Eq => "=",
                        CmpOp::Lt => "<",
                        CmpOp::Gt => ">",
                    };
                    let _ = write!(s, "[@{attr}{op_str}'{}']", p.value);
                }
                let _ = writeln!(s);
            }
            Op::StructSemi { color, node, via, dir, .. } => {
                let axis = match (dir, via.len()) {
                    (VDir::Down, 1) => "/",
                    (VDir::Down, _) => "//",
                    (VDir::Up, 1) => "/parent::",
                    (VDir::Up, _) => "/ancestor::",
                };
                let _ = writeln!(
                    s,
                    "  {axis}{}::{}   (structural join, {} ER edge(s))",
                    color_name(*color),
                    graph.node(*node).name,
                    via.len()
                );
            }
            Op::ValueSemi { edge, src_is_rel, .. } => {
                let e = graph.edge(*edge);
                let (from, to) = if *src_is_rel {
                    (&graph.node(e.rel).name, &graph.node(e.participant).name)
                } else {
                    (&graph.node(e.participant).name, &graph.node(e.rel).name)
                };
                let _ = writeln!(s, "  ==[{from} @idref = {to} @id]==   (value join)");
            }
            Op::LinkSemi { edge, src_is_rel, .. } => {
                let e = graph.edge(*edge);
                let (from, to) = if *src_is_rel {
                    (&graph.node(e.rel).name, &graph.node(e.participant).name)
                } else {
                    (&graph.node(e.participant).name, &graph.node(e.rel).name)
                };
                let _ = writeln!(s, "  --[{from} / {to}]--   (parent-child link join)");
            }
            Op::Cross { color, node, .. } => {
                let _ = writeln!(
                    s,
                    "  ~~> {}::{}   (color crossing)",
                    color_name(*color),
                    graph.node(*node).name
                );
            }
            Op::Intersect { .. } => {}
            Op::Distinct { .. } => {
                let _ = writeln!(s, "  distinct-values(.)   (duplicate elimination)");
            }
            Op::GroupBy { attr, .. } => {
                let _ = writeln!(s, "  group by @{attr}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::pattern::PatternBuilder;
    use colorist_core::{design, Strategy};
    use colorist_er::catalog;
    use colorist_store::Value;

    #[test]
    fn af_q1_reads_like_the_paper() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Af).unwrap();
        let q1 = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("Japan".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        let plan = compile(&g, &schema, &q1).unwrap();
        let text = explain(&g, &plan);
        assert!(text.contains("blue::country[@name='Japan']"), "{text}");
        assert!(text.contains("structural join"), "{text}");
        assert!(!text.contains("value join"), "{text}");
    }

    #[test]
    fn shallow_q1_shows_value_joins() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, Strategy::Shallow).unwrap();
        let q1 = PatternBuilder::new(&g, "Q1")
            .node("country")
            .pred_eq("name", Value::Text("Japan".into()))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap();
        let plan = compile(&g, &schema, &q1).unwrap();
        let text = explain(&g, &plan);
        assert!(text.contains("value join"), "{text}");
    }
}

//! Update execution.
//!
//! The paper's update story (§6.1): *"In update queries, multi-colored
//! schemas may internally pay the price for color integrity preservation if
//! they are not edge normalized … However, this cost is lower than that of
//! a value join or un-normalized constraint maintenance."* Concretely:
//!
//! * **locating** the target is a query — SHALLOW/AF pay value joins, EN
//!   pays crossings, DR/MCMR navigate structurally;
//! * **modify** writes the element once, plus once per physical copy
//!   (duplicate updates — DEEP's and UNDR's U3 blow-up);
//! * **delete** removes the element's occurrences (and subtrees) from every
//!   color;
//! * **insert** creates new elements and threads them into *every* color at
//!   every matching placement — each extra color realizing the same ER edge
//!   is ICIC maintenance, and un-normalized placements force inserted
//!   copies, cascading through duplicated subtrees exactly like the
//!   materializer (this is why U1 writes 67 physical elements on DEEP for
//!   10 logical ones in Table 1).

use crate::error::QueryError;
use crate::exec::execute;
use crate::pattern::{Partner, UpdateAction, UpdateSpec};
use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::{ColorId, MctSchema, PlacementId};
use colorist_store::{Database, ElementId, Metrics, OccId, Value};
use std::collections::HashMap;

/// The outcome of one update.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Logical elements affected (inserted / modified / deleted) — the
    /// plain numbers of Table 1's update rows.
    pub logical: u64,
    /// Physical writes including copies — the parenthesized numbers.
    pub physical: u64,
    /// Locate + apply metrics.
    pub metrics: Metrics,
}

/// Execute an update against a database.
pub fn execute_update(
    db: &mut Database,
    graph: &ErGraph,
    spec: &UpdateSpec,
) -> Result<UpdateOutcome, QueryError> {
    let _span = colorist_trace::span("update", format!("update:{}", spec.name));
    let started = std::time::Instant::now();
    // 1. locate targets (cost-based when the database runs the
    // cost-model dispatch; plain compile under the heuristic modes)
    let plan = crate::optimize::optimize(db, graph, &spec.pattern)?;
    let located = execute(db, graph, &plan)?;
    let mut metrics = located.metrics;
    let targets = located.elements;

    // 2. apply
    let (logical, physical) = match &spec.action {
        UpdateAction::Modify { attr, value } => {
            let copies = copies_map(db);
            let mut physical = 0u64;
            for &t in &targets {
                db.write_attr(t, *attr, value.clone());
                physical += 1;
                for &c in copies.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
                    db.write_attr(c, *attr, value.clone());
                    physical += 1;
                    metrics.duplicate_updates += 1;
                }
            }
            (targets.len() as u64, physical)
        }

        UpdateAction::Delete => {
            let copies = copies_map(db);
            let mut physical = 0u64;
            for &t in &targets {
                db.kill_links_of(graph, t);
                physical += db.remove_element_occurrences(t) as u64;
                // the canonical delete already removed every copy's
                // occurrences; these per-copy calls are now no-ops kept for
                // the duplicate-maintenance accounting (one duplicate write
                // per physical copy, exactly as on the write path)
                for &c in copies.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
                    physical += db.remove_element_occurrences(c) as u64;
                    metrics.duplicate_updates += 1;
                }
            }
            (targets.len() as u64, physical)
        }

        UpdateAction::Insert(ins) => {
            let anchors = anchor_elements(db, graph, spec)?;
            let physical = Inserter::run(db, graph, ins, &anchors, &mut metrics)?;
            let logical = ins.instances.len() as u64
                + ins.instances.iter().map(|i| i.links.len() as u64).sum::<u64>();
            (logical, physical)
        }
    };

    // 3. commit: write dirty segments through the paged backend (one
    // transaction) so durability matches the in-memory state. No-op on the
    // heap backend and when nothing was written.
    let report = db.flush_storage().map_err(|e| QueryError::Storage(e.to_string()))?;
    if report.pages_written > 0 {
        metrics.page_writes += report.pages_written;
        let mut span = colorist_trace::span("storage", format!("flush:{}", spec.name));
        span.counter("page_writes", report.pages_written);
    }

    metrics.results = logical;
    metrics.distinct_results = logical;
    metrics.elapsed = started.elapsed();
    Ok(UpdateOutcome { logical, physical, metrics })
}

/// Physical copies per canonical element.
fn copies_map(db: &Database) -> HashMap<ElementId, Vec<ElementId>> {
    let mut map: HashMap<ElementId, Vec<ElementId>> = HashMap::new();
    for (i, e) in db.elements().iter().enumerate() {
        let id = ElementId(i as u32);
        if e.canonical != id {
            map.entry(e.canonical).or_default().push(id);
        }
    }
    map
}

/// First matched element per pattern node of the locating pattern.
fn anchor_elements(
    db: &Database,
    graph: &ErGraph,
    spec: &UpdateSpec,
) -> Result<Vec<Option<ElementId>>, QueryError> {
    let mut anchors = Vec::with_capacity(spec.pattern.nodes.len());
    for i in 0..spec.pattern.nodes.len() {
        let mut p = spec.pattern.clone();
        p.output = i;
        p.distinct = false;
        p.group_by = None;
        let plan = crate::optimize::optimize(db, graph, &p)?;
        let r = execute(db, graph, &plan)?;
        anchors.push(r.elements.first().copied());
    }
    Ok(anchors)
}

/// An instance being threaded into the trees: either one of the freshly
/// inserted instances (by index into `Inserter::new_nodes`) or an existing
/// logical instance (its canonical element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Who {
    New(usize),
    Existing(ElementId),
}

struct Inserter<'a> {
    graph: &'a ErGraph,
    /// All new instances: entities first (spec order), then relationships.
    new_nodes: Vec<NodeId>,
    new_elems: Vec<ElementId>,
    /// (new rel index, edge) -> partner on that edge.
    rel_links: HashMap<(usize, EdgeId), Who>,
    /// (participant, edge) -> new rel indexes.
    rev_links: HashMap<(Who, EdgeId), Vec<usize>>,
    /// per edge: the relationship-ordinal watermark before this insert
    /// (links at or above it belong to the instances being inserted).
    watermarks: HashMap<EdgeId, u32>,
    physical: u64,
}

impl<'a> Inserter<'a> {
    fn run(
        db: &mut Database,
        graph: &'a ErGraph,
        ins: &crate::pattern::InsertSpec,
        anchors: &[Option<ElementId>],
        metrics: &mut Metrics,
    ) -> Result<u64, QueryError> {
        let mut me = Inserter {
            graph,
            new_nodes: Vec::new(),
            new_elems: Vec::new(),
            rel_links: HashMap::new(),
            rev_links: HashMap::new(),
            watermarks: HashMap::new(),
            physical: 0,
        };
        // watermark every edge before any link is pushed
        for (ii, inst) in ins.instances.iter().enumerate() {
            let _ = ii;
            for l in &inst.links {
                for e in [l.self_edge, l.partner_edge] {
                    me.watermarks.entry(e).or_insert_with(|| db.ordinal_count(graph.edge(e).rel));
                }
            }
        }

        // create entity elements
        for inst in &ins.instances {
            me.new_nodes.push(inst.node);
            me.new_elems.push(db.insert_element(inst.node, inst.attrs.clone()));
            me.physical += 1;
        }
        // create relationship elements + link tables
        for (ii, inst) in ins.instances.iter().enumerate() {
            for l in &inst.links {
                let partner = match l.partner {
                    Partner::Matched(p) => {
                        Who::Existing(anchors.get(p).copied().flatten().ok_or_else(|| {
                            QueryError::Malformed("insert anchor unmatched".into())
                        })?)
                    }
                    Partner::New(j) => Who::New(j),
                    Partner::ByOrdinal(node, ordinal) => {
                        Who::Existing(db.canonical_by_ordinal(node, ordinal).ok_or_else(|| {
                            QueryError::Malformed("insert partner ordinal out of range".into())
                        })?)
                    }
                };
                let idx = me.new_nodes.len();
                // idref slots in schema order for this relationship
                let mut attrs: Vec<Value> =
                    graph.node(l.rel).attributes.iter().map(default_value).collect();
                let idref_edges: Vec<EdgeId> = db
                    .schema
                    .idrefs()
                    .iter()
                    .filter(|x| graph.edge(x.edge).rel == l.rel)
                    .map(|x| x.edge)
                    .collect();
                for &ie in &idref_edges {
                    let who = if ie == l.partner_edge { partner } else { Who::New(ii) };
                    let ordinal = match who {
                        Who::New(j) => db.element(me.new_elems[j]).ordinal,
                        Who::Existing(e) => db.element(e).ordinal,
                    };
                    attrs.push(Value::Int(ordinal as i64));
                }
                me.new_nodes.push(l.rel);
                let rel_elem = db.insert_element(l.rel, attrs);
                me.new_elems.push(rel_elem);
                me.physical += 1;
                // persist the adjacency so link joins and future cascades
                // see the new relationship instance
                let rel_ordinal = db.element(rel_elem).ordinal;
                let self_ordinal = db.element(me.new_elems[ii]).ordinal;
                let partner_ordinal = match partner {
                    Who::New(j) => db.element(me.new_elems[j]).ordinal,
                    Who::Existing(pe) => db.element(pe).ordinal,
                };
                db.push_link(l.self_edge, rel_ordinal, self_ordinal);
                db.push_link(l.partner_edge, rel_ordinal, partner_ordinal);
                me.rel_links.insert((idx, l.self_edge), Who::New(ii));
                me.rel_links.insert((idx, l.partner_edge), partner);
                me.rev_links.entry((Who::New(ii), l.self_edge)).or_default().push(idx);
                me.rev_links.entry((partner, l.partner_edge)).or_default().push(idx);
                for e in [l.self_edge, l.partner_edge] {
                    metrics.icic_maintenance +=
                        db.schema.edge_colors(e).len().saturating_sub(1) as u64;
                }
            }
        }

        // thread occurrences through every color
        let schema = db.schema.clone();
        for color in schema.colors() {
            let mut bound: HashMap<Who, ()> = HashMap::new();
            let mut placements = Vec::new();
            for &r in schema.roots(color) {
                placements.extend(schema.subtree(r));
            }
            for &p in &placements {
                let node = schema.placement(p).node;
                let whos: Vec<usize> =
                    (0..me.new_nodes.len()).filter(|&i| me.new_nodes[i] == node).collect();
                if whos.is_empty() {
                    continue;
                }
                match schema.placement(p).parent {
                    None => {
                        for i in whos {
                            me.add_recursive(
                                db,
                                &schema,
                                color,
                                p,
                                Who::New(i),
                                None,
                                &mut bound,
                                metrics,
                            );
                        }
                    }
                    Some((pp, e)) => {
                        for i in whos {
                            for parent in me.neighbors(db, Who::New(i), e, node) {
                                let Who::Existing(pe) = parent else { continue };
                                let parent_occs: Vec<OccId> = db
                                    .occurrences_of_logical(color, pe)
                                    .iter()
                                    .copied()
                                    .filter(|&o| db.color(color).occ(o).placement == pp)
                                    .collect();
                                for po in parent_occs {
                                    me.add_recursive(
                                        db,
                                        &schema,
                                        color,
                                        p,
                                        Who::New(i),
                                        Some(po),
                                        &mut bound,
                                        metrics,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            // heterogeneous fallback (§4.2): unbound new instances become
            // parentless roots at their first placement in the color
            for i in 0..me.new_nodes.len() {
                if bound.contains_key(&Who::New(i)) {
                    continue;
                }
                if let Some(&p) =
                    placements.iter().find(|&&p| schema.placement(p).node == me.new_nodes[i])
                {
                    me.add_recursive(db, &schema, color, p, Who::New(i), None, &mut bound, metrics);
                }
            }
            db.relabel_color(color);
        }

        Ok(me.physical)
    }

    fn first_new_ordinal(&self, e: EdgeId) -> u32 {
        self.watermarks.get(&e).copied().unwrap_or(u32::MAX)
    }

    /// Instances adjacent to `who` via ER edge `e`, on the side *opposite*
    /// to `who_node`.
    fn neighbors(&self, db: &Database, who: Who, e: EdgeId, who_node: NodeId) -> Vec<Who> {
        let edge = self.graph.edge(e);
        if edge.rel == who_node {
            // who is the relationship: exactly one participant
            match who {
                Who::New(i) => self.rel_links.get(&(i, e)).copied().into_iter().collect(),
                Who::Existing(el) => {
                    let ordinal = db.element(el).ordinal;
                    db.link(e, ordinal)
                        .and_then(|p| db.canonical_by_ordinal(edge.participant, p))
                        .map(Who::Existing)
                        .into_iter()
                        .collect()
                }
            }
        } else {
            // who is the participant: relationship instances
            let mut out: Vec<Who> = self
                .rev_links
                .get(&(who, e))
                .map(|v| v.iter().map(|&i| Who::New(i)).collect())
                .unwrap_or_default();
            if let Who::Existing(el) = who {
                let ordinal = db.element(el).ordinal;
                let new_floor = self.first_new_ordinal(e);
                for r in db.linked_rels(e, ordinal) {
                    // skip the links we just pushed (handled as New above)
                    if r >= new_floor {
                        continue;
                    }
                    if let Some(rel) = db.canonical_by_ordinal(edge.rel, r) {
                        out.push(Who::Existing(rel));
                    }
                }
            }
            out
        }
    }

    /// Add an occurrence of `who` at placement `p` under `parent`, and
    /// cascade its subtree (new links and, through [`LinkSource`], existing
    /// ones — the duplicated-subtree maintenance of un-normalized schemas).
    #[allow(clippy::too_many_arguments)]
    fn add_recursive(
        &mut self,
        db: &mut Database,
        schema: &MctSchema,
        color: ColorId,
        p: PlacementId,
        who: Who,
        parent: Option<OccId>,
        bound: &mut HashMap<Who, ()>,
        metrics: &mut Metrics,
    ) {
        let element = match who {
            Who::New(i) if bound.insert(who, ()).is_none() => self.new_elems[i],
            Who::New(i) => {
                metrics.duplicate_updates += 1;
                db.insert_copy(self.new_elems[i])
            }
            Who::Existing(el) => {
                bound.entry(who).or_insert(());
                metrics.duplicate_updates += 1;
                db.insert_copy(el)
            }
        };
        self.physical += 1;
        let occ = db.push_occurrence(color, element, p, parent);
        let node = schema.placement(p).node;
        for &cp in schema.children(p) {
            // every placement in a children index has a parent by schema
            // construction (lint S001); skip defensively rather than panic
            let Some((_, e)) = schema.placement(cp).parent else {
                debug_assert!(false, "S001 child placement {cp} has no parent");
                continue;
            };
            for child in self.neighbors(db, who, e, node) {
                self.add_recursive(db, schema, color, cp, child, Some(occ), bound, metrics);
            }
        }
    }
}

fn default_value(a: &colorist_er::Attribute) -> Value {
    match a.domain {
        colorist_er::Domain::Integer => Value::Int(0),
        colorist_er::Domain::Float => Value::Float(0.0),
        _ => Value::Text(String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::pattern::{InsertLink, InsertSpec, NewInstance, PatternBuilder};
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, CanonicalInstance, ScaleProfile};
    use colorist_er::catalog;
    use colorist_er::ErGraph;

    fn setup(strategy: Strategy) -> (ErGraph, CanonicalInstance, Database) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 40);
        let inst = generate(&g, &p, 5);
        let schema = design(&g, strategy).unwrap();
        let db = materialize(&g, &schema, &inst);
        (g, inst, db)
    }

    fn modify_spec(g: &ErGraph) -> UpdateSpec {
        // U2-style: bump an item's cost
        let pattern = PatternBuilder::new(g, "U2")
            .node("item")
            .pred_eq("id", Value::Int(3))
            .output(0)
            .build()
            .unwrap();
        UpdateSpec {
            name: "U2".into(),
            pattern,
            action: UpdateAction::Modify {
                attr: 2, // cost
                value: Value::Float(9.99),
            },
        }
    }

    #[test]
    fn modify_touches_all_copies_on_deep() {
        let (g, _inst, mut db) = setup(Strategy::Deep);
        let out = execute_update(&mut db, &g, &modify_spec(&g)).unwrap();
        assert_eq!(out.logical, 1);
        assert!(out.physical > 1, "DEEP duplicates items");
        assert!(out.metrics.duplicate_updates > 0);
        // all copies updated
        let item = g.node_by_name("item").unwrap();
        let target = db.extent(item)[3];
        for (i, e) in db.elements().iter().enumerate() {
            if e.canonical == target {
                assert_eq!(e.attrs[2], Value::Float(9.99), "element {i}");
            }
        }
    }

    #[test]
    fn modify_is_single_write_on_normalized() {
        let (g, _inst, mut db) = setup(Strategy::En);
        let out = execute_update(&mut db, &g, &modify_spec(&g)).unwrap();
        assert_eq!(out.logical, 1);
        assert_eq!(out.physical, 1);
        assert_eq!(out.metrics.duplicate_updates, 0);
    }

    #[test]
    fn delete_removes_from_every_color() {
        let (g, _inst, mut db) = setup(Strategy::Dr);
        let item = g.node_by_name("item").unwrap();
        let target = db.extent(item)[3];
        let spec = UpdateSpec {
            name: "del".into(),
            pattern: PatternBuilder::new(&g, "del")
                .node("item")
                .pred_eq("id", Value::Int(3))
                .output(0)
                .build()
                .unwrap(),
            action: UpdateAction::Delete,
        };
        let out = execute_update(&mut db, &g, &spec).unwrap();
        assert_eq!(out.logical, 1);
        assert!(out.physical >= db.color_count() as u64, "one occurrence per color at least");
        for c in 0..db.color_count() {
            let tree = db.color(colorist_mct::ColorId(c as u16));
            assert!(tree.occs().iter().all(|o| o.element != target), "color {c}");
        }
    }

    #[test]
    fn insert_order_appears_in_every_color_and_all_schemas_agree() {
        // U1-style: a new order for customer 7, with one credit card
        // transaction, linked via make and associate.
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let profile = ScaleProfile::tpcw(&g, 40);
        let inst = generate(&g, &profile, 5);
        let make = g.node_by_name("make").unwrap();
        let associate = g.node_by_name("associate").unwrap();
        let order = g.node_by_name("order").unwrap();
        let cct = g.node_by_name("credit_card_transaction").unwrap();
        let customer = g.node_by_name("customer").unwrap();
        let e = |rel: NodeId, part: NodeId| {
            g.edge_ids().find(|&e| g.edge(e).rel == rel && g.edge(e).participant == part).unwrap()
        };
        let spec = |gr: &ErGraph| UpdateSpec {
            name: "U1".into(),
            pattern: PatternBuilder::new(gr, "U1loc")
                .node("customer")
                .pred_eq("id", Value::Int(7))
                .output(0)
                .build()
                .unwrap(),
            action: UpdateAction::Insert(InsertSpec {
                instances: vec![
                    NewInstance {
                        node: order,
                        attrs: vec![
                            Value::Int(999_999),
                            Value::Text("2026-01-01".into()),
                            Value::Float(10.0),
                            Value::Float(1.0),
                            Value::Float(11.0),
                            Value::Text("new".into()),
                        ],
                        links: vec![InsertLink {
                            rel: make,
                            self_edge: e(make, order),
                            partner_edge: e(make, customer),
                            partner: Partner::Matched(0),
                        }],
                    },
                    NewInstance {
                        node: cct,
                        attrs: vec![
                            Value::Int(999_999),
                            Value::Text("visa".into()),
                            Value::Text("1111".into()),
                            Value::Text("2027-01-01".into()),
                            Value::Text("auth".into()),
                            Value::Float(11.0),
                        ],
                        links: vec![InsertLink {
                            rel: associate,
                            self_edge: e(associate, cct),
                            partner_edge: e(associate, order),
                            partner: Partner::New(0),
                        }],
                    },
                ],
            }),
        };

        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let mut db = materialize(&g, &schema, &inst);
            let before = db.extent(order).len();
            let out = execute_update(&mut db, &g, &spec(&g)).unwrap();
            assert_eq!(out.logical, 4, "{s}: order + cct + make + associate");
            assert_eq!(db.extent(order).len(), before + 1, "{s}");
            // the new order must be reachable in every color that places it
            let new_order = *db.extent(order).last().unwrap();
            for c in 0..db.color_count() {
                let color = colorist_mct::ColorId(c as u16);
                if db
                    .schema
                    .placements_of(order)
                    .iter()
                    .any(|&p| db.schema.placement(p).color == color)
                {
                    assert!(
                        !db.occurrences_of_logical(color, new_order).is_empty(),
                        "{s}: new order missing from color {c}"
                    );
                }
            }
            // and the query "orders of customer 7" must now include it
            let q = PatternBuilder::new(&g, "check")
                .node("customer")
                .pred_eq("id", Value::Int(7))
                .node("order")
                .chain(0, 1, &["make"])
                .unwrap()
                .output(1)
                .build()
                .unwrap();
            let plan = compile(&g, &db.schema, &q).unwrap();
            let r = execute(&db, &g, &plan).unwrap();
            assert!(
                r.elements.contains(&new_order),
                "{s}: inserted order must be queryable\n{plan}"
            );
        }
    }

    #[test]
    fn unnormalized_insert_writes_more_physical_elements() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let profile = ScaleProfile::tpcw(&g, 40);
        let inst = generate(&g, &profile, 5);
        let order = g.node_by_name("order").unwrap();
        let make = g.node_by_name("make").unwrap();
        let customer = g.node_by_name("customer").unwrap();
        let e = |rel: NodeId, part: NodeId| {
            g.edge_ids().find(|&e| g.edge(e).rel == rel && g.edge(e).participant == part).unwrap()
        };
        let spec = UpdateSpec {
            name: "ins".into(),
            pattern: PatternBuilder::new(&g, "loc")
                .node("customer")
                .pred_eq("id", Value::Int(2))
                .output(0)
                .build()
                .unwrap(),
            action: UpdateAction::Insert(InsertSpec {
                instances: vec![NewInstance {
                    node: order,
                    attrs: vec![
                        Value::Int(1_000_000),
                        Value::Text("2026-01-01".into()),
                        Value::Float(1.0),
                        Value::Float(0.1),
                        Value::Float(1.1),
                        Value::Text("new".into()),
                    ],
                    links: vec![InsertLink {
                        rel: make,
                        self_edge: e(make, order),
                        partner_edge: e(make, customer),
                        partner: Partner::Matched(0),
                    }],
                }],
            }),
        };
        let physical = |s: Strategy| {
            let schema = design(&g, s).unwrap();
            let mut db = materialize(&g, &schema, &inst);
            execute_update(&mut db, &g, &spec).unwrap().physical
        };
        let en = physical(Strategy::En);
        let undr = physical(Strategy::Undr);
        assert!(undr > en, "UNDR insert must cascade copies: {undr} vs {en}");
    }
}

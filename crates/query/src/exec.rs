//! Plan execution against a stored database.

use crate::plan::{Op, Plan, VDir};
use colorist_er::ErGraph;
use colorist_mct::{ColorId, PlacementId};
use colorist_store::{
    structural_semi_join, value_join, AttrRef, Database, ElementId, Metrics, OccId, SemiSide,
    ValueKey,
};
use std::collections::HashSet;
use std::time::Instant;

/// The outcome of executing one query plan.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Physical result tuples — includes copies on un-normalized schemas
    /// (the parenthesized numbers of Table 1).
    pub results: u64,
    /// Distinct logical results.
    pub distinct: u64,
    /// The distinct logical answers, as canonical element ids (sorted).
    pub elements: Vec<ElementId>,
    /// Measured metrics (plan ops + volumes + wall time).
    pub metrics: Metrics,
}

/// A register value during execution.
#[derive(Debug, Clone)]
enum SetVal {
    Occs { color: ColorId, occs: Vec<OccId> },
    Elems(Vec<ElementId>),
    Groups { count: usize, elems: Vec<ElementId> },
}

/// Execute a compiled plan.
pub fn execute(db: &Database, graph: &ErGraph, plan: &Plan) -> QueryResult {
    let start = Instant::now();
    let mut metrics = Metrics::default();
    let mut regs: Vec<Option<SetVal>> = vec![None; plan.reg_count];

    // physical tuple count at the point duplicate elimination ran (the
    // parenthesized duplicate counts of Table 1)
    let mut pre_distinct: Option<u64> = None;
    for op in &plan.ops {
        if let Op::Distinct { src, .. } = op {
            if let Some(SetVal::Occs { occs, .. }) = regs[*src].as_ref() {
                pre_distinct = Some(occs.len() as u64);
            }
        }
        let val = eval(db, graph, &mut metrics, &regs, op);
        regs[op.dst()] = Some(val);
    }

    let out = regs[plan.output].take().expect("output register");
    let (results, elements, count_groups) = match out {
        SetVal::Occs { color, occs } => {
            let elems = occs_to_canonical_inner(db, db.color(color), &occs);
            (occs.len() as u64, elems, None)
        }
        SetVal::Elems(elems) => (elems.len() as u64, elems, None),
        SetVal::Groups { count, elems } => (count as u64, elems, Some(count as u64)),
    };
    let distinct = count_groups.unwrap_or(elements.len() as u64);
    let results = pre_distinct.unwrap_or(results).max(results);
    metrics.results = results;
    metrics.distinct_results = distinct;
    metrics.elapsed = start.elapsed();
    QueryResult { results, distinct, elements, metrics }
}

fn eval(
    db: &Database,
    graph: &ErGraph,
    metrics: &mut Metrics,
    regs: &[Option<SetVal>],
    op: &Op,
) -> SetVal {
    match op {
        Op::Scan { color, node, pred, .. } => {
            let tree = db.color(*color);
            let all = tree.of_node(*node);
            metrics.elements_scanned += all.len() as u64;
            let occs: Vec<OccId> = match pred {
                None => all.to_vec(),
                Some(p) => all
                    .iter()
                    .copied()
                    .filter(|&o| p.eval(&db.element(tree.occ(o).element).attrs[p.attr]))
                    .collect(),
            };
            SetVal::Occs { color: *color, occs }
        }

        Op::StructSemi { src, color, node, via, dir, .. } => {
            let src_val = expect_occs(&regs[*src], *color, "StructSemi");
            // On schemas with duplicated placements, a logical instance's
            // occurrences are scattered over several subtrees and no single
            // one need carry the whole chain (e.g. the turning point of an
            // ascent-then-descent plan on DEEP). Widen to every occurrence
            // of the same logical instances before joining; a no-op on
            // node-normal schemas.
            let src_val = expand_to_logical_occs(db, *color, src_val);
            let tree = db.color(*color);
            let k = via.len() as u16;
            match dir {
                VDir::Down => {
                    // descendants at path-valid placements, exactly k below
                    // — a single semi-join pass, no pair materialization
                    let valid = valid_desc_placements(db, *color, *node, via);
                    let mut targets: Vec<OccId> =
                        valid.iter().flat_map(|&p| tree.of_placement(p).iter().copied()).collect();
                    targets.sort_unstable();
                    let out = structural_semi_join(
                        db,
                        *color,
                        &src_val,
                        &targets,
                        SemiSide::Descendant,
                        Some(k),
                        metrics,
                    );
                    SetVal::Occs { color: *color, occs: out }
                }
                VDir::Up => {
                    // ancestors exactly k above, along the matching chain
                    let valid = valid_desc_placement_set(db, *color, *node, via, &src_val, tree);
                    let desc: Vec<OccId> = src_val
                        .iter()
                        .copied()
                        .filter(|&o| valid.contains(&tree.occ(o).placement))
                        .collect();
                    let anc = tree.of_node(*node).to_vec();
                    let out = structural_semi_join(
                        db,
                        *color,
                        &anc,
                        &desc,
                        SemiSide::Ancestor,
                        Some(k),
                        metrics,
                    );
                    SetVal::Occs { color: *color, occs: out }
                }
            }
        }

        Op::ValueSemi { src, edge, src_is_rel, enter, .. } => {
            let src_elems = to_elems(db, &regs[*src]);
            let e = graph.edge(*edge);
            let idref_idx =
                db.idref_attr_index(graph, *edge).expect("ValueSemi edge must be idref-encoded");
            let matched: Vec<ElementId> = if *src_is_rel {
                // src holds relationship elements; probe participant ids
                let extent = db.extent(e.participant).to_vec();
                value_join(db, &src_elems, AttrRef::Attr(idref_idx), &extent, AttrRef::Id, metrics)
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect()
            } else {
                let extent = db.extent(e.rel).to_vec();
                value_join(db, &extent, AttrRef::Attr(idref_idx), &src_elems, AttrRef::Id, metrics)
                    .into_iter()
                    .map(|(l, _)| l)
                    .collect()
            };
            let mut elems = matched;
            elems.sort_unstable();
            elems.dedup();
            match enter {
                Some(c) => SetVal::Occs { color: *c, occs: elems_to_occs(db, *c, &elems) },
                None => SetVal::Elems(elems),
            }
        }

        Op::LinkSemi { src, edge, src_is_rel, enter, .. } => {
            // a parent-child step resolved through the stored link
            // adjacency: exact on any schema
            metrics.structural_joins += 1;
            let src_elems = to_elems(db, &regs[*src]);
            metrics.elements_scanned += src_elems.len() as u64;
            let e = graph.edge(*edge);
            let mut out: Vec<ElementId> = if *src_is_rel {
                src_elems
                    .iter()
                    .filter_map(|&w| {
                        let ro = db.element(w).ordinal;
                        db.link(*edge, ro).map(|po| db.extent(e.participant)[po as usize])
                    })
                    .collect()
            } else {
                src_elems
                    .iter()
                    .flat_map(|&x| {
                        let po = db.element(x).ordinal;
                        db.linked_rels(*edge, po)
                            .into_iter()
                            .map(|ro| db.extent(e.rel)[ro as usize])
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            out.sort_unstable();
            out.dedup();
            match enter {
                Some(c) => SetVal::Occs { color: *c, occs: elems_to_occs(db, *c, &out) },
                None => SetVal::Elems(out),
            }
        }

        Op::Cross { src, color, .. } => {
            metrics.color_crossings += 1;
            let elems = to_elems(db, &regs[*src]);
            metrics.elements_scanned += elems.len() as u64;
            SetVal::Occs { color: *color, occs: elems_to_occs(db, *color, &elems) }
        }

        Op::Intersect { a, b, .. } => {
            let (ca, va) = match regs[*a].as_ref().expect("intersect input") {
                SetVal::Occs { color, occs } => (*color, occs),
                _ => panic!("Intersect expects occurrence sets"),
            };
            let vb = expect_occs(&regs[*b], ca, "Intersect");
            // sorted merge
            let mut out = Vec::with_capacity(va.len().min(vb.len()));
            let (mut i, mut j) = (0, 0);
            while i < va.len() && j < vb.len() {
                match va[i].cmp(&vb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(va[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            SetVal::Occs { color: ca, occs: out }
        }

        Op::Distinct { src, .. } => {
            metrics.dup_eliminations += 1;
            let elems = to_elems(db, &regs[*src]);
            SetVal::Elems(elems)
        }

        Op::GroupBy { src, attr, .. } => {
            metrics.group_bys += 1;
            let elems = to_elems(db, &regs[*src]);
            metrics.elements_scanned += elems.len() as u64;
            // Copy keys + sort/dedup: no hashing, no per-element String
            let mut keys: Vec<ValueKey> =
                elems.iter().map(|&e| db.join_key(&db.element(e).attrs[*attr])).collect();
            keys.sort_unstable();
            keys.dedup();
            SetVal::Groups { count: keys.len(), elems }
        }
    }
}

fn expect_occs<'v>(val: &'v Option<SetVal>, color: ColorId, who: &str) -> &'v [OccId] {
    match val.as_ref().unwrap_or_else(|| panic!("{who}: unset register")) {
        SetVal::Occs { color: c, occs } => {
            assert_eq!(*c, color, "{who}: register in wrong color");
            occs
        }
        _ => panic!("{who}: expected occurrences"),
    }
}

/// Canonical (logical) elements behind a register value, sorted distinct.
fn to_elems(db: &Database, val: &Option<SetVal>) -> Vec<ElementId> {
    match val.as_ref().expect("unset register") {
        SetVal::Occs { color, occs } => {
            let tree = db.color(*color);
            occs_to_canonical_inner(db, tree, occs)
        }
        SetVal::Elems(e) => e.clone(),
        SetVal::Groups { elems, .. } => elems.clone(),
    }
}

fn occs_to_canonical_inner(
    db: &Database,
    tree: &colorist_store::ColorTree,
    occs: &[OccId],
) -> Vec<ElementId> {
    let mut v: Vec<ElementId> =
        occs.iter().map(|&o| db.element(tree.occ(o).element).canonical).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// All occurrences of the logical instances of `elems` in `color`.
fn elems_to_occs(db: &Database, color: ColorId, elems: &[ElementId]) -> Vec<OccId> {
    let mut occs: Vec<OccId> =
        elems.iter().flat_map(|&e| db.occurrences_of_logical(color, e).iter().copied()).collect();
    occs.sort_unstable();
    occs.dedup();
    occs
}

/// Widen `occs` to every occurrence (copies included) of the same logical
/// instances in `color`. Identity when the occurrences' node has a single
/// placement in the color, so node-normal schemas pay nothing.
fn expand_to_logical_occs(db: &Database, color: ColorId, occs: &[OccId]) -> Vec<OccId> {
    let tree = db.color(color);
    if let Some(&o) = occs.first() {
        let node = db.schema.placement(tree.occ(o).placement).node;
        if db.schema.placements_of_in_color(node, color).len() <= 1 {
            return occs.to_vec();
        }
    }
    let mut out: Vec<OccId> = occs
        .iter()
        .flat_map(|&o| db.occurrences_of_logical(color, tree.occ(o).element).iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Placements of `node` in `color` whose upward chain realizes exactly
/// `via` (ancestor-side-first) — the valid landing spots of a path-exact
/// descent.
fn valid_desc_placements(
    db: &Database,
    color: ColorId,
    node: colorist_er::NodeId,
    via: &[colorist_er::EdgeId],
) -> Vec<PlacementId> {
    db.schema
        .placements_of_in_color(node, color)
        .into_iter()
        .filter(|&p| chain_matches(db, p, via))
        .collect()
}

/// For ascents: the set of source placements whose upward chain matches.
fn valid_desc_placement_set(
    db: &Database,
    _color: ColorId,
    _node: colorist_er::NodeId,
    via: &[colorist_er::EdgeId],
    src: &[OccId],
    tree: &colorist_store::ColorTree,
) -> HashSet<PlacementId> {
    let mut distinct: HashSet<PlacementId> = src.iter().map(|&o| tree.occ(o).placement).collect();
    distinct.retain(|&p| chain_matches(db, p, via));
    distinct
}

/// Does `p`'s upward chain realize `via` (ancestor-side-first)?
fn chain_matches(db: &Database, p: PlacementId, via: &[colorist_er::EdgeId]) -> bool {
    let mut cur = p;
    for &expected in via.iter().rev() {
        match db.schema.placement(cur).parent {
            Some((pp, e)) if e == expected => cur = pp,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::pattern::PatternBuilder;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::catalog;
    use colorist_store::Value;

    fn setup(strategy: Strategy) -> (ErGraph, Database) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let schema = design(&g, strategy).unwrap();
        let db = materialize(&g, &schema, &inst);
        (g, db)
    }

    fn q1(g: &ErGraph) -> crate::pattern::Pattern {
        // country 0 is the hottest under the generator's squared-uniform
        // skew, so it reliably has orders at this small scale
        PatternBuilder::new(g, "Q1")
            .node("country")
            .pred_eq("id", Value::Int(0))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap()
    }

    #[test]
    fn q1_runs_on_af_with_zero_value_joins() {
        let (g, db) = setup(Strategy::Af);
        let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
        let m = plan.static_metrics();
        assert_eq!(m.value_joins, 0, "Figure 3 makes Q1 purely structural\n{plan}");
        assert_eq!(m.color_crossings, 0);
        assert_eq!(m.structural_joins, 1, "a single // step\n{plan}");
        let r = execute(&db, &g, &plan);
        assert!(r.results > 0, "country 0 should have orders");
        assert_eq!(r.results, r.distinct, "AF is node normal");
    }

    #[test]
    fn q1_needs_value_joins_on_shallow() {
        let (g, db) = setup(Strategy::Shallow);
        let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
        let m = plan.static_metrics();
        assert!(m.value_joins >= 2, "SHALLOW must pay value joins\n{plan}");
    }

    #[test]
    fn q1_equivalent_across_all_strategies() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let mut reference: Option<Vec<ElementId>> = None;
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
            let r = execute(&db, &g, &plan);
            match &reference {
                None => reference = Some(r.elements.clone()),
                Some(exp) => assert_eq!(
                    &r.elements, exp,
                    "{s}: logical answers must be schema-independent\n{plan}"
                ),
            }
        }
    }
}

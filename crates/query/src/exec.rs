//! Plan execution against a stored database.
//!
//! Execution is **panic-free**: every register access, color/node/edge id,
//! and set-kind expectation is checked, and violations surface as
//! [`QueryError::Exec`] (or [`QueryError::NotIdrefEncoded`] for a value
//! join across an edge the schema does not encode). A plan produced by
//! [`compile`](crate::compile::compile) against the database's own schema
//! never trips these checks; they exist so adversarial or stale plans —
//! e.g. replayed against a different schema by the differential-testing
//! oracle — return `Err` instead of aborting the process.

use crate::error::QueryError;
use crate::pattern::CmpOp;
use crate::plan::{Op, Plan, Reg, VDir};
use colorist_er::{EdgeId, ErEdge, ErGraph, NodeId};
use colorist_mct::{ColorId, PlacementId};
use colorist_store::{
    attr_key, kmerge_sorted, structural_semi_join, value_join, AttrRef, ColorTree, Database,
    ElementId, Metrics, OccId, SemiSide, Snapshot, StorageCtx, ValueKey,
};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// The outcome of executing one query plan.
///
/// ```
/// use colorist_core::{design, Strategy};
/// use colorist_datagen::{generate, materialize, ScaleProfile};
/// use colorist_er::{catalog, ErGraph};
/// use colorist_query::{compile, execute, PatternBuilder};
///
/// let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
/// let schema = design(&g, Strategy::Af).unwrap();
/// let instance = generate(&g, &ScaleProfile::tpcw(&g, 20), 42);
/// let db = materialize(&g, &schema, &instance);
///
/// let q = PatternBuilder::new(&g, "Q")
///     .node("country")
///     .node("customer")
///     .chain(0, 1, &["in", "address", "has"])
///     .unwrap()
///     .output(1)
///     .build()
///     .unwrap();
/// let plan = compile(&g, &db.schema, &q).unwrap();
/// let r = execute(&db, &g, &plan).unwrap();
/// assert_eq!(r.results, r.distinct, "AF is node normal: no physical copies");
/// assert_eq!(r.distinct, r.elements.len() as u64);
/// assert_eq!(r.metrics.value_joins, 0, "AF recovers this chain structurally");
/// ```
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Physical result tuples — includes copies on un-normalized schemas
    /// (the parenthesized numbers of Table 1).
    pub results: u64,
    /// Distinct logical results.
    pub distinct: u64,
    /// The distinct logical answers, as canonical element ids (sorted).
    pub elements: Vec<ElementId>,
    /// Measured metrics (plan ops + volumes + wall time).
    pub metrics: Metrics,
}

/// The measured cost of one plan operator during one execution — the
/// `EXPLAIN ANALYZE` row for that operator.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Index into [`Plan::ops`].
    pub op: usize,
    /// The [`Metrics`] delta this operator charged: deterministic counters
    /// only (`elapsed` inside is always zero; the measured wall time lives
    /// in [`OpProfile::elapsed`]). Summed over a plan's profiles, the
    /// deltas reproduce the query's top-level counter totals exactly.
    pub metrics: Metrics,
    /// Physical tuples entering the operator (both sides for `Intersect`,
    /// 0 for `Scan`, whose input is storage itself).
    pub rows_in: u64,
    /// Physical tuples the operator produced (group count for `GroupBy`).
    pub rows_out: u64,
    /// Measured wall time of this operator alone (machine-dependent, unlike
    /// every other field).
    pub elapsed: Duration,
}

/// The short kind label of an operator, used in span names and
/// `EXPLAIN ANALYZE` rows.
pub fn op_kind(op: &Op) -> &'static str {
    match op {
        Op::Scan { .. } => "scan",
        Op::StructSemi { .. } => "struct_semi",
        Op::ValueSemi { .. } => "value_semi",
        Op::LinkSemi { .. } => "link_semi",
        Op::Cross { .. } => "cross",
        Op::Intersect { .. } => "intersect",
        Op::Distinct { .. } => "distinct",
        Op::GroupBy { .. } => "group_by",
    }
}

/// A register value during execution. Sets borrow storage (`'d` is the
/// database borrow) whenever an operator selects an existing document-order
/// list wholesale — an unpredicated `Scan` returns the node's occurrence
/// list without copying it — and own their backing only when an operator
/// actually computed a new set.
#[derive(Debug, Clone)]
enum SetVal<'d> {
    Occs { color: ColorId, occs: Cow<'d, [OccId]> },
    Elems(Cow<'d, [ElementId]>),
    Groups { count: usize, elems: Cow<'d, [ElementId]> },
}

impl SetVal<'_> {
    /// Physical tuples this value holds directly (copies included for
    /// occurrence sets; groups report their backing elements).
    fn physical_len(&self) -> u64 {
        match self {
            SetVal::Occs { occs, .. } => occs.len() as u64,
            SetVal::Elems(e) => e.len() as u64,
            SetVal::Groups { elems, .. } => elems.len() as u64,
        }
    }
}

/// Execute a compiled plan.
///
/// On success, `results` counts the physical tuples the output produced
/// *before* logical duplicate elimination (`Distinct`/`GroupBy` pass their
/// input's physical count through), and `distinct` the logical answers —
/// so `results >= distinct` always, with equality on schemas that store
/// no copies of the output node.
pub fn execute(db: &Database, graph: &ErGraph, plan: &Plan) -> Result<QueryResult, QueryError> {
    run(db, graph, plan, None)
}

/// Execute a compiled plan against a consistent [`Snapshot`].
///
/// A snapshot pins the copy-on-write version of every structure a kernel
/// reads (extents, color trees, value index, statistics catalog), so the
/// answer equals what [`execute`] returned against the database at
/// snapshot time — byte for byte — no matter what batches have committed
/// since. Emits a `snapshot` span carrying the deterministic
/// `snapshot_reads` counter so traced runs account snapshot traffic
/// separately from live reads.
pub fn execute_snapshot(
    snap: &Snapshot,
    graph: &ErGraph,
    plan: &Plan,
) -> Result<QueryResult, QueryError> {
    let mut span = colorist_trace::span("snapshot", format!("query:{}", plan.name));
    span.counter("snapshot_reads", 1);
    run(snap.database(), graph, plan, None)
}

/// Execute a compiled plan, additionally attributing every metric to the
/// operator that charged it — the measurement side of `EXPLAIN ANALYZE`
/// (rendered by [`crate::explain::explain_analyze`]).
///
/// The profile's counter deltas partition the query totals exactly: summing
/// [`OpProfile::metrics`] over all operators reproduces every counter of
/// `QueryResult::metrics` (`results`, `distinct_results` and `elapsed` are
/// query-level and stay zero in the deltas).
///
/// ```
/// use colorist_core::{design, Strategy};
/// use colorist_datagen::{generate, materialize, ScaleProfile};
/// use colorist_er::{catalog, ErGraph};
/// use colorist_query::{compile, execute_profiled, PatternBuilder};
///
/// let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
/// let schema = design(&g, Strategy::Shallow).unwrap();
/// let instance = generate(&g, &ScaleProfile::tpcw(&g, 20), 42);
/// let db = materialize(&g, &schema, &instance);
///
/// let q = PatternBuilder::new(&g, "Q")
///     .node("country")
///     .node("customer")
///     .chain(0, 1, &["in", "address", "has"])
///     .unwrap()
///     .output(1)
///     .build()
///     .unwrap();
/// let plan = compile(&g, &db.schema, &q).unwrap();
/// let (r, profile) = execute_profiled(&db, &g, &plan).unwrap();
///
/// assert_eq!(profile.len(), plan.ops.len(), "one profile row per operator");
/// let probes: u64 = profile.iter().map(|p| p.metrics.join_probes).sum();
/// assert_eq!(probes, r.metrics.join_probes, "deltas sum to the totals");
/// ```
pub fn execute_profiled(
    db: &Database,
    graph: &ErGraph,
    plan: &Plan,
) -> Result<(QueryResult, Vec<OpProfile>), QueryError> {
    let mut profiles = Vec::with_capacity(plan.ops.len());
    let r = run(db, graph, plan, Some(&mut profiles))?;
    Ok((r, profiles))
}

/// Physical tuples entering `op`, given the current register contents.
fn rows_in(regs: &[Option<SetVal>], op: &Op) -> u64 {
    let phys = |r: Reg| regs.get(r).and_then(Option::as_ref).map_or(0, SetVal::physical_len);
    match op {
        Op::Scan { .. } => 0,
        Op::StructSemi { src, .. }
        | Op::ValueSemi { src, .. }
        | Op::LinkSemi { src, .. }
        | Op::Cross { src, .. }
        | Op::Distinct { src, .. }
        | Op::GroupBy { src, .. } => phys(*src),
        Op::Intersect { a, b, .. } => phys(*a) + phys(*b),
    }
}

fn run(
    db: &Database,
    graph: &ErGraph,
    plan: &Plan,
    mut profile: Option<&mut Vec<OpProfile>>,
) -> Result<QueryResult, QueryError> {
    let mut query_span =
        colorist_trace::span("query", format!("execute:{}:{}", plan.name, plan.strategy));
    let start = Instant::now();
    let mut metrics = Metrics::default();
    // page accounting: a per-query cold buffer pool over the attached
    // backend's segment directory (a free no-op on the heap backend).
    // Per-query pools keep the page counters deterministic regardless of
    // how many suite workers share the database.
    let mut storage = db.storage_ctx();
    let mut regs: Vec<Option<SetVal>> = vec![None; plan.reg_count];
    // physical tuple count per register: Distinct and GroupBy compress
    // logically but inherit their source's physical count, so the output
    // register's entry is exactly the pre-dedup tuple count (the
    // parenthesized duplicate counts of Table 1)
    let mut phys: Vec<u64> = vec![0; plan.reg_count];

    for (oi, op) in plan.ops.iter().enumerate() {
        // observation is opt-in per call (profiling) or per process
        // (tracing); the plain path pays no clock reads or snapshots
        let observing = profile.is_some() || query_span.is_recording();
        let before = observing.then(|| (metrics, rows_in(&regs, op), Instant::now()));
        let mut op_span = colorist_trace::span("op", op_kind(op));

        let dst = op.dst();
        let val = eval(db, graph, &mut metrics, &mut storage, &regs, op)?;
        if dst >= regs.len() {
            return Err(QueryError::Exec(format!(
                "destination register r{dst} out of bounds ({} registers)",
                regs.len()
            )));
        }
        phys[dst] = match op {
            Op::Distinct { src, .. } | Op::GroupBy { src, .. } => phys[*src],
            _ => val.physical_len(),
        };
        let rows_out = match &val {
            SetVal::Groups { count, .. } => *count as u64,
            v => v.physical_len(),
        };
        regs[dst] = Some(val);

        if let Some((snapshot, rows_in, op_start)) = before {
            let delta = metrics.since(&snapshot);
            let elapsed = op_start.elapsed();
            if op_span.is_recording() {
                for (key, value) in [
                    ("rows_in", rows_in),
                    ("rows_out", rows_out),
                    ("elements_scanned", delta.elements_scanned),
                    ("join_probes", delta.join_probes),
                    ("bytes_touched", delta.bytes_touched),
                    ("structural_joins", delta.structural_joins),
                    ("value_joins", delta.value_joins),
                    ("color_crossings", delta.color_crossings),
                    ("dup_eliminations", delta.dup_eliminations),
                    ("group_bys", delta.group_bys),
                    ("index_lookups", delta.index_lookups),
                    ("elements_skipped", delta.elements_skipped),
                    ("page_reads", delta.page_reads),
                    ("page_writes", delta.page_writes),
                    ("pool_hits", delta.pool_hits),
                    ("pool_evictions", delta.pool_evictions),
                ] {
                    if value > 0 {
                        op_span.counter(key, value);
                    }
                }
            }
            if let Some(p) = profile.as_deref_mut() {
                p.push(OpProfile { op: oi, metrics: delta, rows_in, rows_out, elapsed });
            }
        }
    }

    let out = match regs.get_mut(plan.output).map(Option::take) {
        Some(Some(v)) => v,
        _ => {
            return Err(QueryError::Exec(format!("output register r{} is unset", plan.output)));
        }
    };
    let results = phys[plan.output];
    let (elements, count_groups) = match out {
        SetVal::Occs { color, occs } => (occs_to_canonical_inner(db, db.color(color), &occs), None),
        SetVal::Elems(elems) => (elems.into_owned(), None),
        SetVal::Groups { count, elems } => (elems.into_owned(), Some(count as u64)),
    };
    let distinct = count_groups.unwrap_or(elements.len() as u64);
    metrics.results = results;
    metrics.distinct_results = distinct;
    metrics.elapsed = start.elapsed();
    if query_span.is_recording() {
        for (key, value) in [
            ("results", results),
            ("distinct", distinct),
            ("elements_scanned", metrics.elements_scanned),
            ("join_probes", metrics.join_probes),
            ("bytes_touched", metrics.bytes_touched),
            ("index_lookups", metrics.index_lookups),
            ("elements_skipped", metrics.elements_skipped),
            ("page_reads", metrics.page_reads),
            ("page_writes", metrics.page_writes),
            ("pool_hits", metrics.pool_hits),
            ("pool_evictions", metrics.pool_evictions),
        ] {
            query_span.counter(key, value);
        }
    }
    Ok(QueryResult { results, distinct, elements, metrics })
}

fn eval<'d>(
    db: &'d Database,
    graph: &ErGraph,
    metrics: &mut Metrics,
    storage: &mut StorageCtx,
    regs: &[Option<SetVal<'d>>],
    op: &Op,
) -> Result<SetVal<'d>, QueryError> {
    match op {
        Op::Scan { color, node, pred, .. } => {
            let tree = color_tree(db, *color, "Scan")?;
            let all = tree.of_node(*node);
            let occs: Cow<'d, [OccId]> = match pred {
                None => {
                    // the stored document-order list IS the answer: borrow
                    metrics.elements_scanned += all.len() as u64;
                    metrics.bytes_touched += std::mem::size_of_val(all) as u64;
                    storage.touch_occs(*color, all, metrics);
                    Cow::Borrowed(all)
                }
                Some(p) if !db.reference_kernels() => {
                    // index probe: resolve matching canonical elements from
                    // the sorted value index, then expand to occurrences in
                    // this color (copies mirror their canonical's
                    // attributes, so the element-level index is complete)
                    if let Some(&o) = all.first() {
                        // attribute arity is uniform per node type, so the
                        // linear walk's per-element bounds check reduces to
                        // one representative
                        let el = db.element(tree.occ(o).element);
                        if el.attrs.get(p.attr).is_none() {
                            return Err(QueryError::Exec(format!(
                                "Scan: predicate attribute #{} out of range for `{}`",
                                p.attr,
                                graph.node(el.node).name
                            )));
                        }
                    }
                    let index = db.value_index();
                    let mut elems: Vec<ElementId> = Vec::new();
                    match p.op {
                        CmpOp::Eq => {
                            metrics.index_lookups += 1;
                            if let Some(k) = db.try_join_key(&p.value) {
                                let slice = index.matching(*node, p.attr, k);
                                storage.touch_postings(index, slice, metrics);
                                elems.extend(slice.iter().map(|en| en.element));
                            } // never-interned text matches nothing
                        }
                        CmpOp::Lt | CmpOp::Gt => {
                            // a range predicate walks the attribute's whole
                            // posting run (group by group), so it reads
                            // every posting page of the column
                            storage.touch_postings(index, index.of_attr(*node, p.attr), metrics);
                            // one key comparison per distinct stored value,
                            // taking whole groups — never per element
                            let want = match p.op {
                                CmpOp::Lt => Ordering::Less,
                                _ => Ordering::Greater,
                            };
                            for (key, group) in index.groups(*node, p.attr) {
                                metrics.index_lookups += 1;
                                if db.interner().key_value_cmp(key, &p.value) == want {
                                    elems.extend(group.iter().map(|en| en.element));
                                }
                            }
                        }
                    }
                    let mut v: Vec<OccId> = Vec::with_capacity(elems.len());
                    for e in elems {
                        v.extend(db.occurrences_of_logical(*color, e).iter().copied());
                    }
                    v.sort_unstable();
                    metrics.elements_scanned += v.len() as u64;
                    metrics.elements_skipped += (all.len() as u64).saturating_sub(v.len() as u64);
                    metrics.bytes_touched += std::mem::size_of_val(v.as_slice()) as u64;
                    storage.touch_occs(*color, &v, metrics);
                    Cow::Owned(v)
                }
                Some(p) => {
                    // reference path: linear walk of the node's extent
                    metrics.elements_scanned += all.len() as u64;
                    metrics.bytes_touched += std::mem::size_of_val(all) as u64;
                    storage.touch_occs(*color, all, metrics);
                    let mut v = Vec::new();
                    for &o in all {
                        storage.touch_element(tree.occ(o).element, metrics);
                        let el = db.element(tree.occ(o).element);
                        let Some(av) = el.attrs.get(p.attr) else {
                            return Err(QueryError::Exec(format!(
                                "Scan: predicate attribute #{} out of range for `{}`",
                                p.attr,
                                graph.node(el.node).name
                            )));
                        };
                        if p.eval(av) {
                            v.push(o);
                        }
                    }
                    Cow::Owned(v)
                }
            };
            Ok(SetVal::Occs { color: *color, occs })
        }

        Op::StructSemi { src, color, node, via, dir, .. } => {
            check_node(graph, *node, "StructSemi")?;
            let src_val = expect_occs(regs, *src, *color, "StructSemi")?;
            // On schemas with duplicated placements, a logical instance's
            // occurrences are scattered over several subtrees and no single
            // one need carry the whole chain (e.g. the turning point of an
            // ascent-then-descent plan on DEEP). Widen to every occurrence
            // of the same logical instances before joining; a no-op on
            // node-normal schemas.
            let src_val = expand_to_logical_occs(db, *color, src_val);
            let tree = color_tree(db, *color, "StructSemi")?;
            storage.touch_occs(*color, &src_val, metrics);
            let k = via.len() as u16;
            match dir {
                VDir::Down => {
                    // descendants at path-valid placements, exactly k below
                    // — a single semi-join pass, no pair materialization.
                    // The per-placement lists are already sorted and
                    // pairwise disjoint: a k-way merge unions them without
                    // the flat_map + full re-sort (and without copying at
                    // all when a single placement is valid)
                    let valid = valid_desc_placements(db, *color, *node, via);
                    let lists: Vec<&[OccId]> =
                        valid.iter().map(|&p| tree.of_placement(p)).collect();
                    let targets = kmerge_sorted(&lists);
                    if let Cow::Owned(_) = targets {
                        // the union materialized: charge the ids it moved
                        metrics.bytes_touched += std::mem::size_of_val(targets.as_ref()) as u64;
                    }
                    storage.touch_occs(*color, &targets, metrics);
                    let out = structural_semi_join(
                        db,
                        *color,
                        &src_val,
                        &targets,
                        SemiSide::Descendant,
                        Some(k),
                        metrics,
                    );
                    Ok(SetVal::Occs { color: *color, occs: Cow::Owned(out) })
                }
                VDir::Up => {
                    // ancestors exactly k above, along the matching chain
                    storage.touch_occs(*color, tree.of_node(*node), metrics);
                    let valid = valid_desc_placement_set(db, *color, *node, via, &src_val, tree);
                    let desc: Vec<OccId> = src_val
                        .iter()
                        .copied()
                        .filter(|&o| valid.contains(&tree.occ(o).placement))
                        .collect();
                    let out = structural_semi_join(
                        db,
                        *color,
                        tree.of_node(*node),
                        &desc,
                        SemiSide::Ancestor,
                        Some(k),
                        metrics,
                    );
                    Ok(SetVal::Occs { color: *color, occs: Cow::Owned(out) })
                }
            }
        }

        Op::ValueSemi { src, edge, src_is_rel, enter, .. } => {
            let src_elems = to_elems(db, regs, *src, "ValueSemi")?;
            let e = check_edge(graph, *edge, "ValueSemi")?;
            let idref_idx = db
                .idref_attr_index(graph, *edge)
                .ok_or_else(|| QueryError::NotIdrefEncoded { edge: edge_label(graph, *edge) })?;
            storage.touch_elements(&src_elems, metrics);
            let matched: Vec<ElementId> = if db.reference_kernels() {
                // reference path: per-op hash join against the full extent
                if *src_is_rel {
                    // src holds relationship elements; probe participant ids
                    let extent = db.extent(e.participant);
                    storage.touch_elements(extent, metrics);
                    value_join(
                        db,
                        &src_elems,
                        AttrRef::Attr(idref_idx),
                        extent,
                        AttrRef::Id,
                        metrics,
                    )
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect()
                } else {
                    let extent = db.extent(e.rel);
                    storage.touch_elements(extent, metrics);
                    value_join(
                        db,
                        extent,
                        AttrRef::Attr(idref_idx),
                        &src_elems,
                        AttrRef::Id,
                        metrics,
                    )
                    .into_iter()
                    .map(|(l, _)| l)
                    .collect()
                }
            } else if *src_is_rel {
                // forward direction: each relationship's idref value names
                // a participant ordinal, resolved through the persistent
                // ordinal index (tombstones make deleted targets dangle
                // safely) — no hash table to build
                metrics.value_joins += 1;
                metrics.join_probes += src_elems.len() as u64;
                metrics.index_lookups += src_elems.len() as u64;
                metrics.elements_skipped += db.extent(e.participant).len() as u64;
                metrics.bytes_touched += (src_elems.len() * std::mem::size_of::<ValueKey>()) as u64;
                let mut out = Vec::with_capacity(src_elems.len());
                for &w in src_elems.iter() {
                    if let ValueKey::Num(k) = attr_key(db, w, AttrRef::Attr(idref_idx)) {
                        if let Ok(i) = u32::try_from(k) {
                            storage.touch_ordinal(e.participant, i, metrics);
                            if let Some(p) = db.canonical_by_ordinal(e.participant, i) {
                                out.push(p);
                            }
                        }
                    } // non-numeric idref values reference no id
                }
                metrics.elements_scanned += (src_elems.len() + out.len()) as u64;
                out
            } else {
                // reverse direction: which relationship elements reference
                // these ids? — one sorted-index probe per source ordinal
                // instead of hashing the whole relationship extent
                metrics.value_joins += 1;
                let extent_len = db.extent(e.rel).len();
                metrics.join_probes += src_elems.len() as u64;
                metrics.index_lookups += src_elems.len() as u64;
                metrics.elements_skipped += extent_len as u64;
                metrics.bytes_touched += (src_elems.len() * std::mem::size_of::<ValueKey>()) as u64;
                let index = db.value_index();
                let mut out = Vec::new();
                for &x in src_elems.iter() {
                    let key = ValueKey::Num(db.element(x).ordinal as i64);
                    let slice = index.matching(e.rel, idref_idx, key);
                    storage.touch_postings(index, slice, metrics);
                    out.extend(slice.iter().map(|en| en.element));
                }
                metrics.elements_scanned += (src_elems.len() + out.len()) as u64;
                out
            };
            let mut elems = matched;
            elems.sort_unstable();
            elems.dedup();
            reenter(db, *enter, elems, "ValueSemi")
        }

        Op::LinkSemi { src, edge, src_is_rel, enter, .. } => {
            // a parent-child step resolved through the stored link
            // adjacency: exact on any schema
            metrics.structural_joins += 1;
            let src_elems = to_elems(db, regs, *src, "LinkSemi")?;
            metrics.elements_scanned += src_elems.len() as u64;
            // one adjacency lookup per source element
            metrics.join_probes += src_elems.len() as u64;
            metrics.bytes_touched += (src_elems.len() * std::mem::size_of::<ElementId>()) as u64;
            let e = check_edge(graph, *edge, "LinkSemi")?;
            storage.touch_elements(&src_elems, metrics);
            let mut out: Vec<ElementId> = if *src_is_rel {
                src_elems
                    .iter()
                    .filter_map(|&w| {
                        let ro = db.element(w).ordinal;
                        storage.touch_link(*edge, ro, metrics);
                        db.link(*edge, ro).and_then(|po| {
                            storage.touch_ordinal(e.participant, po, metrics);
                            db.canonical_by_ordinal(e.participant, po)
                        })
                    })
                    .collect()
            } else {
                src_elems
                    .iter()
                    .flat_map(|&x| {
                        let po = db.element(x).ordinal;
                        db.linked_rels(*edge, po)
                            .into_iter()
                            .filter_map(|ro| {
                                // the filter inside linked_rels re-read the
                                // link slot of every candidate relationship
                                storage.touch_link(*edge, ro, metrics);
                                storage.touch_ordinal(e.rel, ro, metrics);
                                db.canonical_by_ordinal(e.rel, ro)
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            out.sort_unstable();
            out.dedup();
            reenter(db, *enter, out, "LinkSemi")
        }

        Op::Cross { src, color, .. } => {
            metrics.color_crossings += 1;
            let elems = to_elems(db, regs, *src, "Cross")?;
            metrics.elements_scanned += elems.len() as u64;
            metrics.bytes_touched += (elems.len() * std::mem::size_of::<ElementId>()) as u64;
            color_tree(db, *color, "Cross")?;
            let occs = elems_to_occs(db, *color, &elems);
            storage.touch_occs(*color, &occs, metrics);
            Ok(SetVal::Occs { color: *color, occs: Cow::Owned(occs) })
        }

        Op::Intersect { a, b, .. } => {
            let (ca, va) = match get_reg(regs, *a, "Intersect")? {
                SetVal::Occs { color, occs } => (*color, occs),
                _ => {
                    return Err(QueryError::Exec(format!(
                        "Intersect: register r{a} does not hold an occurrence set"
                    )));
                }
            };
            let vb = expect_occs(regs, *b, ca, "Intersect")?;
            // sorted merge
            let mut out = Vec::with_capacity(va.len().min(vb.len()));
            let (mut i, mut j) = (0, 0);
            while i < va.len() && j < vb.len() {
                match va[i].cmp(&vb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(va[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            Ok(SetVal::Occs { color: ca, occs: Cow::Owned(out) })
        }

        Op::Distinct { src, .. } => {
            metrics.dup_eliminations += 1;
            let elems = to_elems(db, regs, *src, "Distinct")?;
            metrics.bytes_touched += (elems.len() * std::mem::size_of::<ElementId>()) as u64;
            // the result must outlive the source register it may borrow
            Ok(SetVal::Elems(Cow::Owned(elems.into_owned())))
        }

        Op::GroupBy { src, attr, .. } => {
            metrics.group_bys += 1;
            let elems = to_elems(db, regs, *src, "GroupBy")?;
            storage.touch_elements(&elems, metrics);
            metrics.elements_scanned += elems.len() as u64;
            metrics.bytes_touched += (elems.len() * std::mem::size_of::<ValueKey>()) as u64;
            // Copy keys + sort/dedup: no hashing, no per-element String
            let mut keys: Vec<ValueKey> = Vec::with_capacity(elems.len());
            for &e in elems.iter() {
                let el = db.element(e);
                let Some(v) = el.attrs.get(*attr) else {
                    return Err(QueryError::Exec(format!(
                        "GroupBy: attribute #{attr} out of range for `{}`",
                        graph.node(el.node).name
                    )));
                };
                let Some(k) = db.try_join_key(v) else {
                    return Err(QueryError::Exec(format!(
                        "GroupBy: value `{v}` was never interned in this database"
                    )));
                };
                keys.push(k);
            }
            keys.sort_unstable();
            keys.dedup();
            Ok(SetVal::Groups { count: keys.len(), elems: Cow::Owned(elems.into_owned()) })
        }
    }
}

/// Wrap a semi-join's element output, re-entering a colored tree when the
/// plan continues structurally.
fn reenter<'d>(
    db: &'d Database,
    enter: Option<ColorId>,
    elems: Vec<ElementId>,
    who: &str,
) -> Result<SetVal<'d>, QueryError> {
    match enter {
        Some(c) => {
            color_tree(db, c, who)?;
            Ok(SetVal::Occs { color: c, occs: Cow::Owned(elems_to_occs(db, c, &elems)) })
        }
        None => Ok(SetVal::Elems(Cow::Owned(elems))),
    }
}

/// The colored tree, or an error for a color id the database lacks.
fn color_tree<'d>(db: &'d Database, c: ColorId, who: &str) -> Result<&'d ColorTree, QueryError> {
    if (c.0 as usize) < db.color_count() {
        Ok(db.color(c))
    } else {
        Err(QueryError::Exec(format!(
            "{who}: color {c} out of range ({} colors)",
            db.color_count()
        )))
    }
}

/// Validate an ER node id against the graph.
fn check_node(graph: &ErGraph, n: NodeId, who: &str) -> Result<(), QueryError> {
    if n.idx() < graph.node_count() {
        Ok(())
    } else {
        Err(QueryError::Exec(format!("{who}: ER node {n:?} out of range")))
    }
}

/// Validate an ER edge id against the graph.
fn check_edge<'g>(graph: &'g ErGraph, e: EdgeId, who: &str) -> Result<&'g ErEdge, QueryError> {
    if e.idx() < graph.edge_count() {
        Ok(graph.edge(e))
    } else {
        Err(QueryError::Exec(format!("{who}: ER edge {e:?} out of range")))
    }
}

/// Human-readable `relationship[participant]` label of an ER edge.
fn edge_label(graph: &ErGraph, e: EdgeId) -> String {
    let ed = graph.edge(e);
    format!("{}[{}]", graph.node(ed.rel).name, graph.node(ed.participant).name)
}

/// The set value in register `r`, or a typed error when the register is
/// out of bounds or unset.
fn get_reg<'v, 'd>(
    regs: &'v [Option<SetVal<'d>>],
    r: Reg,
    who: &str,
) -> Result<&'v SetVal<'d>, QueryError> {
    match regs.get(r) {
        Some(Some(v)) => Ok(v),
        Some(None) => Err(QueryError::Exec(format!("{who}: register r{r} is unset"))),
        None => Err(QueryError::Exec(format!(
            "{who}: register r{r} out of bounds ({} registers)",
            regs.len()
        ))),
    }
}

/// The occurrence set in register `r`, which must be in `color`.
fn expect_occs<'v, 'd>(
    regs: &'v [Option<SetVal<'d>>],
    r: Reg,
    color: ColorId,
    who: &str,
) -> Result<&'v [OccId], QueryError> {
    match get_reg(regs, r, who)? {
        SetVal::Occs { color: c, occs } => {
            if *c != color {
                return Err(QueryError::Exec(format!(
                    "{who}: register r{r} holds occurrences of color {c}, expected {color}"
                )));
            }
            Ok(occs)
        }
        _ => Err(QueryError::Exec(format!("{who}: register r{r} does not hold an occurrence set"))),
    }
}

/// Canonical (logical) elements behind register `r`, sorted distinct.
/// Borrows the register's slice when it already holds elements.
fn to_elems<'v, 'd>(
    db: &Database,
    regs: &'v [Option<SetVal<'d>>],
    r: Reg,
    who: &str,
) -> Result<Cow<'v, [ElementId]>, QueryError> {
    Ok(match get_reg(regs, r, who)? {
        SetVal::Occs { color, occs } => {
            let tree = color_tree(db, *color, who)?;
            Cow::Owned(occs_to_canonical_inner(db, tree, occs))
        }
        SetVal::Elems(e) => Cow::Borrowed(e.as_ref()),
        SetVal::Groups { elems, .. } => Cow::Borrowed(elems.as_ref()),
    })
}

fn occs_to_canonical_inner(
    db: &Database,
    tree: &colorist_store::ColorTree,
    occs: &[OccId],
) -> Vec<ElementId> {
    let mut v: Vec<ElementId> =
        occs.iter().map(|&o| db.element(tree.occ(o).element).canonical).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// All occurrences of the logical instances of `elems` in `color`.
fn elems_to_occs(db: &Database, color: ColorId, elems: &[ElementId]) -> Vec<OccId> {
    let mut occs: Vec<OccId> =
        elems.iter().flat_map(|&e| db.occurrences_of_logical(color, e).iter().copied()).collect();
    occs.sort_unstable();
    occs.dedup();
    occs
}

/// Widen `occs` to every occurrence (copies included) of the same logical
/// instances in `color`. Identity (borrowed, zero-copy) when the
/// occurrences' node has a single placement in the color, so node-normal
/// schemas pay nothing.
fn expand_to_logical_occs<'v>(
    db: &Database,
    color: ColorId,
    occs: &'v [OccId],
) -> Cow<'v, [OccId]> {
    let tree = db.color(color);
    if let Some(&o) = occs.first() {
        let node = db.schema.placement(tree.occ(o).placement).node;
        if db.schema.placements_of_in_color(node, color).len() <= 1 {
            return Cow::Borrowed(occs);
        }
    }
    let mut out: Vec<OccId> = occs
        .iter()
        .flat_map(|&o| db.occurrences_of_logical(color, tree.occ(o).element).iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    Cow::Owned(out)
}

/// Placements of `node` in `color` whose upward chain realizes exactly
/// `via` (ancestor-side-first) — the valid landing spots of a path-exact
/// descent.
pub(crate) fn valid_desc_placements(
    db: &Database,
    color: ColorId,
    node: colorist_er::NodeId,
    via: &[colorist_er::EdgeId],
) -> Vec<PlacementId> {
    db.schema
        .placements_of_in_color(node, color)
        .into_iter()
        .filter(|&p| chain_matches(db, p, via))
        .collect()
}

/// For ascents: the set of source placements whose upward chain matches.
pub(crate) fn valid_desc_placement_set(
    db: &Database,
    _color: ColorId,
    _node: colorist_er::NodeId,
    via: &[colorist_er::EdgeId],
    src: &[OccId],
    tree: &colorist_store::ColorTree,
) -> HashSet<PlacementId> {
    let mut distinct: HashSet<PlacementId> = src.iter().map(|&o| tree.occ(o).placement).collect();
    distinct.retain(|&p| chain_matches(db, p, via));
    distinct
}

/// Does `p`'s upward chain realize `via` (ancestor-side-first)?
fn chain_matches(db: &Database, p: PlacementId, via: &[colorist_er::EdgeId]) -> bool {
    let mut cur = p;
    for &expected in via.iter().rev() {
        match db.schema.placement(cur).parent {
            Some((pp, e)) if e == expected => cur = pp,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::pattern::PatternBuilder;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::catalog;
    use colorist_store::Value;

    fn setup(strategy: Strategy) -> (ErGraph, Database) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let schema = design(&g, strategy).unwrap();
        let db = materialize(&g, &schema, &inst);
        (g, db)
    }

    fn q1(g: &ErGraph) -> crate::pattern::Pattern {
        // country 0 is the hottest under the generator's squared-uniform
        // skew, so it reliably has orders at this small scale
        PatternBuilder::new(g, "Q1")
            .node("country")
            .pred_eq("id", Value::Int(0))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap()
    }

    #[test]
    fn q1_runs_on_af_with_zero_value_joins() {
        let (g, db) = setup(Strategy::Af);
        let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
        let m = plan.static_metrics();
        assert_eq!(m.value_joins, 0, "Figure 3 makes Q1 purely structural\n{plan}");
        assert_eq!(m.color_crossings, 0);
        assert_eq!(m.structural_joins, 1, "a single // step\n{plan}");
        let r = execute(&db, &g, &plan).unwrap();
        assert!(r.results > 0, "country 0 should have orders");
        assert_eq!(r.results, r.distinct, "AF is node normal");
    }

    #[test]
    fn q1_needs_value_joins_on_shallow() {
        let (g, db) = setup(Strategy::Shallow);
        let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
        let m = plan.static_metrics();
        assert!(m.value_joins >= 2, "SHALLOW must pay value joins\n{plan}");
    }

    #[test]
    fn q1_equivalent_across_all_strategies() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let mut reference: Option<Vec<ElementId>> = None;
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            let plan = compile(&g, &db.schema, &q1(&g)).unwrap();
            let r = execute(&db, &g, &plan).unwrap();
            match &reference {
                None => reference = Some(r.elements.clone()),
                Some(exp) => assert_eq!(
                    &r.elements, exp,
                    "{s}: logical answers must be schema-independent\n{plan}"
                ),
            }
        }
    }

    /// Pin the result-accounting semantics: `results` is the physical
    /// tuple count *before* duplicate elimination (so adding `Distinct`
    /// changes `distinct`, never `results`), and `GroupBy` reports its
    /// group count as `distinct` while passing the physical count through.
    #[test]
    fn result_counts_are_exact_pre_and_post_distinct() {
        // DEEP duplicates `item` under every `order_line` (the M:N
        // unfolding), so an order→item chain produces physical duplicates
        // that Distinct must collapse
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let schema = design(&g, Strategy::Deep).unwrap();
        let db = materialize(&g, &schema, &inst);

        let base = |distinct: bool| {
            let mut b = PatternBuilder::new(&g, "Qc")
                .node("order")
                .node("item")
                .chain(0, 1, &["order_line"])
                .unwrap()
                .output(1);
            if distinct {
                b = b.distinct();
            }
            b.build().unwrap()
        };

        let plain = execute(&db, &g, &compile(&g, &db.schema, &base(false)).unwrap()).unwrap();
        let dedup = execute(&db, &g, &compile(&g, &db.schema, &base(true)).unwrap()).unwrap();
        // Distinct collapses the logical answer but must not change the
        // physical count
        assert_eq!(dedup.results, plain.results, "physical count is pre-dedup");
        assert_eq!(dedup.distinct, dedup.elements.len() as u64);
        assert_eq!(dedup.elements, plain.elements, "same logical answer");
        assert!(dedup.results >= dedup.distinct);
        assert!(plain.results > plain.distinct, "DEEP duplicates items under order lines");

        // GroupBy: distinct = group count, physical passes through
        let grouped = PatternBuilder::new(&g, "Qg")
            .node("order")
            .node("item")
            .chain(0, 1, &["order_line"])
            .unwrap()
            .output(1)
            .distinct()
            .group_by("title")
            .build()
            .unwrap();
        let gr = execute(&db, &g, &compile(&g, &db.schema, &grouped).unwrap()).unwrap();
        assert_eq!(gr.results, plain.results, "GroupBy inherits the physical count");
        assert!(gr.distinct >= 1, "at least one name group");
        assert!(gr.distinct <= plain.elements.len() as u64, "no more groups than elements");
    }

    /// Adversarial plans return typed errors instead of aborting: unset
    /// and out-of-bounds registers, kind mismatches, color mismatches, and
    /// value joins across edges the schema does not idref-encode.
    #[test]
    fn malformed_plans_error_instead_of_panicking() {
        let (g, db) = setup(Strategy::Af);
        let country = g.node_by_name("country").unwrap();
        let plan = |ops: Vec<Op>, output: Reg, reg_count: usize| Plan {
            name: "adversarial".into(),
            strategy: "AF".into(),
            ops,
            output,
            reg_count,
            metrics: Metrics::default(),
            charges: Vec::new(),
            costs: Vec::new(),
        };
        let scan = Op::Scan { dst: 0, color: ColorId(0), node: country, pred: None };

        // unset output register
        let r = execute(&db, &g, &plan(vec![], 0, 1));
        assert!(matches!(r, Err(QueryError::Exec(_))), "{r:?}");

        // out-of-bounds output register
        let r = execute(&db, &g, &plan(vec![scan.clone()], 7, 1));
        assert!(matches!(r, Err(QueryError::Exec(_))), "{r:?}");

        // Intersect over a non-occurrence register
        let r = execute(
            &db,
            &g,
            &plan(
                vec![
                    scan.clone(),
                    Op::Distinct { dst: 1, src: 0 },
                    Op::Intersect { dst: 2, a: 1, b: 0 },
                ],
                2,
                3,
            ),
        );
        assert!(matches!(r, Err(QueryError::Exec(_))), "{r:?}");

        // Intersect with an unset input
        let r =
            execute(&db, &g, &plan(vec![scan.clone(), Op::Intersect { dst: 1, a: 0, b: 2 }], 1, 3));
        assert!(matches!(r, Err(QueryError::Exec(_))), "{r:?}");

        // StructSemi in a color the register does not hold
        let r = execute(
            &db,
            &g,
            &plan(
                vec![
                    scan.clone(),
                    Op::StructSemi {
                        dst: 1,
                        src: 0,
                        color: ColorId(9),
                        node: country,
                        via: vec![],
                        dir: VDir::Down,
                    },
                ],
                1,
                2,
            ),
        );
        assert!(matches!(r, Err(QueryError::Exec(_))), "{r:?}");

        // ValueSemi across a structurally-realized (non-idref) edge: AF
        // realizes every edge structurally, so no edge is idref-encoded
        let r = execute(
            &db,
            &g,
            &plan(
                vec![
                    scan,
                    Op::ValueSemi {
                        dst: 1,
                        src: 0,
                        edge: EdgeId(0),
                        src_is_rel: false,
                        enter: None,
                    },
                ],
                1,
                2,
            ),
        );
        assert!(matches!(r, Err(QueryError::NotIdrefEncoded { .. })), "{r:?}");
    }
}

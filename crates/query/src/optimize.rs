//! The cost-based optimizer: statistics-driven child ordering and
//! per-operator cost annotation.
//!
//! [`optimize`] is a drop-in alternative entry point to
//! [`compile`](crate::compile()). Under
//! [`KernelDispatch::CostModel`](colorist_store::KernelDispatch) it
//!
//! 1. orders each pattern node's child reductions by **estimated subtree
//!    cardinality** (most selective subtree first), using the statistics
//!    catalog's histograms — so every `Intersect` narrows against the
//!    smallest available set first. Reordering sibling reductions is
//!    answer- and counter-neutral (`Intersect` charges nothing and each
//!    child block is self-contained), so this can only help;
//! 2. annotates every emitted operator with a [`CostEst`]: predicted
//!    output cardinality and predicted `elements_scanned` / `join_probes`
//!    / `bytes_touched` / `index_lookups` charges, computed by a forward
//!    abstract interpretation of the plan that mirrors the executor's
//!    charging formulas term by term — including which kernel the
//!    database's dispatch mode will pick (index probe vs linear scan,
//!    merge vs gallop, ordinal vs reverse probe).
//!
//! The estimates are written in the *same units* as the deterministic
//! runtime counters, so `explain_analyze` can print estimate-vs-measured
//! drift per operator and the perfgate can hold the optimizer to a
//! committed q-error budget. Under the heuristic dispatch modes
//! (`Ratio`, `Reference`) `optimize` degrades to plain `compile` — the
//! one-variable-at-a-time differential partner.
//!
//! Estimation errors are bounded where the catalog is exact (extent and
//! occurrence cardinalities, distinct counts) and bounded by the
//! equi-depth bucket depth where it is approximate (predicate
//! selectivities); join output estimates use the standard
//! containment-of-value-sets assumption and carry no hard bound — which
//! is exactly why every estimate is checked against measurement instead
//! of trusted.

use crate::compile::{compile, compile_with};
use crate::error::QueryError;
use crate::exec::valid_desc_placements;
use crate::pattern::{CmpOp, Pattern, Predicate};
use crate::plan::{CostEst, KernelChoice, Op, Plan, VDir};
use colorist_er::{ErGraph, NodeId};
use colorist_mct::ColorId;
use colorist_store::{
    gallop_cost_wins, CmpKind, Database, ElementId, KernelDispatch, OccId, Occurrence, ValueKey,
};

/// Compile `pattern` with cost-based child ordering and cost annotations
/// when the database runs the cost-model dispatch; fall back to the plain
/// heuristic compiler under `Ratio`/`Reference` so differential runs
/// compare exactly one variable at a time.
pub fn optimize(db: &Database, graph: &ErGraph, pattern: &Pattern) -> Result<Plan, QueryError> {
    if db.kernel_dispatch() != KernelDispatch::CostModel {
        return compile(graph, &db.schema, pattern);
    }
    let _span = colorist_trace::span("optimize", format!("optimize:{}", pattern.name));
    let order = |v: usize, edges: &[usize]| order_children(db, pattern, v, edges);
    let mut plan = compile_with(graph, &db.schema, pattern, Some(&order))?;
    plan.costs = annotate_costs(db, graph, &plan);
    debug_assert!(
        {
            let diags = crate::verify::verify_plan(graph, &db.schema, &plan);
            if !diags.is_empty() {
                panic!(
                    "optimizer emitted a plan the static verifier rejects:\n{}\n{plan}",
                    diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
                );
            }
            true
        },
        "optimized plan verification"
    );
    Ok(plan)
}

/// Estimated element-level row count of one pattern node: its predicate's
/// histogram estimate, or the full extent when unpredicated.
fn node_rows(db: &Database, pattern: &Pattern, v: usize) -> f64 {
    let node = pattern.nodes[v].node;
    let extent = db.statistics().extent_rows(node) as f64;
    match &pattern.nodes[v].predicate {
        None => extent,
        Some(p) => pred_rows(db, node, p).min(extent),
    }
}

/// Histogram estimate for one predicate, in canonical elements.
fn pred_rows(db: &Database, node: NodeId, p: &Predicate) -> f64 {
    let kind = match p.op {
        CmpOp::Eq => CmpKind::Eq,
        CmpOp::Lt => CmpKind::Lt,
        CmpOp::Gt => CmpKind::Gt,
    };
    db.estimate_predicate_matches(node, p.attr, kind, &p.value).0
}

/// Greedy child ordering: ascending estimated subtree cardinality, where a
/// child subtree's cardinality is the *minimum* estimated row count over
/// its pattern nodes — the bound a chain of semi-joins propagates up to
/// the parent's `Intersect`. Ties keep syntactic order (stable sort), so
/// the ordering — like everything downstream of it — is deterministic.
fn order_children(db: &Database, pattern: &Pattern, v: usize, edges: &[usize]) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = edges
        .iter()
        .map(|&ei| {
            let e = &pattern.edges[ei];
            let child = if e.from == v { e.to } else { e.from };
            (subtree_min_rows(db, pattern, child, v), ei)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    keyed.into_iter().map(|(_, ei)| ei).collect()
}

/// Minimum estimated row count over the pattern subtree rooted at `v`
/// when the edge back to `parent` is removed.
fn subtree_min_rows(db: &Database, pattern: &Pattern, v: usize, parent: usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut stack = vec![(v, parent)];
    while let Some((u, from)) = stack.pop() {
        best = best.min(node_rows(db, pattern, u));
        for e in &pattern.edges {
            for (a, b) in [(e.from, e.to), (e.to, e.from)] {
                if a == u && b != from {
                    stack.push((b, u));
                }
            }
        }
    }
    best
}

/// What the abstract interpreter knows about a register's contents.
#[derive(Debug, Clone, Copy)]
struct RegEst {
    /// Estimated cardinality (occurrences or elements, per the op kind).
    rows: f64,
    /// ER node type of the contents, when a single type is known.
    node: Option<NodeId>,
}

const SZ_OCC_ID: f64 = std::mem::size_of::<OccId>() as f64;
const SZ_OCC: f64 = std::mem::size_of::<Occurrence>() as f64;
const SZ_ELEM: f64 = std::mem::size_of::<ElementId>() as f64;
const SZ_KEY: f64 = std::mem::size_of::<ValueKey>() as f64;

/// `⌈log₂ n⌉` as an estimate term (0 for `n ≤ 1`), mirroring the dispatch
/// crossover in [`gallop_cost_wins`].
fn log2_ceil(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else {
        n.log2().ceil()
    }
}

/// Occurrences of `node` in `color` — exact, from the stored tree.
fn occs_of(db: &Database, color: ColorId, node: NodeId) -> f64 {
    if (color.0 as usize) < db.color_count() {
        db.color(color).of_node(node).len() as f64
    } else {
        0.0
    }
}

/// Occurrence-expansion factor of `node` in `color`: occurrences per
/// canonical element (1 on node-normal schemas, >1 where copies exist).
fn expansion(db: &Database, color: ColorId, node: NodeId) -> f64 {
    let extent = db.statistics().extent_rows(node) as f64;
    if extent <= 0.0 {
        0.0
    } else {
        occs_of(db, color, node) / extent
    }
}

/// Distinct canonical elements behind a register, for ops that convert
/// occurrence sets to element sets (`to_elems` dedups).
fn elems_behind(db: &Database, r: RegEst) -> f64 {
    match r.node {
        Some(n) => r.rows.min(db.statistics().extent_rows(n) as f64),
        None => r.rows,
    }
}

/// Estimated charges of one structural semi-join given the two side sizes,
/// mirroring the merge and gallop kernels' exact accounting; returns the
/// estimate (with `rows` left at 0) and the predicted kernel.
fn struct_semi_cost(anc: f64, desc: f64) -> (CostEst, KernelChoice) {
    let (small, large) = if anc <= desc { (anc, desc) } else { (desc, anc) };
    let kernel = if gallop_cost_wins(small.round() as usize, large.round() as usize) {
        KernelChoice::Gallop
    } else {
        KernelChoice::Merge
    };
    let (scanned, probes, bytes) = match kernel {
        KernelChoice::Gallop => {
            // each driving element binary-searches the large side; probes
            // and the scan charge both track what the search exposes
            let examined = (small * log2_ceil(large)).min(large);
            (small + examined, examined, (small + examined) * SZ_OCC)
        }
        _ => {
            // the merge walks both sides once and probes the stack per
            // descendant (estimated depth 1)
            (anc + desc, desc, (anc + desc) * SZ_OCC)
        }
    };
    (CostEst { op: 0, rows: 0.0, scanned, probes, bytes, index_lookups: 0.0, kernel }, kernel)
}

/// Annotate `plan` with per-operator cost estimates by forward abstract
/// interpretation, mirroring the executor's charging formulas under the
/// cost-model dispatch. Public so tests and benches can annotate plans
/// compiled elsewhere.
pub fn annotate_costs(db: &Database, graph: &ErGraph, plan: &Plan) -> Vec<CostEst> {
    let stats = db.statistics();
    let mut regs: Vec<RegEst> = vec![RegEst { rows: 0.0, node: None }; plan.reg_count];
    let mut out = Vec::with_capacity(plan.ops.len());
    for (i, op) in plan.ops.iter().enumerate() {
        let mut est = CostEst {
            op: i,
            rows: 0.0,
            scanned: 0.0,
            probes: 0.0,
            bytes: 0.0,
            index_lookups: 0.0,
            kernel: KernelChoice::Default,
        };
        match op {
            Op::Scan { dst, color, node, pred } => {
                let all = occs_of(db, *color, *node);
                match pred {
                    None => {
                        est.rows = all;
                        est.scanned = all;
                        est.bytes = all * SZ_OCC_ID;
                    }
                    Some(p) => {
                        est.kernel = KernelChoice::IndexProbe;
                        let matched = pred_rows(db, *node, p).min(stats.extent_rows(*node) as f64)
                            * expansion(db, *color, *node);
                        est.index_lookups = match p.op {
                            CmpOp::Eq => 1.0,
                            // one comparison per distinct stored value
                            CmpOp::Lt | CmpOp::Gt => {
                                stats.column(*node, p.attr).map_or(0.0, |c| c.distinct as f64)
                            }
                        };
                        est.rows = matched;
                        est.scanned = matched;
                        est.bytes = matched * SZ_OCC_ID;
                    }
                }
                regs[*dst] = RegEst { rows: est.rows, node: Some(*node) };
            }
            Op::StructSemi { dst, src, color, node, via, dir } => {
                let s = regs[*src];
                // the executor widens the source to every occurrence of
                // the same logical instances before joining
                let widened = match s.node {
                    Some(n) => (s.rows * expansion(db, *color, n)).min(occs_of(db, *color, n)),
                    None => s.rows,
                };
                match dir {
                    VDir::Down => {
                        let valid = valid_desc_placements(db, *color, *node, via);
                        let tree = db.color(*color);
                        let targets: f64 =
                            valid.iter().map(|&p| tree.of_placement(p).len() as f64).sum();
                        let (mut c, kernel) = struct_semi_cost(widened, targets);
                        if valid.len() > 1 {
                            // the k-way union materializes
                            c.bytes += targets * SZ_OCC_ID;
                        }
                        let anc_pool = match s.node {
                            Some(n) => occs_of(db, *color, n),
                            None => widened,
                        };
                        let sel = if anc_pool > 0.0 { (widened / anc_pool).min(1.0) } else { 0.0 };
                        est = CostEst { op: i, rows: targets * sel, kernel, ..c };
                    }
                    VDir::Up => {
                        // the source is filtered to chain-valid placements
                        let valid_share = match s.node {
                            Some(n) => {
                                let tree = db.color(*color);
                                let pool = occs_of(db, *color, n);
                                if pool > 0.0 {
                                    let v: f64 = valid_desc_placements(db, *color, n, via)
                                        .iter()
                                        .map(|&p| tree.of_placement(p).len() as f64)
                                        .sum();
                                    (v / pool).min(1.0)
                                } else {
                                    0.0
                                }
                            }
                            None => 1.0,
                        };
                        let desc = widened * valid_share;
                        let anc = occs_of(db, *color, *node);
                        let (c, kernel) = struct_semi_cost(anc, desc);
                        let desc_pool = match s.node {
                            Some(n) => occs_of(db, *color, n),
                            None => desc,
                        };
                        let sel = if desc_pool > 0.0 { (desc / desc_pool).min(1.0) } else { 0.0 };
                        est = CostEst { op: i, rows: anc * sel, kernel, ..c };
                    }
                }
                regs[*dst] = RegEst { rows: est.rows, node: Some(*node) };
            }
            Op::ValueSemi { dst, src, edge, src_is_rel, enter } => {
                let e = graph.edge(*edge);
                let src_elems = elems_behind(db, regs[*src]);
                est.probes = src_elems;
                est.index_lookups = src_elems;
                est.bytes = src_elems * SZ_KEY;
                let (target, matched) = if *src_is_rel {
                    // ordinal-dense extent probe: ≤ one hit per source
                    est.kernel = KernelChoice::OrdinalProbe;
                    let part = stats.extent_rows(e.participant) as f64;
                    (e.participant, src_elems.min(part))
                } else {
                    // sorted-index probe per source ordinal: fanout hits
                    est.kernel = KernelChoice::ReverseProbe;
                    let rel = stats.extent_rows(e.rel) as f64;
                    let part = stats.extent_rows(e.participant) as f64;
                    let fanout = if part > 0.0 { rel / part } else { 0.0 };
                    (e.rel, (src_elems * fanout).min(rel))
                };
                est.scanned = src_elems + matched;
                let rows = matched.min(stats.extent_rows(target) as f64);
                est.rows = match enter {
                    Some(c) => rows * expansion(db, *c, target),
                    None => rows,
                };
                regs[*dst] = RegEst { rows: est.rows, node: Some(target) };
            }
            Op::LinkSemi { dst, src, edge, src_is_rel, enter } => {
                let e = graph.edge(*edge);
                let src_elems = elems_behind(db, regs[*src]);
                est.scanned = src_elems;
                est.probes = src_elems;
                est.bytes = src_elems * SZ_ELEM;
                let (target, matched) = if *src_is_rel {
                    let part = stats.extent_rows(e.participant) as f64;
                    (e.participant, src_elems.min(part))
                } else {
                    let rel = stats.extent_rows(e.rel) as f64;
                    let part = stats.extent_rows(e.participant) as f64;
                    let fanout = if part > 0.0 { rel / part } else { 0.0 };
                    (e.rel, (src_elems * fanout).min(rel))
                };
                let rows = matched.min(stats.extent_rows(target) as f64);
                est.rows = match enter {
                    Some(c) => rows * expansion(db, *c, target),
                    None => rows,
                };
                regs[*dst] = RegEst { rows: est.rows, node: Some(target) };
            }
            Op::Cross { dst, src, color, node } => {
                let elems = elems_behind(db, regs[*src]);
                est.scanned = elems;
                est.bytes = elems * SZ_ELEM;
                est.rows = elems * expansion(db, *color, *node);
                regs[*dst] = RegEst { rows: est.rows, node: Some(*node) };
            }
            Op::Intersect { dst, a, b } => {
                // uncharged sorted merge; the result can't exceed either side
                est.rows = regs[*a].rows.min(regs[*b].rows);
                regs[*dst] = RegEst { rows: est.rows, ..regs[*a] };
            }
            Op::Distinct { dst, src } => {
                let elems = elems_behind(db, regs[*src]);
                est.bytes = elems * SZ_ELEM;
                est.rows = elems;
                regs[*dst] = RegEst { rows: elems, node: regs[*src].node };
            }
            Op::GroupBy { dst, src, attr } => {
                let elems = elems_behind(db, regs[*src]);
                est.scanned = elems;
                est.bytes = elems * SZ_KEY;
                est.rows = match regs[*src].node.and_then(|n| stats.column(n, *attr)) {
                    Some(c) => elems.min(c.distinct as f64),
                    None => elems,
                };
                regs[*dst] = RegEst { rows: est.rows, node: regs[*src].node };
            }
        }
        out.push(est);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::pattern::PatternBuilder;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::catalog;
    use colorist_store::Value;

    fn setup(strategy: Strategy) -> (ErGraph, Database) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 60);
        let inst = generate(&g, &p, 77);
        let schema = design(&g, strategy).unwrap();
        let db = materialize(&g, &schema, &inst);
        (g, db)
    }

    fn q1(g: &ErGraph) -> Pattern {
        PatternBuilder::new(g, "Q1")
            .node("country")
            .pred_eq("id", Value::Int(0))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap()
    }

    #[test]
    fn optimized_plans_carry_one_estimate_per_op() {
        let (g, db) = setup(Strategy::Af);
        let plan = optimize(&db, &g, &q1(&g)).unwrap();
        assert_eq!(plan.costs.len(), plan.ops.len());
        for (i, c) in plan.costs.iter().enumerate() {
            assert_eq!(c.op, i);
            assert!(c.rows.is_finite() && c.rows >= 0.0);
            assert!(c.gate_sum().is_finite() && c.gate_sum() >= 0.0);
        }
    }

    #[test]
    fn heuristic_dispatch_pins_the_heuristic_planner() {
        let (g, mut db) = setup(Strategy::Af);
        db.set_reference_kernels(true);
        let plan = optimize(&db, &g, &q1(&g)).unwrap();
        assert!(plan.costs.is_empty(), "reference mode compiles heuristically");
        db.set_kernel_dispatch(KernelDispatch::Ratio);
        let plan = optimize(&db, &g, &q1(&g)).unwrap();
        assert!(plan.costs.is_empty(), "ratio mode compiles heuristically");
        db.set_kernel_dispatch(KernelDispatch::CostModel);
        let plan = optimize(&db, &g, &q1(&g)).unwrap();
        assert!(!plan.costs.is_empty(), "cost-model mode annotates");
    }

    #[test]
    fn optimized_and_heuristic_plans_answer_identically() {
        for strategy in [Strategy::Deep, Strategy::Af, Strategy::Undr] {
            let (g, db) = setup(strategy);
            let pattern = q1(&g);
            let optimized = optimize(&db, &g, &pattern).unwrap();
            let heuristic = compile(&g, &db.schema, &pattern).unwrap();
            let a = execute(&db, &g, &optimized).unwrap();
            let b = execute(&db, &g, &heuristic).unwrap();
            assert_eq!(a.elements, b.elements, "same answers under both planners");
            assert!(!optimized.costs.is_empty() && heuristic.costs.is_empty());
        }
    }
}

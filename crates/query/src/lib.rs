//! # colorist-query — schema-independent queries over MCT databases
//!
//! The paper evaluates each schema family on one workload: the same logical
//! query must run against SHALLOW, AF, DEEP, EN, MCMR, DR and UNDR, paying
//! whatever mix of structural joins, value joins, and color crossings each
//! schema forces. This crate makes that precise:
//!
//! * [`pattern`] — queries as **association patterns**: a small tree of ER
//!   node types connected by ER paths, with attribute predicates, one
//!   output node, and optional duplicate elimination / grouping; plus
//!   update specifications (modify / delete / insert);
//! * [`mod@compile`] — the schema-aware compiler: a layered shortest-path
//!   search over schema placements chooses, for every hop of every pattern
//!   edge, between a structural step (descending or ascending, in some
//!   color), a color crossing, and an id/idref value join — minimizing
//!   `(value joins, color crossings, structural joins)` lexicographically,
//!   the cost order the paper's measurements justify;
//! * [`plan`] — the compiled semi-join program and its static operation
//!   counts (exactly the Figures 8–10 metrics);
//! * [`exec`] — the interpreter: structural joins / value joins / crossings
//!   against a [`colorist_store::Database`], with measured [`Metrics`];
//! * [`mod@optimize`] — the cost-based optimizer: statistics-driven child
//!   ordering plus per-operator cost estimates in counter units, checked
//!   against measurement by `explain_analyze` and the perfgate;
//! * [`cache`] — the sharded prepared-plan cache: compile + optimize once
//!   per `(pattern, strategy, statistics epoch)`, hit thereafter; the
//!   statistics epoch in the key invalidates stale plans (DESIGN.md §15);
//! * [`update`] — update execution: locate targets, mutate every color
//!   (ICIC maintenance), propagate to physical copies (duplicate updates),
//!   cascade inserts through un-normalized placements;
//! * [`mod@explain`] — colored-XPath rendering of compiled plans.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compile;
pub mod error;
pub mod exec;
pub mod explain;
pub mod optimize;
pub mod pattern;
pub mod plan;
pub mod update;
pub mod verify;

pub use cache::{optimize_cached, CacheStats, PlanCache};
pub use compile::{compile, compile_with, ChildOrder};
pub use error::QueryError;
pub use exec::{execute, execute_profiled, execute_snapshot, op_kind, OpProfile, QueryResult};
pub use explain::{explain, explain_analyze, q_error};
pub use optimize::{annotate_costs, optimize};
pub use pattern::{
    CmpOp, InsertLink, InsertSpec, NewInstance, Partner, Pattern, PatternBuilder, PatternEdge,
    PatternNode, Predicate, UpdateAction, UpdateSpec,
};
pub use plan::{Charge, CostEst, KernelChoice, Op, Plan, VDir};
pub use update::{execute_update, UpdateOutcome};
pub use verify::{explain_abstract, plan_read_footprint, verify_plan, PlanDiag};

pub use colorist_store::Metrics;

//! Query-layer errors.

use std::fmt;

/// Errors raised while building patterns or compiling them against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A named ER node does not exist in the graph.
    UnknownNode(String),
    /// A named attribute does not exist on the node.
    UnknownAttribute { node: String, attr: String },
    /// No ER edge connects two adjacent nodes of a declared path.
    NoSuchEdge { from: String, to: String },
    /// The compiler found no realization of a pattern edge (the schema does
    /// not cover the association structurally or by idref — impossible for
    /// schemas produced by this workspace's strategies).
    Unreachable { from: String, to: String },
    /// The pattern has no nodes / invalid indices.
    Malformed(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownNode(n) => write!(f, "unknown ER node `{n}`"),
            QueryError::UnknownAttribute { node, attr } => {
                write!(f, "node `{node}` has no attribute `{attr}`")
            }
            QueryError::NoSuchEdge { from, to } => {
                write!(f, "no ER edge between `{from}` and `{to}`")
            }
            QueryError::Unreachable { from, to } => {
                write!(f, "no realization of the association `{from}`..`{to}` in the schema")
            }
            QueryError::Malformed(m) => write!(f, "malformed pattern: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

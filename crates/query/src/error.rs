//! Query-layer errors.

use std::fmt;

/// Errors raised while building patterns or compiling them against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A named ER node does not exist in the graph.
    UnknownNode(String),
    /// A named attribute does not exist on the node.
    UnknownAttribute {
        /// The node the lookup ran against.
        node: String,
        /// The missing attribute name.
        attr: String,
    },
    /// No ER edge connects two adjacent nodes of a declared path.
    NoSuchEdge {
        /// Path step start node.
        from: String,
        /// Path step end node.
        to: String,
    },
    /// The compiler found no realization of a pattern edge (the schema does
    /// not cover the association structurally or by idref — impossible for
    /// schemas produced by this workspace's strategies).
    Unreachable {
        /// Pattern-edge parent node.
        from: String,
        /// Pattern-edge child node.
        to: String,
    },
    /// The pattern has no nodes / invalid indices.
    Malformed(String),
    /// The executor hit a plan invariant violation: an op addressed a
    /// register that is out of bounds, unset, in the wrong color, or of
    /// the wrong kind — a malformed plan no compiler output produces.
    Exec(String),
    /// A value semi-join was requested across an ER edge the schema does
    /// not idref-encode. Raised at compile time when a plan would need
    /// one; the executor re-checks defensively instead of panicking.
    NotIdrefEncoded {
        /// Human-readable edge label (`relationship[participant]`).
        edge: String,
    },
    /// The paged storage backend failed to commit dirty segments after an
    /// update (an I/O error from the page file). The in-memory database is
    /// already updated; the backend may be behind by one transaction.
    Storage(String),
    /// An internal invariant of the compiler or executor failed — a schema
    /// or plan lookup that every verified plan satisfies came up empty.
    /// Carries the static-verifier diagnostic code (`P0xx`, see
    /// [`crate::verify`]) of the invariant that would have caught the
    /// malformed artifact, so a verifier gap surfaces as a typed error
    /// rather than a panic.
    Internal {
        /// Diagnostic code plus human-readable invariant description.
        diag: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownNode(n) => write!(f, "unknown ER node `{n}`"),
            QueryError::UnknownAttribute { node, attr } => {
                write!(f, "node `{node}` has no attribute `{attr}`")
            }
            QueryError::NoSuchEdge { from, to } => {
                write!(f, "no ER edge between `{from}` and `{to}`")
            }
            QueryError::Unreachable { from, to } => {
                write!(f, "no realization of the association `{from}`..`{to}` in the schema")
            }
            QueryError::Malformed(m) => write!(f, "malformed pattern: {m}"),
            QueryError::Exec(m) => write!(f, "plan execution failed: {m}"),
            QueryError::NotIdrefEncoded { edge } => {
                write!(f, "ER edge `{edge}` is not idref-encoded in the schema")
            }
            QueryError::Storage(m) => write!(f, "storage backend commit failed: {m}"),
            QueryError::Internal { diag } => {
                write!(f, "internal invariant violated [{diag}]")
            }
        }
    }
}

impl std::error::Error for QueryError {}

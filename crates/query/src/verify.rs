//! Static plan verification: an abstract interpreter over the semi-join IR.
//!
//! [`verify_plan`] re-checks, from the plan, the schema, and the ER graph
//! alone — no database — every invariant the compiler is supposed to
//! establish, and reports violations as clippy-style diagnostics with
//! stable codes. The abstract state tracked per register is
//! `(node, color, placement-set, set kind)`: a sound over-approximation of
//! the placements the register's occurrences can inhabit at run time,
//! mirroring the executor's widening to logical occurrences
//! (`expand_to_logical_occs`) so no compiler-emitted plan is rejected.
//!
//! Diagnostic codes (`P0xx`; the schema linter's `S0xx` codes live in
//! `colorist_mct::lint`):
//!
//! | code | invariant |
//! |------|-----------|
//! | P001 | every source register is defined before use |
//! | P002 | destination registers are in bounds and written exactly once |
//! | P003 | every defined register is consumed (or is the output) |
//! | P004 | a `StructSemi`'s `via` chain exists in the target color's placement forest, connects the endpoint node types, and its level distance equals `via.len()` |
//! | P005 | `ValueSemi` only crosses idref-encoded ER edges |
//! | P006 | node/color agreement: operands hold the set kind, node type and color their operator expects, and scans/crossings land on existing placements |
//! | P007 | completeness charges are present, unique, and anchored at a run's terminating (top) placement — the §4.2 top-up rule (the seed-231 bug class) |
//! | P008 | the plan's recorded [`Metrics`](colorist_store::Metrics) equal the counts re-derived from the IR |
//! | P009 | plan header well-formedness: the output register exists and is defined |
//! | P010 | cost annotations, when present, cover every op exactly once in order, with finite non-negative estimates and a kernel applicable to the annotated operator kind |
//!
//! The pass is wired three ways: a `debug_assert!` in
//! [`compile`](crate::compile::compile) (every compiled plan is verified in
//! debug builds), the `colorist-lint` binary (whole catalog × strategies),
//! and the differential oracle (every plan of every CI seed).

use crate::compile::completeness;
use crate::plan::{Op, Plan, Reg, VDir};
use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::{ColorId, MctSchema, PlacementId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One diagnostic produced by the static plan verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiag {
    /// Stable diagnostic code (`P001`..`P010`).
    pub code: &'static str,
    /// Index of the offending op in [`Plan::ops`], when attributable.
    pub op: Option<usize>,
    /// Human-readable description of the violated invariant.
    pub msg: String,
}

impl PlanDiag {
    fn new(code: &'static str, op: Option<usize>, msg: String) -> Self {
        PlanDiag { code, op, msg }
    }
}

impl fmt::Display for PlanDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(i) => write!(f, "{} [op {}]: {}", self.code, i, self.msg),
            None => write!(f, "{}: {}", self.code, self.msg),
        }
    }
}

/// Abstract register value: what the verifier knows about the set a
/// register will hold at run time. The `complete` flag records whether the
/// set provably contains *every* logical instance satisfying the
/// constraints applied so far — the per-register form of the compiler's
/// placement-completeness analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AbsVal {
    /// An occurrence set: node type, color, and the placements its members
    /// can inhabit (a superset of the placements actually reached).
    Occs { node: NodeId, color: ColorId, placements: BTreeSet<PlacementId>, complete: bool },
    /// A canonical element set of one node type (after a value/link join
    /// with no re-entry, or duplicate elimination).
    Elems { node: NodeId, complete: bool },
    /// A grouped result over elements of one node type.
    Groups { node: NodeId, complete: bool },
    /// Analysis lost track (an earlier diagnostic was already reported for
    /// this dataflow); downstream checks are suppressed to avoid cascades.
    Unknown,
}

impl AbsVal {
    fn node(&self) -> Option<NodeId> {
        match *self {
            AbsVal::Occs { node, .. }
            | AbsVal::Elems { node, .. }
            | AbsVal::Groups { node, .. } => Some(node),
            AbsVal::Unknown => None,
        }
    }

    fn complete(&self) -> bool {
        match *self {
            AbsVal::Occs { complete, .. }
            | AbsVal::Elems { complete, .. }
            | AbsVal::Groups { complete, .. } => complete,
            AbsVal::Unknown => false,
        }
    }
}

/// Verify one compiled plan against the schema it targets. Returns every
/// diagnostic found — an empty vector means the plan is statically sound.
pub fn verify_plan(graph: &ErGraph, schema: &MctSchema, plan: &Plan) -> Vec<PlanDiag> {
    Verifier {
        graph,
        schema,
        full: completeness(graph, schema),
        diags: Vec::new(),
        anchors: BTreeMap::new(),
    }
    .run(plan)
    .0
}

/// Render the abstract interpretation of a plan: one line per operator
/// showing the abstract value the verifier assigns to its destination
/// register, followed by any diagnostics. This is the explain-level view
/// of [`verify_plan`], printed by `colorist-oracle --replay` next to each
/// compiled plan.
pub fn explain_abstract(graph: &ErGraph, schema: &MctSchema, plan: &Plan) -> String {
    use std::fmt::Write as _;
    let (diags, trace) = Verifier {
        graph,
        schema,
        full: completeness(graph, schema),
        diags: Vec::new(),
        anchors: BTreeMap::new(),
    }
    .run(plan);
    let mut s = String::new();
    let _ = writeln!(s, "abstract states ({}):", plan.name);
    for (i, (op, val)) in plan.ops.iter().zip(&trace).enumerate() {
        let rendered = match val {
            AbsVal::Occs { node, color, placements, complete } => format!(
                "occs {}::{} over {} placement(s), {}",
                color,
                graph.node(*node).name,
                placements.len(),
                if *complete { "complete" } else { "incomplete" }
            ),
            AbsVal::Elems { node, complete } => format!(
                "elems {} ({})",
                graph.node(*node).name,
                if *complete { "complete" } else { "incomplete" }
            ),
            AbsVal::Groups { node, complete } => format!(
                "groups of {} ({})",
                graph.node(*node).name,
                if *complete { "complete" } else { "incomplete" }
            ),
            AbsVal::Unknown => "⊥ (analysis lost track)".into(),
        };
        let _ = writeln!(s, "  op {i}: r{} = {rendered}", op.dst());
    }
    if diags.is_empty() {
        let _ = writeln!(s, "  verifier: clean");
    } else {
        for d in &diags {
            let _ = writeln!(s, "  verifier: {d}");
        }
    }
    s
}

/// Compute what a compiled plan **reads**, at the granularity the write
/// side's effect footprints expose (the B004 snapshot-safety check,
/// DESIGN.md §13): node extents, `(node, attr)` columns, color label
/// surfaces, and link/idref edges. Reuses the verifier's per-register
/// abstract interpretation, so a register's node type contributes even
/// when the op does not name it directly.
///
/// If a committed batch's [`Footprint`](colorist_store::Footprint) does
/// not [`invalidate`](colorist_store::Footprint::invalidates) this read
/// footprint, executing the plan after the commit returns exactly the
/// answers a [`Snapshot`](colorist_store::Snapshot) pinned before the
/// commit returns.
pub fn plan_read_footprint(
    graph: &ErGraph,
    schema: &MctSchema,
    plan: &Plan,
) -> colorist_store::ReadFootprint {
    let (_, trace) = Verifier {
        graph,
        schema,
        full: completeness(graph, schema),
        diags: Vec::new(),
        anchors: BTreeMap::new(),
    }
    .run(plan);
    let mut fp = colorist_store::ReadFootprint::default();
    for (op, val) in plan.ops.iter().zip(&trace) {
        if let Some(n) = val.node() {
            fp.nodes.insert(n);
        }
        match op {
            Op::Scan { color, node, pred, .. } => {
                fp.colors.insert(*color);
                fp.nodes.insert(*node);
                if let Some(p) = pred {
                    fp.attrs.insert((*node, p.attr));
                }
            }
            Op::StructSemi { color, node, .. } | Op::Cross { color, node, .. } => {
                fp.colors.insert(*color);
                fp.nodes.insert(*node);
            }
            Op::ValueSemi { edge, enter, .. } => {
                if edge.idx() < graph.edge_count() {
                    fp.edges.insert(*edge);
                    let e = graph.edge(*edge);
                    fp.nodes.insert(e.rel);
                    fp.nodes.insert(e.participant);
                    // the idref value sits in the relationship element's
                    // stored attribute vector after the declared
                    // attributes, in schema idref order (the layout
                    // `Database::idref_attr_index` resolves at run time)
                    let declared = graph.node(e.rel).attributes.len();
                    if let Some(pos) = schema
                        .idrefs()
                        .iter()
                        .filter(|l| graph.edge(l.edge).rel == e.rel)
                        .position(|l| l.edge == *edge)
                    {
                        fp.attrs.insert((e.rel, declared + pos));
                    }
                }
                if let Some(c) = enter {
                    fp.colors.insert(*c);
                }
            }
            Op::LinkSemi { edge, enter, .. } => {
                if edge.idx() < graph.edge_count() {
                    fp.edges.insert(*edge);
                    let e = graph.edge(*edge);
                    fp.nodes.insert(e.rel);
                    fp.nodes.insert(e.participant);
                }
                if let Some(c) = enter {
                    fp.colors.insert(*c);
                }
            }
            Op::Intersect { .. } | Op::Distinct { .. } => {}
            Op::GroupBy { attr, .. } => {
                if let Some(n) = val.node() {
                    fp.attrs.insert((n, *attr));
                }
            }
        }
    }
    fp
}

struct Verifier<'a> {
    graph: &'a ErGraph,
    schema: &'a MctSchema,
    /// Per placement: statically guaranteed to hold the full extent
    /// (the compiler's completeness analysis, shared verbatim).
    full: Vec<bool>,
    diags: Vec<PlanDiag>,
    /// Per `StructSemi` op: the set of admissible completeness anchors —
    /// the run's top placements actually reachable from the abstract
    /// source set. Populated during interpretation, consumed by the
    /// charge audit (`P007`).
    anchors: BTreeMap<usize, BTreeSet<PlacementId>>,
}

impl<'a> Verifier<'a> {
    fn diag(&mut self, code: &'static str, op: Option<usize>, msg: String) {
        self.diags.push(PlanDiag::new(code, op, msg));
    }

    fn run(mut self, plan: &Plan) -> (Vec<PlanDiag>, Vec<AbsVal>) {
        let mut regs: Vec<Option<AbsVal>> = vec![None; plan.reg_count];
        let mut used: Vec<bool> = vec![false; plan.reg_count];
        let mut trace: Vec<AbsVal> = Vec::with_capacity(plan.ops.len());

        for (i, op) in plan.ops.iter().enumerate() {
            // reads first (so `dst == src` still counts the use)
            let val = self.eval(i, op, &mut regs, &mut used);
            trace.push(val.clone());
            let dst = op.dst();
            match regs.get_mut(dst) {
                None => self.diag(
                    "P002",
                    Some(i),
                    format!(
                        "destination register r{dst} out of bounds ({} registers)",
                        plan.reg_count
                    ),
                ),
                Some(slot) => {
                    if slot.is_some() {
                        self.diag(
                            "P002",
                            Some(i),
                            format!("register r{dst} redefined (registers are single-assignment)"),
                        );
                    }
                    *slot = Some(val);
                }
            }
        }

        // P009: output register well-formedness
        match regs.get(plan.output) {
            None => self.diag(
                "P009",
                None,
                format!(
                    "output register r{} out of bounds ({} registers)",
                    plan.output, plan.reg_count
                ),
            ),
            Some(None) => self.diag(
                "P009",
                None,
                format!("output register r{} is never defined", plan.output),
            ),
            Some(Some(_)) => {}
        }

        // P003: dead registers — defined, never consumed, not the output
        for (r, slot) in regs.iter().enumerate() {
            if slot.is_some() && !used[r] && r != plan.output {
                self.diag("P003", None, format!("register r{r} is defined but never used"));
            }
        }

        // P008: recorded metrics must equal the IR-derived counts
        let derived = plan.static_metrics();
        if plan.metrics != derived {
            self.diag(
                "P008",
                None,
                format!(
                    "recorded metrics drift from the IR: recorded {:?}, derived {:?}",
                    plan.metrics, derived
                ),
            );
        }

        self.audit_charges(plan);
        self.audit_costs(plan);
        (self.diags, trace)
    }

    /// `P010`: a cost-annotated plan (the optimizer's output) must carry
    /// exactly one estimate per operator, in op order, each finite,
    /// non-negative, and predicting a kernel the annotated operator can
    /// actually dispatch to. Heuristic plans (empty `costs`) pass vacuously.
    fn audit_costs(&mut self, plan: &Plan) {
        use crate::plan::KernelChoice;
        if plan.costs.is_empty() {
            return;
        }
        if plan.costs.len() != plan.ops.len() {
            self.diag(
                "P010",
                None,
                format!(
                    "plan carries {} cost annotations for {} ops",
                    plan.costs.len(),
                    plan.ops.len()
                ),
            );
            return;
        }
        for (i, c) in plan.costs.iter().enumerate() {
            if c.op != i {
                self.diag(
                    "P010",
                    Some(i),
                    format!("cost annotation #{i} targets op {}, expected {i}", c.op),
                );
                continue;
            }
            for (label, v) in [
                ("rows", c.rows),
                ("scanned", c.scanned),
                ("probes", c.probes),
                ("bytes", c.bytes),
                ("index_lookups", c.index_lookups),
            ] {
                if !v.is_finite() || v < 0.0 {
                    self.diag(
                        "P010",
                        Some(i),
                        format!("cost annotation has non-finite or negative `{label}` ({v})"),
                    );
                }
            }
            let applicable = match &plan.ops[i] {
                Op::Scan { pred, .. } => match c.kernel {
                    KernelChoice::Default | KernelChoice::LinearScan => true,
                    KernelChoice::IndexProbe => pred.is_some(),
                    _ => false,
                },
                Op::StructSemi { .. } => matches!(
                    c.kernel,
                    KernelChoice::Default | KernelChoice::Merge | KernelChoice::Gallop
                ),
                Op::ValueSemi { .. } => matches!(
                    c.kernel,
                    KernelChoice::Default
                        | KernelChoice::HashJoin
                        | KernelChoice::OrdinalProbe
                        | KernelChoice::ReverseProbe
                ),
                Op::LinkSemi { .. }
                | Op::Cross { .. }
                | Op::Intersect { .. }
                | Op::Distinct { .. }
                | Op::GroupBy { .. } => c.kernel == KernelChoice::Default,
            };
            if !applicable {
                self.diag(
                    "P010",
                    Some(i),
                    format!(
                        "cost annotation predicts kernel {:?}, inapplicable to this operator",
                        c.kernel
                    ),
                );
            }
        }
    }

    /// `P007`: every `StructSemi` carries exactly one completeness charge,
    /// anchored at one of the run's admissible top placements — the start
    /// of a descent, the termination of an ascent (§4.2 top-up rule). A
    /// charge at the run's *bottom* placement — the pre-fix completeness
    /// bug — is mis-sited and rejected here.
    fn audit_charges(&mut self, plan: &Plan) {
        let mut charged: BTreeMap<usize, Vec<PlacementId>> = BTreeMap::new();
        for ch in &plan.charges {
            match plan.ops.get(ch.op) {
                Some(Op::StructSemi { .. }) => {
                    charged.entry(ch.op).or_default().push(ch.at);
                }
                Some(_) => self.diag(
                    "P007",
                    Some(ch.op),
                    "completeness charge on a non-structural op".into(),
                ),
                None => self.diag(
                    "P007",
                    None,
                    format!("completeness charge on out-of-range op {}", ch.op),
                ),
            }
        }
        for (op, ats) in &charged {
            if ats.len() > 1 {
                self.diag(
                    "P007",
                    Some(*op),
                    format!(
                        "structural run carries {} completeness charges, expected one",
                        ats.len()
                    ),
                );
            }
            let Some(anchors) = self.anchors.get(op).cloned() else {
                // the op itself already failed abstract interpretation;
                // its own diagnostic covers it
                continue;
            };
            for &at in ats {
                if !anchors.contains(&at) {
                    let dir = match plan.ops[*op] {
                        Op::StructSemi { dir: VDir::Up, .. } => "terminating (top)",
                        _ => "start (top)",
                    };
                    self.diag(
                        "P007",
                        Some(*op),
                        format!(
                            "completeness charge anchored at {at}, which is not the run's \
                             {dir} placement (§4.2 top-up rule)"
                        ),
                    );
                }
            }
        }
        // every successfully analyzed structural run must carry its charge
        let anchor_ops: Vec<usize> = self.anchors.keys().copied().collect();
        for op in anchor_ops {
            if !charged.contains_key(&op) {
                self.diag("P007", Some(op), "structural run carries no completeness charge".into());
            }
        }
    }

    /// Read a source register, marking it used; reports `P001` when unset.
    fn use_reg(&mut self, i: usize, r: Reg, regs: &[Option<AbsVal>], used: &mut [bool]) -> AbsVal {
        match regs.get(r) {
            Some(Some(v)) => {
                used[r] = true;
                v.clone()
            }
            Some(None) => {
                used[r] = true;
                self.diag("P001", Some(i), format!("register r{r} used before definition"));
                AbsVal::Unknown
            }
            None => {
                self.diag(
                    "P001",
                    Some(i),
                    format!("source register r{r} out of bounds ({} registers)", regs.len()),
                );
                AbsVal::Unknown
            }
        }
    }

    fn color_ok(&mut self, i: usize, c: ColorId, who: &str) -> bool {
        if c.idx() < self.schema.color_count() {
            true
        } else {
            self.diag(
                "P006",
                Some(i),
                format!("{who}: color {c} out of range ({} colors)", self.schema.color_count()),
            );
            false
        }
    }

    fn node_ok(&mut self, i: usize, n: NodeId, who: &str) -> bool {
        if n.idx() < self.graph.node_count() {
            true
        } else {
            self.diag("P006", Some(i), format!("{who}: ER node {n:?} out of range"));
            false
        }
    }

    fn edge_ok(&mut self, i: usize, code: &'static str, e: EdgeId, who: &str) -> bool {
        if e.idx() < self.graph.edge_count() {
            true
        } else {
            self.diag(code, Some(i), format!("{who}: ER edge {e:?} out of range"));
            false
        }
    }

    /// Mirror of the executor's `expand_to_logical_occs`: on colors where
    /// the node has several placements, run-time sets are widened to every
    /// occurrence of the same logical instances before a structural join.
    fn widen(
        &self,
        node: NodeId,
        color: ColorId,
        set: &BTreeSet<PlacementId>,
    ) -> BTreeSet<PlacementId> {
        let all = self.schema.placements_of_in_color(node, color);
        if all.len() > 1 {
            all.into_iter().collect()
        } else {
            set.clone()
        }
    }

    /// Walk `p`'s parent chain matching `via` ancestor-side-first (the
    /// executor's `chain_matches`); the endpoint, or `None` on mismatch.
    fn walk_up(&self, p: PlacementId, via: &[EdgeId]) -> Option<PlacementId> {
        let mut cur = p;
        for &expected in via.iter().rev() {
            match self.schema.placement(cur).parent {
                Some((pp, e)) if e == expected => cur = pp,
                _ => return None,
            }
        }
        Some(cur)
    }

    fn eval(
        &mut self,
        i: usize,
        op: &Op,
        regs: &mut [Option<AbsVal>],
        used: &mut [bool],
    ) -> AbsVal {
        match op {
            Op::Scan { color, node, pred, .. } => {
                if !self.color_ok(i, *color, "Scan") || !self.node_ok(i, *node, "Scan") {
                    return AbsVal::Unknown;
                }
                if let Some(p) = pred {
                    let n_attrs = self.graph.node(*node).attributes.len();
                    if p.attr >= n_attrs {
                        self.diag(
                            "P006",
                            Some(i),
                            format!(
                                "Scan: predicate attribute #{} out of range for `{}` ({n_attrs} attributes)",
                                p.attr,
                                self.graph.node(*node).name
                            ),
                        );
                    }
                }
                let placements: BTreeSet<PlacementId> =
                    self.schema.placements_of_in_color(*node, *color).into_iter().collect();
                if placements.is_empty() {
                    self.diag(
                        "P006",
                        Some(i),
                        format!(
                            "Scan: `{}` has no placement in color {color}",
                            self.graph.node(*node).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                let complete = placements.iter().any(|p| self.full[p.idx()]);
                AbsVal::Occs { node: *node, color: *color, placements, complete }
            }

            Op::StructSemi { src, color, node, via, dir, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                if !self.color_ok(i, *color, "StructSemi") || !self.node_ok(i, *node, "StructSemi")
                {
                    return AbsVal::Unknown;
                }
                let (src_node, src_set, src_complete) = match sv {
                    AbsVal::Occs { node: n, color: c, placements, complete } => {
                        if c != *color {
                            self.diag(
                                "P006",
                                Some(i),
                                format!(
                                    "StructSemi: source r{src} holds occurrences in color {c}, \
                                     navigates {color}"
                                ),
                            );
                            return AbsVal::Unknown;
                        }
                        (n, placements, complete)
                    }
                    AbsVal::Unknown => return AbsVal::Unknown,
                    _ => {
                        self.diag(
                            "P006",
                            Some(i),
                            format!("StructSemi: source r{src} does not hold an occurrence set"),
                        );
                        return AbsVal::Unknown;
                    }
                };
                if via.is_empty() {
                    self.diag("P004", Some(i), "StructSemi with an empty `via` chain".into());
                    return AbsVal::Unknown;
                }
                if via.iter().any(|&e| e.idx() >= self.graph.edge_count()) {
                    self.diag("P004", Some(i), "`via` contains an out-of-range ER edge".into());
                    return AbsVal::Unknown;
                }
                // the chain must be a connected ER path between the
                // endpoint node types (ancestor-side-first)
                let (top_node, bottom_node) = match dir {
                    VDir::Down => (src_node, *node),
                    VDir::Up => (*node, src_node),
                };
                if self.graph.chain_end(top_node, via) != Some(bottom_node) {
                    self.diag(
                        "P004",
                        Some(i),
                        format!(
                            "`via` is not an ER path from `{}` to `{}`",
                            self.graph.node(top_node).name,
                            self.graph.node(bottom_node).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                let widened = self.widen(src_node, *color, &src_set);
                let mut result: BTreeSet<PlacementId> = BTreeSet::new();
                let mut anchors: BTreeSet<PlacementId> = BTreeSet::new();
                match dir {
                    VDir::Down => {
                        // valid landings: placements of `node` whose upward
                        // chain realizes `via` and tops out in the source
                        // set — level distance is exactly via.len() by
                        // construction of the walk
                        for q in self.schema.placements_of_in_color(*node, *color) {
                            if let Some(top) = self.walk_up(q, via) {
                                if widened.contains(&top) {
                                    result.insert(q);
                                    anchors.insert(top);
                                }
                            }
                        }
                    }
                    VDir::Up => {
                        // ascents: sources whose chain matches terminate at
                        // the run's top placement, which must be of `node`
                        for &p in &widened {
                            if let Some(top) = self.walk_up(p, via) {
                                if self.schema.placement(top).node == *node {
                                    result.insert(top);
                                    anchors.insert(top);
                                }
                            }
                        }
                    }
                }
                if result.is_empty() {
                    self.diag(
                        "P004",
                        Some(i),
                        format!(
                            "no placement chain in color {color} realizes `via` ({} edge(s), {dir:?}) \
                             from the source set",
                            via.len()
                        ),
                    );
                    return AbsVal::Unknown;
                }
                // the run discovers every pair only when its source was
                // complete and every admissible anchor holds a full extent
                let complete = src_complete && anchors.iter().all(|a| self.full[a.idx()]);
                self.anchors.insert(i, anchors);
                AbsVal::Occs { node: *node, color: *color, placements: result, complete }
            }

            Op::ValueSemi { src, edge, src_is_rel, enter, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                if !self.edge_ok(i, "P005", *edge, "ValueSemi") {
                    return AbsVal::Unknown;
                }
                if self.schema.idref_for(*edge).is_none() {
                    let ed = self.graph.edge(*edge);
                    self.diag(
                        "P005",
                        Some(i),
                        format!(
                            "value join across `{}[{}]`, which the schema does not idref-encode",
                            self.graph.node(ed.rel).name,
                            self.graph.node(ed.participant).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                self.join_result(i, sv, *edge, *src_is_rel, *enter, "ValueSemi")
            }

            Op::LinkSemi { src, edge, src_is_rel, enter, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                if !self.edge_ok(i, "P006", *edge, "LinkSemi") {
                    return AbsVal::Unknown;
                }
                self.join_result(i, sv, *edge, *src_is_rel, *enter, "LinkSemi")
            }

            Op::Cross { src, color, node, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                if !self.color_ok(i, *color, "Cross") || !self.node_ok(i, *node, "Cross") {
                    return AbsVal::Unknown;
                }
                if let Some(n) = sv.node() {
                    if n != *node {
                        self.diag(
                            "P006",
                            Some(i),
                            format!(
                                "Cross: source holds `{}`, op crosses `{}`",
                                self.graph.node(n).name,
                                self.graph.node(*node).name
                            ),
                        );
                        return AbsVal::Unknown;
                    }
                } else {
                    return AbsVal::Unknown;
                }
                let placements: BTreeSet<PlacementId> =
                    self.schema.placements_of_in_color(*node, *color).into_iter().collect();
                if placements.is_empty() {
                    self.diag(
                        "P006",
                        Some(i),
                        format!(
                            "Cross: `{}` has no placement in color {color}",
                            self.graph.node(*node).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                // a crossing drops instances absent from the target color
                // unless some target placement holds the full extent
                let complete = sv.complete() && placements.iter().any(|p| self.full[p.idx()]);
                AbsVal::Occs { node: *node, color: *color, placements, complete }
            }

            Op::Intersect { a, b, .. } => {
                let va = self.use_reg(i, *a, regs, used);
                let vb = self.use_reg(i, *b, regs, used);
                match (va, vb) {
                    (
                        AbsVal::Occs { node: na, color: ca, placements: pa, complete: fa },
                        AbsVal::Occs { node: nb, color: cb, placements: pb, complete: fb },
                    ) => {
                        if ca != cb {
                            self.diag(
                                "P006",
                                Some(i),
                                format!("Intersect: colors differ ({ca} vs {cb})"),
                            );
                            return AbsVal::Unknown;
                        }
                        if na != nb {
                            self.diag(
                                "P006",
                                Some(i),
                                format!(
                                    "Intersect: node types differ (`{}` vs `{}`)",
                                    self.graph.node(na).name,
                                    self.graph.node(nb).name
                                ),
                            );
                            return AbsVal::Unknown;
                        }
                        // members of the result lie in both abstract sets
                        let placements: BTreeSet<PlacementId> =
                            pa.intersection(&pb).copied().collect();
                        AbsVal::Occs { node: na, color: ca, placements, complete: fa && fb }
                    }
                    (AbsVal::Unknown, _) | (_, AbsVal::Unknown) => AbsVal::Unknown,
                    _ => {
                        self.diag(
                            "P006",
                            Some(i),
                            "Intersect: both operands must hold occurrence sets".into(),
                        );
                        AbsVal::Unknown
                    }
                }
            }

            Op::Distinct { src, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                match sv.node() {
                    Some(node) => AbsVal::Elems { node, complete: sv.complete() },
                    None => AbsVal::Unknown,
                }
            }

            Op::GroupBy { src, attr, .. } => {
                let sv = self.use_reg(i, *src, regs, used);
                let Some(node) = sv.node() else {
                    return AbsVal::Unknown;
                };
                let n_attrs = self.graph.node(node).attributes.len();
                if *attr >= n_attrs {
                    self.diag(
                        "P006",
                        Some(i),
                        format!(
                            "GroupBy: attribute #{attr} out of range for `{}` ({n_attrs} attributes)",
                            self.graph.node(node).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                AbsVal::Groups { node, complete: sv.complete() }
            }
        }
    }

    /// Shared checks + abstract result of `ValueSemi`/`LinkSemi`: the
    /// source must hold the declared side of the edge; the result is the
    /// other side, re-entered into `enter`'s forest when requested.
    fn join_result(
        &mut self,
        i: usize,
        sv: AbsVal,
        edge: EdgeId,
        src_is_rel: bool,
        enter: Option<ColorId>,
        who: &str,
    ) -> AbsVal {
        let e = self.graph.edge(edge);
        let (expect_src, result_node) =
            if src_is_rel { (e.rel, e.participant) } else { (e.participant, e.rel) };
        match sv.node() {
            Some(n) if n != expect_src => {
                self.diag(
                    "P006",
                    Some(i),
                    format!(
                        "{who}: source holds `{}`, edge side expects `{}`",
                        self.graph.node(n).name,
                        self.graph.node(expect_src).name
                    ),
                );
                return AbsVal::Unknown;
            }
            Some(_) => {}
            None => return AbsVal::Unknown,
        }
        // value/link joins probe full logical extents, so completeness is
        // inherited from the source (re-entry may drop instances absent
        // from the target color, as with `Cross`)
        let src_complete = sv.complete();
        match enter {
            Some(c) => {
                if !self.color_ok(i, c, who) {
                    return AbsVal::Unknown;
                }
                let placements: BTreeSet<PlacementId> =
                    self.schema.placements_of_in_color(result_node, c).into_iter().collect();
                if placements.is_empty() {
                    self.diag(
                        "P006",
                        Some(i),
                        format!(
                            "{who}: `{}` has no placement in color {c} to re-enter",
                            self.graph.node(result_node).name
                        ),
                    );
                    return AbsVal::Unknown;
                }
                let complete = src_complete && placements.iter().any(|p| self.full[p.idx()]);
                AbsVal::Occs { node: result_node, color: c, placements, complete }
            }
            None => AbsVal::Elems { node: result_node, complete: src_complete },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::pattern::PatternBuilder;
    use crate::plan::Charge;
    use colorist_core::{design, Strategy};
    use colorist_er::{catalog, ErGraph};
    use colorist_store::Value;

    fn setup(strategy: Strategy) -> (ErGraph, MctSchema) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let schema = design(&g, strategy).unwrap();
        (g, schema)
    }

    fn q1(g: &ErGraph) -> crate::pattern::Pattern {
        PatternBuilder::new(g, "Q1")
            .node("country")
            .pred_eq("id", Value::Int(0))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_plans_verify_clean_on_all_strategies() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let plan = compile(&g, &schema, &q1(&g)).unwrap();
            let diags = verify_plan(&g, &schema, &plan);
            assert!(diags.is_empty(), "{s}: {:?}\n{plan}", diags);
        }
    }

    #[test]
    fn read_footprints_cover_the_chain_and_stay_off_unrelated_nodes() {
        for s in Strategy::ALL {
            let (g, schema) = setup(s);
            let plan = compile(&g, &schema, &q1(&g)).unwrap();
            let fp = plan_read_footprint(&g, &schema, &plan);
            let by_name = |name: &str| g.node_ids().find(|&n| g.node(n).name == name).unwrap();
            let country = by_name("country");
            assert!(fp.nodes.contains(&country), "{s}: {fp:?}");
            assert!(fp.nodes.contains(&by_name("order")), "{s}: {fp:?}");
            assert!(!fp.colors.is_empty(), "{s}: {fp:?}");
            // the country id predicate reads a (node, attr) column
            assert!(fp.attrs.iter().any(|&(n, _)| n == country), "{s}: {fp:?}");
            // Q1 never visits the catalog side of TPC-W, so a batch whose
            // footprint stays on author/item columns cannot invalidate it
            assert!(!fp.nodes.contains(&by_name("author")), "{s}: {fp:?}");
        }
    }

    #[test]
    fn use_before_def_and_dead_registers_are_rejected() {
        let (g, schema) = setup(Strategy::Af);
        let mut plan = compile(&g, &schema, &q1(&g)).unwrap();
        // point a consumer at a fresh, never-written register: its former
        // producer goes dead (P003) and the read is undefined (P001)
        plan.reg_count += 1;
        let bogus = plan.reg_count - 1;
        let redirected = plan.ops.iter_mut().rev().any(|op| match op {
            Op::Intersect { b, .. } => {
                *b = bogus;
                true
            }
            Op::Distinct { src, .. } | Op::GroupBy { src, .. } => {
                *src = bogus;
                true
            }
            _ => false,
        });
        assert!(redirected, "plan has a consumer to redirect\n{plan}");
        let codes: Vec<_> = verify_plan(&g, &schema, &plan).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"P001"), "{codes:?}");
        assert!(codes.contains(&"P003"), "dangling producer: {codes:?}");
    }

    #[test]
    fn broken_via_chain_is_rejected() {
        let (g, schema) = setup(Strategy::Af);
        let mut plan = compile(&g, &schema, &q1(&g)).unwrap();
        let semi = plan
            .ops
            .iter_mut()
            .find_map(|op| match op {
                Op::StructSemi { via, .. } => Some(via),
                _ => None,
            })
            .expect("Q1 on AF has a structural join");
        semi.pop();
        let diags = verify_plan(&g, &schema, &plan);
        assert!(diags.iter().any(|d| d.code == "P004"), "{diags:?}");
    }

    #[test]
    fn metrics_drift_is_rejected() {
        let (g, schema) = setup(Strategy::Af);
        let mut plan = compile(&g, &schema, &q1(&g)).unwrap();
        plan.metrics.structural_joins += 1;
        let diags = verify_plan(&g, &schema, &plan);
        assert!(diags.iter().any(|d| d.code == "P008"), "{diags:?}");
    }

    /// The seed-231 bug shape, statically: Q1 on DEEP descends through
    /// incomplete placements, so its plan carries a completeness charge at
    /// the run's top placement. Re-siting that charge to the run's bottom
    /// placement — the §4.2 bug — must be rejected as `P007` without
    /// running a query.
    #[test]
    fn resited_completeness_charge_is_p007() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let mut found = false;
        let mut missing_caught = false;
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let plan = compile(&g, &schema, &q1(&g)).unwrap();
            let Some(ch) = plan.charges.first().copied() else { continue };
            found = true;
            let Op::StructSemi { node, color, ref via, dir, .. } = plan.ops[ch.op] else {
                panic!("charge on non-structural op")
            };
            // the run's bottom-side node: the target itself for a descent,
            // the far end of the `via` chain for an ascent
            let bottom_node = match dir {
                VDir::Down => node,
                VDir::Up => g.chain_end(node, via).unwrap(),
            };
            let bottom = schema
                .placements_of_in_color(bottom_node, color)
                .into_iter()
                .find(|&p| p != ch.at)
                .expect("run has a bottom placement distinct from its top anchor");
            let mut bad = plan.clone();
            bad.charges[0] = Charge { op: ch.op, at: bottom };
            let diags = verify_plan(&g, &schema, &bad);
            assert!(diags.iter().any(|d| d.code == "P007"), "{s}: {diags:?}\n{bad}");

            // dropping the charge entirely is also P007 (the "missing"
            // arm fires when every admissible anchor is incomplete; count
            // across strategies so at least one run proves it)
            let mut missing = plan.clone();
            missing.charges.clear();
            let diags = verify_plan(&g, &schema, &missing);
            if diags.iter().any(|d| d.code == "P007") {
                missing_caught = true;
            }

            // duplicating it is P007 too
            let mut dup = plan.clone();
            dup.charges.push(ch);
            let diags = verify_plan(&g, &schema, &dup);
            assert!(diags.iter().any(|d| d.code == "P007"), "{s} dup: {diags:?}");
        }
        assert!(found, "no strategy produced a charged plan for Q1");
        assert!(missing_caught, "no strategy flagged a dropped charge");
    }
}

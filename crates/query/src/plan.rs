//! Compiled query plans: linear semi-join programs over registers.
//!
//! A plan reduces the pattern tree bottom-up: leaf scans produce candidate
//! sets, and each pattern edge reduces its parent's candidates to those
//! with a match on the child side, by a chain of structural semi-joins,
//! value semi-joins, and color crossings. The static operation counts of a
//! plan are precisely the per-query metrics of Figures 8–10.
//!
//! Structural semi-joins are *path-exact*: each carries the ER edge
//! sequence (`via`) it realizes, and the executor pairs an ancestor with a
//! descendant only when the descendant's placement chain matches `via` and
//! the level distance equals `via.len()` — a single stack-merge pass per
//! join (in the spirit of the holistic twig joins the paper cites), so a
//! run of same-direction steps costs one structural join, which is exactly
//! the expressive benefit of the `//` axis the paper leverages.

use crate::pattern::Predicate;
use colorist_er::{EdgeId, NodeId};
use colorist_mct::{ColorId, PlacementId};
use colorist_store::Metrics;
use std::fmt;

/// Register index.
pub type Reg = usize;

/// Vertical direction of a structural semi-join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VDir {
    /// Targets are descendants of the source set.
    Down,
    /// Targets are ancestors of the source set.
    Up,
}

/// One plan operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Scan all occurrences of an ER node type in a color, with optional
    /// predicate (XPath label match).
    Scan {
        /// Destination register.
        dst: Reg,
        /// Color scanned.
        color: ColorId,
        /// ER node type (element label).
        node: NodeId,
        /// Predicate on the element's attributes.
        pred: Option<Predicate>,
    },
    /// Path-exact structural semi-join within `color`: `dst` = occurrences
    /// of `node` that are descendants (`Down`) or ancestors (`Up`) of `src`
    /// along exactly the `via` edge sequence.
    StructSemi {
        /// Destination register.
        dst: Reg,
        /// Source register (occurrences in `color`).
        src: Reg,
        /// The color navigated.
        color: ColorId,
        /// Target label.
        node: NodeId,
        /// Realized ER edges, ancestor-side first.
        via: Vec<EdgeId>,
        /// Direction of navigation from the source set.
        dir: VDir,
    },
    /// Value semi-join across an idref-encoded ER edge: `dst` = elements on
    /// the far side of `edge` matching `src`, re-entering `enter`'s colored
    /// tree if the plan continues structurally.
    ValueSemi {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// The idref-encoded ER edge.
        edge: EdgeId,
        /// Whether `src` holds the relationship side (probing participants
        /// by id) or the participant side (probing relationship idrefs).
        src_is_rel: bool,
        /// Where the result re-enters a colored tree.
        enter: Option<ColorId>,
    },
    /// Parent-child link semi-join across one ER edge, using the stored
    /// link adjacency (the parent-child pairs every realization of the edge
    /// materializes). The compiler's fallback when no *complete* structural
    /// chain exists — exact on any schema, but never able to skip levels,
    /// so long associations cost one of these per hop.
    LinkSemi {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// The ER edge hopped.
        edge: EdgeId,
        /// Whether `src` holds the relationship side.
        src_is_rel: bool,
        /// Where the result re-enters a colored tree.
        enter: Option<ColorId>,
    },
    /// Color crossing: `dst` = occurrences of the same logical instances in
    /// `color` (MCT's distinctive navigation step).
    Cross {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Target color.
        color: ColorId,
        /// The node type crossed (labels only; for explain output).
        node: NodeId,
    },
    /// Occurrence-set intersection (same color) — the merge step of a
    /// multi-child semi-join; not a counted operation.
    Intersect {
        /// Destination register.
        dst: Reg,
        /// One input.
        a: Reg,
        /// Other input.
        b: Reg,
    },
    /// Logical duplicate elimination: `dst` = distinct canonical elements.
    Distinct {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Group the source by an attribute of its elements (aggregation).
    GroupBy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Attribute index grouped on.
        attr: usize,
    },
}

impl Op {
    /// Destination register of the operator.
    pub fn dst(&self) -> Reg {
        match *self {
            Op::Scan { dst, .. }
            | Op::StructSemi { dst, .. }
            | Op::ValueSemi { dst, .. }
            | Op::LinkSemi { dst, .. }
            | Op::Cross { dst, .. }
            | Op::Intersect { dst, .. }
            | Op::Distinct { dst, .. }
            | Op::GroupBy { dst, .. } => dst,
        }
    }
}

/// A completeness charge: the compiler's record of where one structural
/// run's completeness obligation anchors — the placement whose extent must
/// be full for the run to discover every logical pair. For a `Down` run
/// the anchor is the run's start (top) placement; for an `Up` run it is
/// the placement the run terminates at (the §4.2 top-up rule: topped-up
/// orphans at the bottom cannot be ascended from). Every `StructSemi`
/// carries exactly one charge; the static verifier ([`crate::verify`])
/// re-derives the admissible anchors from the IR and the schema and
/// rejects plans whose recorded charges are missing, duplicated, or
/// mis-sited — e.g. anchored at the run's bottom placement, the exact
/// shape of the pre-fix §4.2 completeness bug (`P007`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charge {
    /// Index into [`Plan::ops`] of the charged `StructSemi`.
    pub op: usize,
    /// The anchor placement whose completeness the run depends on.
    pub at: PlacementId,
}

/// The physical kernel the optimizer predicts an operator will run on.
///
/// Recorded in [`CostEst::kernel`] so `explain_analyze` can show which
/// dispatch decision each estimate backed, and so the static verifier can
/// reject annotations whose kernel is inapplicable to the annotated
/// operator kind (`P010`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// No kernel alternative exists for this operator (Cross, Intersect,
    /// Distinct, GroupBy, LinkSemi's single path, …).
    Default,
    /// Predicate scan satisfied by a value-index probe.
    IndexProbe,
    /// Predicate scan satisfied by a linear extent walk (reference path).
    LinearScan,
    /// Structural semi-join on the stack-merge kernel.
    Merge,
    /// Structural semi-join on the gallop-skipping kernel.
    Gallop,
    /// Value semi-join on the reference hash-join kernel.
    HashJoin,
    /// Value semi-join probing participants by ordinal id (idref→id).
    OrdinalProbe,
    /// Value semi-join probing relationship idrefs via the index (id→idref).
    ReverseProbe,
}

/// The optimizer's per-operator cost estimate, in the same units as the
/// deterministic runtime counters so estimate-vs-measured drift is directly
/// comparable. An empty [`Plan::costs`] means the plan was built by the
/// heuristic compiler and carries no estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEst {
    /// Index into [`Plan::ops`] of the annotated operator.
    pub op: usize,
    /// Estimated output cardinality (rows in the destination register).
    pub rows: f64,
    /// Estimated `elements_scanned` charged by this operator.
    pub scanned: f64,
    /// Estimated `join_probes` charged by this operator.
    pub probes: f64,
    /// Estimated `bytes_touched` charged by this operator.
    pub bytes: f64,
    /// Estimated `index_lookups` charged by this operator.
    pub index_lookups: f64,
    /// The kernel the estimate assumes the operator dispatches to.
    pub kernel: KernelChoice,
}

impl CostEst {
    /// The estimate's contribution to the perfgate domination sum
    /// (`elements_scanned + join_probes + bytes_touched`).
    pub fn gate_sum(&self) -> f64 {
        self.scanned + self.probes + self.bytes
    }
}

/// A compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Query name.
    pub name: String,
    /// Strategy label of the schema compiled against.
    pub strategy: String,
    /// Operators, in execution order.
    pub ops: Vec<Op>,
    /// Register holding the final result.
    pub output: Reg,
    /// Number of registers.
    pub reg_count: usize,
    /// Static operation counts recorded by the compiler at emission time.
    /// Must equal [`Plan::static_metrics`] (re-derived from the IR); the
    /// verifier reports drift as `P008`.
    pub metrics: Metrics,
    /// Completeness charges recorded by the compiler, exactly one per
    /// `StructSemi`, each anchored at its run's top placement.
    pub charges: Vec<Charge>,
    /// The optimizer's per-operator cost estimates, one per op in op
    /// order, or empty for heuristic plans. Audited by `P010`.
    pub costs: Vec<CostEst>,
}

impl Plan {
    /// Construct a plan from its IR, deriving the recorded static metrics
    /// from the operator list (so `P008` holds by construction) and leaving
    /// the cost annotations empty. The compiler and optimizer both build
    /// plans through here; the optimizer then fills [`Plan::costs`].
    pub fn new(
        name: String,
        strategy: String,
        ops: Vec<Op>,
        output: Reg,
        reg_count: usize,
        charges: Vec<Charge>,
    ) -> Plan {
        let mut plan = Plan {
            name,
            strategy,
            ops,
            output,
            reg_count,
            metrics: Metrics::default(),
            charges,
            costs: Vec::new(),
        };
        plan.metrics = plan.static_metrics();
        plan
    }
    /// The plan-level operation counts (Figures 8–10): these are exactly
    /// what execution will report, since every operator runs once.
    pub fn static_metrics(&self) -> Metrics {
        let mut m = Metrics::default();
        for op in &self.ops {
            match op {
                Op::Scan { .. } | Op::Intersect { .. } => {}
                // a link semi-join is a single parent-child structural step
                Op::StructSemi { .. } | Op::LinkSemi { .. } => m.structural_joins += 1,
                Op::ValueSemi { .. } => m.value_joins += 1,
                Op::Cross { .. } => m.color_crossings += 1,
                Op::Distinct { .. } => m.dup_eliminations += 1,
                Op::GroupBy { .. } => m.group_bys += 1,
            }
        }
        m
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {} [{}] -> r{}", self.name, self.strategy, self.output)?;
        for op in &self.ops {
            match op {
                Op::Scan { dst, color, node, pred } => {
                    write!(f, "  r{dst} = scan {color}::{node}")?;
                    if pred.is_some() {
                        write!(f, " [pred]")?;
                    }
                    writeln!(f)?;
                }
                Op::StructSemi { dst, src, color, node, via, dir } => writeln!(
                    f,
                    "  r{dst} = struct{} r{src} -> {color}::{node} via {} edge(s)",
                    if *dir == VDir::Down { "↓" } else { "↑" },
                    via.len()
                )?,
                Op::ValueSemi { dst, src, edge, src_is_rel, enter } => {
                    write!(f, "  r{dst} = valuejoin r{src} across {edge}")?;
                    write!(f, "{}", if *src_is_rel { " (idref→id)" } else { " (id→idref)" })?;
                    if let Some(c) = enter {
                        write!(f, " enter {c}")?;
                    }
                    writeln!(f)?;
                }
                Op::LinkSemi { dst, src, edge, .. } => {
                    writeln!(f, "  r{dst} = linkjoin r{src} across {edge}")?
                }
                Op::Cross { dst, src, color, node } => {
                    writeln!(f, "  r{dst} = cross r{src} -> {color}::{node}")?
                }
                Op::Intersect { dst, a, b } => writeln!(f, "  r{dst} = r{a} ∩ r{b}")?,
                Op::Distinct { dst, src } => writeln!(f, "  r{dst} = distinct r{src}")?,
                Op::GroupBy { dst, src, attr } => writeln!(f, "  r{dst} = groupby r{src} @{attr}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_metrics_count_ops() {
        let mut plan = Plan {
            name: "t".into(),
            strategy: "EN".into(),
            ops: vec![
                Op::Scan { dst: 0, color: ColorId(0), node: NodeId(0), pred: None },
                Op::StructSemi {
                    dst: 1,
                    src: 0,
                    color: ColorId(0),
                    node: NodeId(1),
                    via: vec![EdgeId(0), EdgeId(1)],
                    dir: VDir::Down,
                },
                Op::Cross { dst: 2, src: 1, color: ColorId(1), node: NodeId(1) },
                Op::ValueSemi { dst: 3, src: 2, edge: EdgeId(0), src_is_rel: true, enter: None },
                Op::Intersect { dst: 4, a: 3, b: 1 },
                Op::Distinct { dst: 5, src: 4 },
                Op::GroupBy { dst: 6, src: 5, attr: 0 },
            ],
            output: 6,
            reg_count: 7,
            metrics: Metrics::default(),
            charges: Vec::new(),
            costs: Vec::new(),
        };
        plan.metrics = plan.static_metrics();
        let m = plan.static_metrics();
        assert_eq!(plan.metrics, m, "recorded metrics mirror the derivation");
        assert_eq!(m.structural_joins, 1);
        assert_eq!(m.value_joins, 1);
        assert_eq!(m.color_crossings, 1);
        assert_eq!(m.dup_eliminations, 1);
        assert_eq!(m.group_bys, 1);
        let txt = plan.to_string();
        assert!(txt.contains("valuejoin"), "{txt}");
        assert!(txt.contains("struct↓"), "{txt}");
        assert!(txt.contains('∩'), "{txt}");
        assert_eq!(plan.ops[1].dst(), 1);
    }
}

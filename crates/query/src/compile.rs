//! The schema-aware pattern compiler.
//!
//! For every pattern edge (an exact ER path), the compiler searches the
//! schema's placements for the cheapest realization, where a hop between
//! adjacent ER nodes can be:
//!
//! * a **structural step** in some color — descending along a placement
//!   edge, or ascending (XPath's parent/ancestor axes); consecutive
//!   same-direction steps merge into a single path-exact structural join;
//! * a **color crossing** — re-entering the same logical node's occurrences
//!   in another colored tree (MCT's distinctive step);
//! * an **id/idref value join** — the fallback for edges the schema only
//!   encodes by value.
//!
//! Costs are lexicographic: a completeness tier first (see the
//! `completeness` analysis below), then `(value joins, color crossings, structural
//! joins)` — the paper's measured cost order ("the time taken to evaluate a
//! query appears to be almost proportional to the number of value joins or
//! color crossings … little correlation with the number of structural
//! joins").
//!
//! Placements for all pattern nodes are chosen jointly: the pattern tree is
//! processed bottom-up and each pattern edge runs one **multi-source
//! Dijkstra** over its layered placement graph, seeded with the child
//! node's accumulated costs — one search per edge rather than one per
//! source placement, which keeps DEEP's thousands of placements
//! compilable.

use crate::error::QueryError;
use crate::pattern::Pattern;
use crate::plan::{Charge, Op, Plan, Reg, VDir};
use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::{MctSchema, PlacementId};
use std::collections::{BinaryHeap, HashMap};

/// A child-ordering hook for [`compile_with`]: given a pattern node index
/// and its child pattern-edge indices (in syntactic order), returns the
/// order in which the compiler should emit and intersect the child
/// reductions. Must return a permutation of its input; anything else falls
/// back to syntactic order. Reordering is always answer- and
/// counter-neutral — `Intersect` charges no runtime counters and each child
/// block's ops are self-contained — but it changes which intermediate set
/// the next `Intersect` narrows first, which the cost-based optimizer uses
/// to keep intermediate registers small.
pub type ChildOrder<'o> = &'o dyn Fn(usize, &[usize]) -> Vec<usize>;

/// Lexicographic plan cost: (incomplete runs, value joins, crossings,
/// structural joins). The leading component penalizes structural runs whose
/// anchor placement is not statically guaranteed to hold the full logical
/// extent — for a Down run its start (top) placement, for an Up run the
/// placement it terminates at (every realized pair hangs *below* an
/// occurrence of the run's top placement, so topped-up orphans at the
/// bottom cannot be ascended from). Such runs are legal on un-normalized
/// schemas but able to miss pairs, so the compiler avoids them whenever
/// any complete realization exists.
type Cost = (u64, u64, u64, u64);

const INF: Cost = (u64::MAX, u64::MAX, u64::MAX, u64::MAX);
const ZERO: Cost = (0, 0, 0, 0);

fn add(a: Cost, b: Cost) -> Cost {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3)
}

/// One transition of a realized pattern-edge chain, oriented child→parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Structural move along an ER edge to the placement.
    Struct { edge: EdgeId, to: PlacementId, down: bool },
    /// Color crossing / placement hop to the placement.
    Cross { to: PlacementId },
    /// Value join across the edge, landing at the placement.
    Value { edge: EdgeId, to: PlacementId },
    /// Parent-child link join across the edge, landing at the placement.
    Link { edge: EdgeId, to: PlacementId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Mode {
    Fresh,
    Down,
    Up,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    layer: u16,
    placement: PlacementId,
    mode: Mode,
}

/// Compile `pattern` against `schema` in syntactic child order.
pub fn compile(graph: &ErGraph, schema: &MctSchema, pattern: &Pattern) -> Result<Plan, QueryError> {
    compile_with(graph, schema, pattern, None)
}

/// Compile `pattern` against `schema`, letting `order` (when given) pick
/// the emission order of each pattern node's child reductions. The
/// placement DP, kernel selection, charge siting, and static metrics are
/// identical either way — only the sequence of per-child op blocks (and
/// hence register numbering) moves.
pub fn compile_with(
    graph: &ErGraph,
    schema: &MctSchema,
    pattern: &Pattern,
    order: Option<ChildOrder<'_>>,
) -> Result<Plan, QueryError> {
    let _span = colorist_trace::span("compile", format!("compile:{}", pattern.name));
    let full = completeness(graph, schema);
    Compiler { graph, schema, full, order }.run(pattern)
}

struct Compiler<'a> {
    graph: &'a ErGraph,
    schema: &'a MctSchema,
    /// Per placement: is its occurrence set statically the full extent of
    /// its node type?
    full: Vec<bool>,
    /// Optional child-ordering hook (the cost-based optimizer's handle).
    order: Option<ChildOrder<'a>>,
}

/// Static completeness analysis. A placement holds the full extent when:
///
/// * it is the *only* placement of its node in its color — the
///   materializer's heterogeneous-instance pass then tops it up (§4.2); or
/// * it is a root placement (roots materialize whole extents); or
/// * it is a relationship under one of its participants whose placement is
///   full (every relationship instance has that participant); or
/// * it is a participant under its relationship with **total**
///   participation, below a full placement (every participant instance
///   appears in some relationship instance).
pub(crate) fn completeness(graph: &ErGraph, schema: &MctSchema) -> Vec<bool> {
    let n = schema.placements().len();
    let mut full = vec![false; n];
    // placements are created parents-first, so one forward pass suffices
    for i in 0..n {
        let p = PlacementId(i as u32);
        let pl = schema.placement(p);
        full[i] = match pl.parent {
            None => true,
            Some((pp, e)) => {
                let edge = graph.edge(e);
                let parent_full = full[pp.idx()];
                if edge.rel == pl.node {
                    parent_full
                } else {
                    parent_full && edge.participation == colorist_er::Participation::Total
                }
            }
        };
        if !full[i] && schema.placements_of_in_color(pl.node, pl.color).len() == 1 {
            full[i] = true;
        }
    }
    full
}

/// Per pattern edge, per parent placement: the chain's child-side start
/// placement and the steps (child → parent).
type StepsTo = HashMap<PlacementId, (PlacementId, Vec<Step>)>;

impl<'a> Compiler<'a> {
    fn run(&self, pattern: &Pattern) -> Result<Plan, QueryError> {
        let n = pattern.nodes.len();
        // rooted tree structure over pattern nodes
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n]; // edge indexes
        {
            let mut seen = vec![false; n];
            let mut stack = vec![pattern.output];
            seen[pattern.output] = true;
            while let Some(v) = stack.pop() {
                for (ei, e) in pattern.edges.iter().enumerate() {
                    for (a, b) in [(e.from, e.to), (e.to, e.from)] {
                        if a == v && !seen[b] {
                            seen[b] = true;
                            children[v].push(ei);
                            stack.push(b);
                        }
                    }
                }
            }
        }

        // post-order DP with per-edge multi-source Dijkstra
        let order = post_order(pattern, &children);
        let mut node_costs: Vec<HashMap<PlacementId, Cost>> = vec![HashMap::new(); n];
        let mut edge_steps: Vec<Option<StepsTo>> = vec![None; pattern.edges.len()];
        for &v in &order {
            let v_node = pattern.nodes[v].node;
            let mut cost_v: HashMap<PlacementId, Cost> =
                self.schema.placements_of(v_node).iter().map(|&p| (p, ZERO)).collect();
            for &ei in &children[v] {
                let e = &pattern.edges[ei];
                let child = if e.from == v { e.to } else { e.from };
                // orient the path child → parent
                let (nodes, path): (Vec<NodeId>, Vec<EdgeId>) = if e.to == v {
                    (e.nodes.clone(), e.path.clone())
                } else {
                    (
                        e.nodes.iter().rev().copied().collect(),
                        e.path.iter().rev().copied().collect(),
                    )
                };
                let (dist, steps) = self.multi_dijkstra(&nodes, &path, &node_costs[child])?;
                cost_v.retain(|p, c| match dist.get(p) {
                    Some(&d) => {
                        *c = add(*c, d);
                        true
                    }
                    None => false,
                });
                edge_steps[ei] = Some(steps);
            }
            if cost_v.is_empty() {
                let name = &self.graph.node(v_node).name;
                return Err(QueryError::Unreachable { from: name.clone(), to: name.clone() });
            }
            node_costs[v] = cost_v;
        }

        // pick the root placement
        let root = pattern.output;
        let (&root_placement, _) = node_costs[root]
            .iter()
            .min_by_key(|&(&p, &c)| (c, p))
            .ok_or_else(|| QueryError::Internal {
                diag: "P009 root pattern node has no feasible placement after cost propagation"
                    .into(),
            })?;

        // emit bottom-up, walking the chosen chains down the tree
        let mut ops: Vec<Op> = Vec::new();
        let mut regs = 0usize;
        let mut charges: Vec<Charge> = Vec::new();
        let mut out = self.emit_node(
            pattern,
            &children,
            &edge_steps,
            root,
            root_placement,
            &mut ops,
            &mut regs,
            &mut charges,
        )?;

        if pattern.distinct && self.schema_has_copies() {
            let r = alloc(&mut regs);
            ops.push(Op::Distinct { dst: r, src: out });
            out = r;
        }
        if let Some(attr) = pattern.group_by {
            let r = alloc(&mut regs);
            ops.push(Op::GroupBy { dst: r, src: out, attr });
            out = r;
        }

        let plan =
            Plan::new(pattern.name.clone(), self.schema.strategy.clone(), ops, out, regs, charges);
        debug_assert!(
            {
                let diags = crate::verify::verify_plan(self.graph, self.schema, &plan);
                if !diags.is_empty() {
                    panic!(
                        "compiler emitted a plan the static verifier rejects:\n{}\n{plan}",
                        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
                    );
                }
                true
            },
            "plan verification"
        );
        Ok(plan)
    }

    /// Emit the scan + child reductions of pattern node `v` at placement
    /// `pv`; returns the register with `v`'s final candidate set.
    #[allow(clippy::too_many_arguments)]
    fn emit_node(
        &self,
        pattern: &Pattern,
        children: &[Vec<usize>],
        edge_steps: &[Option<StepsTo>],
        v: usize,
        pv: PlacementId,
        ops: &mut Vec<Op>,
        regs: &mut usize,
        charges: &mut Vec<Charge>,
    ) -> Result<Reg, QueryError> {
        let color = self.schema.placement(pv).color;
        let mut reg = alloc(regs);
        ops.push(Op::Scan {
            dst: reg,
            color,
            node: pattern.nodes[v].node,
            pred: pattern.nodes[v].predicate.clone(),
        });
        let child_order = self.child_order(v, &children[v]);
        for &ei in &child_order {
            let e = &pattern.edges[ei];
            let child = if e.from == v { e.to } else { e.from };
            let (child_placement, steps) =
                edge_steps[ei].as_ref().and_then(|m| m.get(&pv)).cloned().ok_or_else(|| {
                    QueryError::Internal {
                        diag: format!(
                            "P009 no reconstructed chain for pattern edge {ei} at placement {pv:?}"
                        ),
                    }
                })?;
            let child_reg = self.emit_node(
                pattern,
                children,
                edge_steps,
                child,
                child_placement,
                ops,
                regs,
                charges,
            )?;
            let reduced =
                self.emit_chain(ops, regs, charges, child_reg, child_placement, &steps)?;
            let r = alloc(regs);
            ops.push(Op::Intersect { dst: r, a: reg, b: reduced });
            reg = r;
        }
        Ok(reg)
    }

    /// Emit the op chain for one pattern edge (steps oriented child →
    /// parent); returns the register holding the parent-side occurrences.
    /// `start` is the chain's child-side start placement; tracking the
    /// current placement across steps lets each structural run record its
    /// completeness [`Charge`] at the anchor the cost model charged — a
    /// Down run at its start (top) placement, an Up run at the placement it
    /// terminates at.
    fn emit_chain(
        &self,
        ops: &mut Vec<Op>,
        regs: &mut usize,
        charges: &mut Vec<Charge>,
        child_reg: Reg,
        start: PlacementId,
        steps: &[Step],
    ) -> Result<Reg, QueryError> {
        let mut reg = child_reg;
        let mut cur = start;
        let mut i = 0usize;
        while i < steps.len() {
            match steps[i] {
                Step::Cross { to } => {
                    let r = alloc(regs);
                    ops.push(Op::Cross {
                        dst: r,
                        src: reg,
                        color: self.schema.placement(to).color,
                        node: self.schema.placement(to).node,
                    });
                    reg = r;
                    cur = to;
                    i += 1;
                }
                Step::Value { edge, to } => {
                    // the plan would need a value join across this edge:
                    // reject now, at compile time, if the schema does not
                    // idref-encode it (the executor only double-checks)
                    if self.schema.idref_for(edge).is_none() {
                        let ed = self.graph.edge(edge);
                        return Err(QueryError::NotIdrefEncoded {
                            edge: format!(
                                "{}[{}]",
                                self.graph.node(ed.rel).name,
                                self.graph.node(ed.participant).name
                            ),
                        });
                    }
                    let to_node = self.schema.placement(to).node;
                    let src_is_rel = self.graph.edge(edge).participant == to_node;
                    let r = alloc(regs);
                    ops.push(Op::ValueSemi {
                        dst: r,
                        src: reg,
                        edge,
                        src_is_rel,
                        enter: Some(self.schema.placement(to).color),
                    });
                    reg = r;
                    cur = to;
                    i += 1;
                }
                Step::Link { edge, to } => {
                    let to_node = self.schema.placement(to).node;
                    let src_is_rel = self.graph.edge(edge).participant == to_node;
                    let r = alloc(regs);
                    ops.push(Op::LinkSemi {
                        dst: r,
                        src: reg,
                        edge,
                        src_is_rel,
                        enter: Some(self.schema.placement(to).color),
                    });
                    reg = r;
                    cur = to;
                    i += 1;
                }
                Step::Struct { down, .. } => {
                    // maximal same-direction run -> one path-exact join
                    let mut run = Vec::new();
                    let mut last_to = None;
                    let mut j = i;
                    while j < steps.len() {
                        match steps[j] {
                            Step::Struct { edge, to, down: d } if d == down => {
                                run.push(edge);
                                last_to = Some(to);
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    let to = last_to.ok_or_else(|| QueryError::Internal {
                        diag: "P009 empty structural run in reconstructed chain".into(),
                    })?;
                    // `via` is ancestor-side-first: a Down run traverses
                    // top→bottom (already in order); an Up run traverses
                    // bottom→top (reverse it).
                    let mut via = run;
                    if !down {
                        via.reverse();
                    }
                    // the run's completeness anchor: top placement — where
                    // the cost model levied its `incomplete`/`up_exit`
                    // charge (Down: the start; Up: the termination).
                    let anchor = if down { cur } else { to };
                    let r = alloc(regs);
                    charges.push(Charge { op: ops.len(), at: anchor });
                    ops.push(Op::StructSemi {
                        dst: r,
                        src: reg,
                        color: self.schema.placement(to).color,
                        node: self.schema.placement(to).node,
                        via,
                        dir: if down { VDir::Down } else { VDir::Up },
                    });
                    reg = r;
                    cur = to;
                    i = j;
                }
            }
        }
        Ok(reg)
    }

    /// The emission order of `v`'s child edges: the hook's answer when it
    /// is a permutation of the syntactic list, else the syntactic list.
    fn child_order(&self, v: usize, edges: &[usize]) -> Vec<usize> {
        if let Some(f) = self.order {
            let picked = f(v, edges);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            let mut syntactic = edges.to_vec();
            syntactic.sort_unstable();
            if sorted == syntactic {
                return picked;
            }
        }
        edges.to_vec()
    }

    fn schema_has_copies(&self) -> bool {
        self.graph.node_ids().any(|n| {
            self.schema.colors().any(|c| self.schema.placements_of_in_color(n, c).len() > 1)
        })
    }

    /// Multi-source Dijkstra over the layered placement graph of one
    /// pattern edge, oriented child (layer 0) → parent (last layer).
    /// Sources: every child placement, seeded with its accumulated cost.
    /// Returns the best cost per parent placement plus the reconstructed
    /// chain and its child-side start.
    fn multi_dijkstra(
        &self,
        nodes: &[NodeId],
        path: &[EdgeId],
        sources: &HashMap<PlacementId, Cost>,
    ) -> Result<(HashMap<PlacementId, Cost>, StepsTo), QueryError> {
        let mut dist: HashMap<State, Cost> = HashMap::new();
        let mut preds: HashMap<State, (State, Step)> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(Cost, State)>> = BinaryHeap::new();
        for (&p, &c) in sources {
            let st = State { layer: 0, placement: p, mode: Mode::Fresh };
            dist.insert(st, c);
            heap.push(std::cmp::Reverse((c, st)));
        }

        while let Some(std::cmp::Reverse((c, st))) = heap.pop() {
            if dist.get(&st).is_some_and(|&d| d < c) {
                continue;
            }
            let relax = |dist: &mut HashMap<State, Cost>,
                         preds: &mut HashMap<State, (State, Step)>,
                         heap: &mut BinaryHeap<std::cmp::Reverse<(Cost, State)>>,
                         next: State,
                         nc: Cost,
                         step: Step| {
                if nc < *dist.get(&next).unwrap_or(&INF) {
                    dist.insert(next, nc);
                    preds.insert(next, (st, step));
                    heap.push(std::cmp::Reverse((nc, next)));
                }
            };

            // An Up run discovers all pairs only when the placement it ENDS
            // at holds the full extent: every realized pair hangs below an
            // occurrence of the run's top placement, so topped-up orphans at
            // the bottom (present but parentless, §4.2) cannot be ascended
            // from. The charge is deferred to whichever transition leaves
            // Up mode (and to the collapse below, for runs ending the
            // chain), because the terminating placement is unknown mid-run.
            let up_exit = u64::from(st.mode == Mode::Up && !self.full[st.placement.idx()]);

            let layer = st.layer as usize;
            // crossings within the layer
            for &q in self.schema.placements_of(nodes[layer]) {
                if q != st.placement {
                    let next = State { layer: st.layer, placement: q, mode: Mode::Fresh };
                    relax(
                        &mut dist,
                        &mut preds,
                        &mut heap,
                        next,
                        add(c, (up_exit, 0, 1, 0)),
                        Step::Cross { to: q },
                    );
                }
            }
            if layer == path.len() {
                continue;
            }
            let e = path[layer];
            // structural realizations
            for &(_color, cp) in self.schema.edge_realizations(e) {
                let (pp, _) =
                    self.schema.placement(cp).parent.ok_or_else(|| QueryError::Internal {
                        diag: format!("S001 edge realization {cp:?} is a root placement"),
                    })?;
                if pp == st.placement && self.schema.placement(cp).node == nodes[layer + 1] {
                    let run_start = st.mode != Mode::Down;
                    let sj = u64::from(run_start);
                    // a Down run discovers all pairs only when its top
                    // placement holds the full extent; a preceding Up run
                    // terminates here and is charged its own deferred check
                    let incomplete = u64::from(run_start && !self.full[st.placement.idx()]);
                    let next = State { layer: st.layer + 1, placement: cp, mode: Mode::Down };
                    relax(
                        &mut dist,
                        &mut preds,
                        &mut heap,
                        next,
                        add(c, (incomplete + up_exit, 0, 0, sj)),
                        Step::Struct { edge: e, to: cp, down: true },
                    );
                }
                if cp == st.placement && self.schema.placement(pp).node == nodes[layer + 1] {
                    let run_start = st.mode != Mode::Up;
                    let sj = u64::from(run_start);
                    // extending an Up run costs no completeness here — the
                    // deferred `up_exit` charge lands where the run ends
                    let next = State { layer: st.layer + 1, placement: pp, mode: Mode::Up };
                    relax(
                        &mut dist,
                        &mut preds,
                        &mut heap,
                        next,
                        add(c, (0, 0, 0, sj)),
                        Step::Struct { edge: e, to: pp, down: false },
                    );
                }
            }
            // idref value join
            if self.schema.idref_for(e).is_some() {
                for &q in self.schema.placements_of(nodes[layer + 1]) {
                    let next = State { layer: st.layer + 1, placement: q, mode: Mode::Fresh };
                    relax(
                        &mut dist,
                        &mut preds,
                        &mut heap,
                        next,
                        add(c, (up_exit, 1, 0, 0)),
                        Step::Value { edge: e, to: q },
                    );
                }
            }
            // parent-child link join: always available, always exact. Its
            // cost sits above a value join AND above a crossing+step, so it
            // is chosen only when every other realization is incomplete —
            // the paper's schemas never need it on their own terms.
            for &q in self.schema.placements_of(nodes[layer + 1]) {
                let next = State { layer: st.layer + 1, placement: q, mode: Mode::Fresh };
                relax(
                    &mut dist,
                    &mut preds,
                    &mut heap,
                    next,
                    add(c, (up_exit, 1, 1, 2)),
                    Step::Link { edge: e, to: q },
                );
            }
        }

        // collapse to per-parent-placement results
        let last = (nodes.len() - 1) as u16;
        let mut out: HashMap<PlacementId, Cost> = HashMap::new();
        let mut steps: StepsTo = HashMap::new();
        let last_node = *nodes.last().ok_or_else(|| QueryError::Internal {
            diag: "P009 pattern edge with an empty node path".into(),
        })?;
        for &t in self.schema.placements_of(last_node) {
            let mut best: Option<(Cost, State)> = None;
            for mode in [Mode::Fresh, Mode::Down, Mode::Up] {
                let st = State { layer: last, placement: t, mode };
                if let Some(&c) = dist.get(&st) {
                    // deferred Up-run termination charge (see `up_exit`)
                    let c = if mode == Mode::Up && !self.full[t.idx()] {
                        add(c, (1, 0, 0, 0))
                    } else {
                        c
                    };
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, st));
                    }
                }
            }
            if let Some((c, st)) = best {
                let (start, chain) = reconstruct(&preds, st);
                out.insert(t, c);
                steps.insert(t, (start, chain));
            }
        }
        Ok((out, steps))
    }
}

fn alloc(regs: &mut usize) -> Reg {
    let r = *regs;
    *regs += 1;
    r
}

fn post_order(pattern: &Pattern, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::new();
    let mut stack = vec![(pattern.output, false)];
    while let Some((v, processed)) = stack.pop() {
        if processed {
            order.push(v);
            continue;
        }
        stack.push((v, true));
        for &ei in &children[v] {
            let e = &pattern.edges[ei];
            let child = if e.from == v { e.to } else { e.from };
            stack.push((child, false));
        }
    }
    order
}

/// Walk predecessors back to the multi-source origin; returns the source
/// placement (layer 0) and the steps in forward (child → parent) order.
fn reconstruct(preds: &HashMap<State, (State, Step)>, mut st: State) -> (PlacementId, Vec<Step>) {
    let mut steps = Vec::new();
    while let Some(&(prev, step)) = preds.get(&st) {
        steps.push(step);
        st = prev;
    }
    steps.reverse();
    (st.placement, steps)
}

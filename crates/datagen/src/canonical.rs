//! The canonical ER instance: one seeded, constraint-respecting population
//! of a diagram, independent of any schema.

use crate::profile::ScaleProfile;
use crate::rng::Rng;
use colorist_er::{Cardinality, Domain, EdgeId, ErGraph, NodeId, Participation};
use colorist_store::Value;

/// A canonical instance of an ER diagram.
///
/// * `attrs[node][ordinal]` — the attribute values of one logical instance
///   (aligned with the node's attribute declaration);
/// * `links[edge][rel_ordinal]` — the participant ordinal each relationship
///   instance is linked to via that edge, plus the reverse index
///   `rev[edge][participant_ordinal]` listing relationship ordinals.
#[derive(Debug, Clone)]
pub struct CanonicalInstance {
    counts: Vec<u32>,
    attrs: Vec<Vec<Vec<Value>>>,
    links: Vec<Vec<u32>>,
    rev: Vec<Vec<Vec<u32>>>,
}

impl CanonicalInstance {
    /// Number of logical instances of a node type.
    pub fn count(&self, n: NodeId) -> u32 {
        self.counts[n.idx()]
    }

    /// Attribute values of instance `(n, ordinal)`.
    pub fn attrs(&self, n: NodeId, ordinal: u32) -> &[Value] {
        &self.attrs[n.idx()][ordinal as usize]
    }

    /// The participant ordinal that relationship instance `rel_ordinal` is
    /// linked to via `edge`.
    pub fn link(&self, edge: EdgeId, rel_ordinal: u32) -> u32 {
        self.links[edge.idx()][rel_ordinal as usize]
    }

    /// Relationship ordinals linked to participant instance
    /// `participant_ordinal` via `edge`.
    pub fn linked_rels(&self, edge: EdgeId, participant_ordinal: u32) -> &[u32] {
        &self.rev[edge.idx()][participant_ordinal as usize]
    }

    /// Total logical instances.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }
}

/// Generate a canonical instance for `graph` at `profile` scale with a
/// deterministic `seed`.
pub fn generate(graph: &ErGraph, profile: &ScaleProfile, seed: u64) -> CanonicalInstance {
    let mut rng = Rng::new(seed);
    let counts: Vec<u32> = profile.counts().to_vec();

    // Attribute values.
    let attrs: Vec<Vec<Vec<Value>>> = graph
        .node_ids()
        .map(|n| {
            let node = graph.node(n);
            (0..counts[n.idx()])
                .map(|ordinal| {
                    node.attributes
                        .iter()
                        .map(|a| attr_value(&mut rng, &node.name, a, ordinal, counts[n.idx()]))
                        .collect()
                })
                .collect()
        })
        .collect();

    // Relationship links, per edge.
    let mut links: Vec<Vec<u32>> = vec![Vec::new(); graph.edge_count()];
    for r in graph.relationship_nodes() {
        let n_rel = counts[r.idx()];
        let incident: Vec<EdgeId> = {
            let mut v: Vec<EdgeId> = graph
                .incident(r)
                .iter()
                .filter(|&&(e, _)| graph.edge(e).rel == r)
                .map(|&(e, _)| e)
                .collect();
            v.sort_by_key(|&e| graph.edge(e).endpoint);
            v
        };
        for e in incident {
            let edge = graph.edge(e);
            let n_part = counts[edge.participant.idx()];
            links[e.idx()] = match edge.cardinality {
                Cardinality::One => {
                    // injective: a random subset of participants, each once.
                    // Total participation wants full coverage; the profile
                    // arranges n_rel == n_part in that case.
                    debug_assert!(edge.participation == Participation::Partial || n_rel <= n_part);
                    let mut ordinals: Vec<u32> = (0..n_part).collect();
                    rng.shuffle(&mut ordinals);
                    ordinals.truncate(n_rel as usize);
                    assert!(
                        n_rel <= n_part,
                        "profile violates cardinality: {} rels for {} participants",
                        n_rel,
                        n_part
                    );
                    ordinals
                }
                Cardinality::Many => {
                    // skewed choice (squared uniform) so some participants
                    // are hot, like real workloads
                    let mut chosen: Vec<u32> = (0..n_rel)
                        .map(|_| {
                            let u: f64 = rng.f64();
                            ((u * u * n_part as f64) as u32).min(n_part - 1)
                        })
                        .collect();
                    if edge.participation == Participation::Total {
                        // every participant instance must appear at least
                        // once — the schemas' completeness analysis relies
                        // on it. Overwrite a prefix with a shuffled cover,
                        // then re-shuffle so coverage is not correlated
                        // with relationship ordinals (best effort when the
                        // profile could not afford n_rel >= n_part).
                        let mut cover: Vec<u32> = (0..n_part).collect();
                        rng.shuffle(&mut cover);
                        cover.truncate(n_rel as usize);
                        chosen[..cover.len()].copy_from_slice(&cover);
                        rng.shuffle(&mut chosen);
                    }
                    chosen
                }
            };
        }
    }

    // Reverse index.
    let mut rev: Vec<Vec<Vec<u32>>> = graph
        .edge_ids()
        .map(|e| vec![Vec::new(); counts[graph.edge(e).participant.idx()] as usize])
        .collect();
    for e in graph.edge_ids() {
        for (rel_ordinal, &p) in links[e.idx()].iter().enumerate() {
            rev[e.idx()][p as usize].push(rel_ordinal as u32);
        }
    }

    CanonicalInstance { counts, attrs, links, rev }
}

/// Deterministic-ish attribute values: keys are ordinals; text draws from a
/// bounded vocabulary (`attr_j`) so predicates have realistic selectivity;
/// numbers are uniform; dates span 2001–2004.
fn attr_value(
    rng: &mut Rng,
    node_name: &str,
    attr: &colorist_er::Attribute,
    ordinal: u32,
    extent: u32,
) -> Value {
    if attr.is_key {
        return Value::Int(ordinal as i64);
    }
    match attr.domain {
        Domain::Integer => Value::Int(rng.range_i64(0, 1000)),
        Domain::Float => Value::Float((rng.range_i64(0, 1_000_000) as f64) / 100.0),
        Domain::Date => {
            let y = 2001 + rng.range_i64(0, 4);
            let m = rng.range_i64(1, 13);
            let d = rng.range_i64(1, 29);
            Value::Text(format!("{y:04}-{m:02}-{d:02}"))
        }
        Domain::Text => {
            let vocab = (extent / 8).clamp(2, 64);
            let j = rng.range_u32(0, vocab);
            Value::Text(format!("{}_{}_{j}", node_name, attr.name))
        }
        _ => unreachable!("simplified diagrams have atomic attributes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    fn tpcw_instance(customers: u32, seed: u64) -> (ErGraph, CanonicalInstance) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, customers);
        let i = generate(&g, &p, seed);
        (g, i)
    }

    #[test]
    fn cardinality_constraints_hold() {
        let (g, inst) = tpcw_instance(200, 42);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            if edge.cardinality == Cardinality::One {
                // injective: no participant linked twice
                let mut seen = std::collections::HashSet::new();
                for ro in 0..inst.count(edge.rel) {
                    assert!(seen.insert(inst.link(e, ro)), "edge {e} not injective");
                }
            }
            // links in range
            for ro in 0..inst.count(edge.rel) {
                assert!(inst.link(e, ro) < inst.count(edge.participant));
            }
        }
    }

    #[test]
    fn total_participation_covers_every_instance() {
        let (g, inst) = tpcw_instance(150, 7);
        // every order participates in make (total)
        let make = g.node_by_name("make").unwrap();
        let order = g.node_by_name("order").unwrap();
        let e = g
            .edge_ids()
            .find(|&e| g.edge(e).rel == make && g.edge(e).participant == order)
            .unwrap();
        let mut covered = vec![false; inst.count(order) as usize];
        for ro in 0..inst.count(make) {
            covered[inst.link(e, ro) as usize] = true;
        }
        assert!(covered.iter().all(|&c| c), "total participation must cover all orders");
    }

    #[test]
    fn reverse_index_is_consistent() {
        let (g, inst) = tpcw_instance(100, 3);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            for po in 0..inst.count(edge.participant) {
                for &ro in inst.linked_rels(e, po) {
                    assert_eq!(inst.link(e, ro), po);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_seed() {
        let (_, a) = tpcw_instance(64, 5);
        let (_, b) = tpcw_instance(64, 5);
        let (g, c) = tpcw_instance(64, 6);
        let cust = g.node_by_name("customer").unwrap();
        assert_eq!(a.attrs(cust, 3), b.attrs(cust, 3));
        // different seed differs somewhere in the first few customers
        let differs = (0..10).any(|i| a.attrs(cust, i) != c.attrs(cust, i));
        assert!(differs);
    }

    #[test]
    fn keys_are_ordinals_and_text_bounded() {
        let (g, inst) = tpcw_instance(100, 1);
        let item = g.node_by_name("item").unwrap();
        for o in 0..inst.count(item) {
            assert_eq!(inst.attrs(item, o)[0], Value::Int(o as i64));
        }
        // subject is a text attr with bounded vocabulary
        let idx = g.node(item).attributes.iter().position(|a| a.name == "subject").unwrap();
        let distinct: std::collections::HashSet<String> =
            (0..inst.count(item)).map(|o| inst.attrs(item, o)[idx].to_string()).collect();
        assert!(distinct.len() <= 64);
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn whole_catalog_generates() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let p = ScaleProfile::uniform(&g, 50);
            let inst = generate(&g, &p, 11);
            assert!(inst.total() > 0, "{name}");
        }
    }
}

//! Scale profiles: how many instances of each entity and relationship type
//! a canonical instance contains.

use colorist_er::{Cardinality, ErGraph, NodeId, Participation};

/// Instance counts per ER node (indexable by [`NodeId`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleProfile {
    counts: Vec<u32>,
}

impl ScaleProfile {
    /// Count for a node.
    pub fn count(&self, n: NodeId) -> u32 {
        self.counts[n.idx()]
    }

    /// All counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total logical instances.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Build from explicit per-entity counts (`(name, count)` pairs; missing
    /// entities get `default_entities`), deriving relationship counts from
    /// the cardinality/participation constraints:
    ///
    /// * an endpoint with [`Cardinality::One`] caps the relationship at that
    ///   participant's count (each participant instance joins at most once),
    ///   and [`Participation::Total`] on such an endpoint *pins* it there
    ///   (every instance joins);
    /// * otherwise (pure M:N) the relationship gets `mn_fanout ×` the larger
    ///   participant count.
    ///
    /// Higher-order relationships are handled by resolving relationship
    /// counts in dependency order (guaranteed acyclic by validation).
    pub fn with_entities(
        graph: &ErGraph,
        entities: &[(&str, u32)],
        default_entities: u32,
        mn_fanout: u32,
    ) -> Self {
        let mut counts = vec![0u32; graph.node_count()];
        for n in graph.entity_nodes() {
            let name = &graph.node(n).name;
            counts[n.idx()] = entities
                .iter()
                .find(|(en, _)| en == name)
                .map(|&(_, c)| c)
                .unwrap_or(default_entities)
                .max(1);
        }
        // resolve relationships whose participants are all resolved
        let mut todo: Vec<NodeId> = graph.relationship_nodes().collect();
        while !todo.is_empty() {
            let before = todo.len();
            todo.retain(|&r| {
                let incident = graph.incident(r);
                let participant_counts: Vec<(u32, Cardinality, Participation)> = incident
                    .iter()
                    .filter(|&&(e, _)| graph.edge(e).rel == r)
                    .map(|&(e, p)| {
                        (counts[p.idx()], graph.edge(e).cardinality, graph.edge(e).participation)
                    })
                    .collect();
                if participant_counts.iter().any(|&(c, _, _)| c == 0) {
                    return true; // dependency not resolved yet
                }
                let mut n = u32::MAX;
                let mut pinned = None;
                let mut any_one = false;
                // coverage floor: a total Many-endpoint needs at least one
                // relationship instance per participant instance
                let mut need = 0u32;
                for &(c, card, part) in &participant_counts {
                    match card {
                        Cardinality::One => {
                            any_one = true;
                            n = n.min(c);
                            if part == Participation::Total {
                                pinned = Some(match pinned {
                                    None => c,
                                    Some(p) => c.min(p),
                                });
                            }
                        }
                        Cardinality::Many => {
                            if part == Participation::Total {
                                need = need.max(c);
                            }
                        }
                    }
                }
                let max_part = participant_counts.iter().map(|&(c, _, _)| c).max().unwrap_or(1);
                counts[r.idx()] = match (pinned, any_one) {
                    // a total One-endpoint pins the count, but never above
                    // another One-endpoint's cap (injectivity wins)
                    (Some(p), _) => p.min(n).max(1),
                    // the Many-side coverage floor applies up to the
                    // injectivity cap of the One endpoints
                    (None, true) => (n * 4 / 5).max(need.min(n)).max(1),
                    (None, false) => max_part.saturating_mul(mn_fanout).max(need).max(1),
                };
                false
            });
            assert!(todo.len() < before, "unresolvable relationship counts (cycle?)");
        }
        ScaleProfile { counts }
    }

    /// Uniform profile: every entity gets `entity_base` instances, M:N
    /// relationships fan out 3×.
    pub fn uniform(graph: &ErGraph, entity_base: u32) -> Self {
        Self::with_entities(graph, &[], entity_base, 3)
    }

    /// A TPC-W-shaped profile parameterized by the number of customers:
    /// 92 countries, 1 address per customer plus extras, ~0.9 orders per
    /// customer, ~3 order lines per order, a fixed-ish item pool, items/4
    /// authors. Falls back to [`ScaleProfile::uniform`] ratios for node
    /// names it does not recognize, so it can be applied to any diagram.
    pub fn tpcw(graph: &ErGraph, customers: u32) -> Self {
        let c = customers.max(4);
        let items = (c / 2).clamp(16, 10_000);
        let entities = [
            ("customer", c),
            ("address", c + c / 4),
            ("country", 92.min(c)),
            ("order", c * 9 / 10),
            ("item", items),
            ("author", (items / 4).max(1)),
            ("credit_card_transaction", c * 9 / 10),
        ];
        Self::with_entities(graph, &entities, c, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{catalog, ErGraph};

    #[test]
    fn tpcw_profile_respects_constraints() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, 1000);
        let n = |s: &str| p.count(g.node_by_name(s).unwrap());
        assert_eq!(n("customer"), 1000);
        assert_eq!(n("country"), 92);
        // make pinned to orders (total participation of order)
        assert_eq!(n("make"), n("order"));
        // every customer has an address (total on has/customer side)
        assert_eq!(n("has"), n("customer"));
        // order_line is m:n: fanout times max participant
        assert_eq!(n("order_line"), n("order") * 3);
        // 1:1 associate is bounded by both sides
        assert!(n("associate") <= n("order"));
        assert!(p.total() > 6000);
    }

    #[test]
    fn uniform_profile_covers_whole_catalog() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let p = ScaleProfile::uniform(&g, 100);
            for n in g.node_ids() {
                assert!(p.count(n) >= 1, "{name}: {}", g.node(n).name);
            }
        }
    }

    #[test]
    fn higher_order_relationships_resolve() {
        let mut d = colorist_er::ErDiagram::new("h");
        d.add_entity("a", vec![colorist_er::Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![colorist_er::Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        // meta treats r as an entity
        d.add_rel_1m("meta", "b", "r").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let p = ScaleProfile::uniform(&g, 50);
        assert!(p.count(g.node_by_name("meta").unwrap()) >= 1);
    }
}

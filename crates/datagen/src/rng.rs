//! In-tree deterministic PRNG: xoshiro256++ seeded via splitmix64.
//!
//! The build environment is offline, so the generator lives here instead of
//! pulling the `rand` crate. Determinism is part of the repository's
//! correctness story — the same `(profile, seed)` must produce the same
//! canonical instance on every machine and in every thread — so the
//! algorithm is fixed (Blackman & Vigna's xoshiro256++ 1.0, public domain)
//! and covered by golden-value tests below. Not cryptographic.

/// Deterministic 64-bit generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of splitmix64 — used to expand a 64-bit seed into the 256-bit
/// xoshiro state (the seeding procedure its authors recommend).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed deterministically from a single `u64`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive. Unbiased via Lemire's
    /// widening-multiply rejection method.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)` over `i64` (half-open, like `random_range`).
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform in `[lo, hi)` over `u32`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values for xoshiro256++ seeded from splitmix64(0): pins the
    /// algorithm so canonical instances stay byte-stable across releases.
    #[test]
    fn golden_sequence() {
        // splitmix64 reference outputs for state 0
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
        // xoshiro output is a pure function of that state
        let mut a = Rng::new(0);
        let mut b = Rng::new(0);
        let seq: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(seq, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        // distinct seeds diverge immediately
        let mut c = Rng::new(1);
        assert_ne!(seq[0], c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..200 {
            let x = r.range_i64(-5, 5);
            assert!((-5..5).contains(&x));
            let y = r.range_u32(10, 12);
            assert!((10..12).contains(&y));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

//! Materialize one canonical instance into a stored database under a
//! schema.
//!
//! Per color, the schema's placement forest is instantiated top-down:
//!
//! * a **root placement** materializes the full extent of its node type;
//! * a child placement via an ER edge materializes, under each parent
//!   occurrence, the instances linked to it: all relationship instances
//!   linked to a participant parent, or the single participant instance of
//!   a relationship parent;
//! * the **first** occurrence of a logical instance within a color binds
//!   its canonical element; any further occurrence (possible only in
//!   non-node-normalized schemas, or under a root that repeats an extent
//!   already placed elsewhere in the color) stores a physical *copy* —
//!   this is exactly where DEEP's and UNDR's storage blow-up comes from.
//!   One refinement: an occurrence at a *childless* placement (a cycle-cut
//!   leaf of DEEP/UNDR) never binds the canonical while the node also has
//!   child-bearing placements in the color — otherwise an instance first
//!   reached through a leaf would never expand its own subtree anywhere,
//!   and parent-child pairs would silently go unmaterialized.
//!
//! Elements of relationship types carry their idref values (the implicit
//! ids of the participants on value-encoded edges) appended after the
//! declared attributes, which is what value joins probe.

use crate::canonical::CanonicalInstance;
use colorist_er::ErGraph;
use colorist_mct::{MctSchema, PlacementId};
use colorist_store::{Database, DatabaseBuilder, ElementId, OccId};
use std::collections::HashSet;

/// Materialize `instance` under `schema`.
pub fn materialize(graph: &ErGraph, schema: &MctSchema, instance: &CanonicalInstance) -> Database {
    let mut span = colorist_trace::span("materialize", "materialize");
    let mut b = DatabaseBuilder::new(schema.clone(), graph.node_count());
    b.set_links(
        graph
            .edge_ids()
            .map(|e| {
                (0..instance.count(graph.edge(e).rel)).map(|ro| instance.link(e, ro)).collect()
            })
            .collect(),
    );

    // 1. canonical elements, with idref values appended for relationship
    //    elements.
    let mut canonical: Vec<Vec<ElementId>> = vec![Vec::new(); graph.node_count()];
    for n in graph.node_ids() {
        let idref_edges: Vec<_> = schema
            .idrefs()
            .iter()
            .filter(|l| graph.edge(l.edge).rel == n)
            .map(|l| l.edge)
            .collect();
        for ordinal in 0..instance.count(n) {
            let mut attrs = instance.attrs(n, ordinal).to_vec();
            for &e in &idref_edges {
                attrs.push(colorist_store::Value::Int(instance.link(e, ordinal) as i64));
            }
            canonical[n.idx()].push(b.add_canonical(n, attrs));
        }
    }

    // 2. per color, instantiate the forest.
    for color in schema.colors() {
        // placements allowed to bind canonicals: child-bearing ones, or any
        // when the node has no child-bearing placement in this color
        let mut bindable: HashSet<PlacementId> = HashSet::new();
        for n in graph.node_ids() {
            let of_node = schema.placements_of_in_color(n, color);
            let childful: Vec<PlacementId> =
                of_node.iter().copied().filter(|&p| !schema.children(p).is_empty()).collect();
            if childful.is_empty() {
                bindable.extend(of_node);
            } else {
                bindable.extend(childful);
            }
        }
        let mut bound: HashSet<(u32, u32)> = HashSet::new(); // (node, ordinal) with canonical bound
        for &root in schema.roots(color) {
            let node = schema.placement(root).node;
            for ordinal in 0..instance.count(node) {
                instantiate(
                    graph, schema, instance, &mut b, &canonical, &bindable, &mut bound, color,
                    root, ordinal, None,
                );
            }
        }
        // 3. heterogeneous-instance pass (§4.2): logical instances that no
        //    parent reached in this color (partial participation — e.g.
        //    items no author ever wrote) still belong to the color, as
        //    extra parentless roots at their first bindable placement.
        let placements_preorder: Vec<PlacementId> = {
            let mut v = Vec::new();
            for &root in schema.roots(color) {
                v.extend(schema.subtree(root));
            }
            v
        };
        for p in placements_preorder {
            if !bindable.contains(&p) {
                continue;
            }
            let node = schema.placement(p).node;
            for ordinal in 0..instance.count(node) {
                if !bound.contains(&(node.0, ordinal)) {
                    instantiate(
                        graph, schema, instance, &mut b, &canonical, &bindable, &mut bound, color,
                        p, ordinal, None,
                    );
                }
            }
        }
    }

    let db = b.finish();
    if span.is_recording() {
        span.counter("elements", db.element_count() as u64);
        span.counter("colors", db.color_count() as u64);
    }
    db
}

#[allow(clippy::too_many_arguments)]
fn instantiate(
    graph: &ErGraph,
    schema: &MctSchema,
    instance: &CanonicalInstance,
    b: &mut DatabaseBuilder,
    canonical: &[Vec<ElementId>],
    bindable: &HashSet<PlacementId>,
    bound: &mut HashSet<(u32, u32)>,
    color: colorist_mct::ColorId,
    placement: PlacementId,
    ordinal: u32,
    parent: Option<OccId>,
) {
    let node = schema.placement(placement).node;
    let canon = canonical[node.idx()][ordinal as usize];
    let element = if bindable.contains(&placement) && bound.insert((node.0, ordinal)) {
        canon
    } else {
        b.add_copy(canon)
    };
    let occ = b.add_occurrence(color, element, placement, parent);

    for &child in schema.children(placement) {
        let (_, edge) = schema.placement(child).parent.expect("child has a parent");
        let e = graph.edge(edge);
        if e.participant == node {
            // parent is the participant: all relationship instances linked
            // to this ordinal via the edge
            for &rel_ordinal in instance.linked_rels(edge, ordinal) {
                instantiate(
                    graph,
                    schema,
                    instance,
                    b,
                    canonical,
                    bindable,
                    bound,
                    color,
                    child,
                    rel_ordinal,
                    Some(occ),
                );
            }
        } else {
            // parent is the relationship: exactly one participant instance
            debug_assert_eq!(e.rel, node);
            let p_ordinal = instance.link(edge, ordinal);
            instantiate(
                graph,
                schema,
                instance,
                b,
                canonical,
                bindable,
                bound,
                color,
                child,
                p_ordinal,
                Some(occ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, ScaleProfile};
    use colorist_core::{design, Strategy};
    use colorist_er::catalog;
    use colorist_mct::ColorId;
    use colorist_store::stats::stats;

    fn setup(customers: u32) -> (ErGraph, CanonicalInstance) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let p = ScaleProfile::tpcw(&g, customers);
        let i = generate(&g, &p, 42);
        (g, i)
    }

    #[test]
    fn normalized_schemas_share_element_counts() {
        // Table 1: "All node normalized MCT schemas have the same number of
        // elements, attributes and content nodes" (and equal SHALLOW/AF).
        let (g, inst) = setup(100);
        let mut counts = Vec::new();
        for s in [Strategy::Shallow, Strategy::Af, Strategy::En, Strategy::Mcmr, Strategy::Dr] {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            counts.push((s, db.element_count()));
        }
        let first = counts[0].1;
        assert_eq!(first as u64, inst.total());
        for (s, c) in counts {
            assert_eq!(c, first, "{s}");
        }
    }

    #[test]
    fn unnormalized_schemas_duplicate() {
        let (g, inst) = setup(100);
        let nn = materialize(&g, &design(&g, Strategy::Shallow).unwrap(), &inst);
        let deep = materialize(&g, &design(&g, Strategy::Deep).unwrap(), &inst);
        let undr = materialize(&g, &design(&g, Strategy::Undr).unwrap(), &inst);
        assert!(deep.element_count() > nn.element_count());
        assert!(undr.element_count() > nn.element_count());
        // Table 1 ordering: DEEP is the largest
        assert!(
            deep.element_count() >= undr.element_count(),
            "DEEP {} vs UNDR {}",
            deep.element_count(),
            undr.element_count()
        );
    }

    #[test]
    fn storage_ordering_matches_table_1() {
        // bytes: SHALLOW ≈ AF < EN < MCMR < DR < UNDR < DEEP
        let (g, inst) = setup(100);
        let size = |s: Strategy| {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            stats(&db, &g).data_bytes
        };
        let shallow = size(Strategy::Shallow);
        let af = size(Strategy::Af);
        let en = size(Strategy::En);
        let mcmr = size(Strategy::Mcmr);
        let dr = size(Strategy::Dr);
        let undr = size(Strategy::Undr);
        let deep = size(Strategy::Deep);
        assert!(en > shallow.min(af));
        assert!(mcmr >= en);
        assert!(dr > mcmr);
        assert!(undr > dr);
        assert!(deep > dr, "violating NN costs more than violating EN");
    }

    #[test]
    fn every_color_tree_is_consistent() {
        let (g, inst) = setup(60);
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            for ci in 0..db.color_count() {
                let t = db.color(ColorId(ci as u16));
                for (i, o) in t.occs().iter().enumerate() {
                    assert!(o.end > o.start, "{s}");
                    if let Some(p) = o.parent {
                        assert!(t.is_ancestor(p, colorist_store::OccId(i as u32)), "{s}");
                    }
                    // occurrence placement colors match
                    assert_eq!(db.schema.placement(o.placement).color.idx(), ci, "{s}");
                }
            }
        }
    }

    #[test]
    fn canonical_bound_once_per_color() {
        let (g, inst) = setup(50);
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            for ci in 0..db.color_count() {
                let t = db.color(ColorId(ci as u16));
                let mut canon_seen = std::collections::HashSet::new();
                for o in t.occs() {
                    let e = db.element(o.element);
                    if !e.is_copy(o.element) {
                        assert!(
                            canon_seen.insert(o.element),
                            "{s}: canonical element twice in color {ci}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn relationship_elements_carry_idref_values() {
        let (g, inst) = setup(40);
        let schema = design(&g, Strategy::Shallow).unwrap();
        let db = materialize(&g, &schema, &inst);
        // order_line carries an item idref as its last attribute
        let ol = g.node_by_name("order_line").unwrap();
        let declared = g.node(ol).attributes.len();
        let e = db.extent(ol)[0];
        assert_eq!(db.element(e).attrs.len(), declared + 1);
        let item = g.node_by_name("item").unwrap();
        let idref = db.element(e).attrs[declared].as_int().unwrap();
        assert!((idref as u32) < inst.count(item));
    }

    #[test]
    fn whole_catalog_materializes_under_all_strategies() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let p = ScaleProfile::uniform(&g, 30);
            let inst = generate(&g, &p, 9);
            for s in Strategy::ALL {
                let schema = design(&g, s).unwrap();
                let db = materialize(&g, &schema, &inst);
                assert!(db.element_count() > 0, "{name}/{s}");
            }
        }
    }
}

//! # colorist-datagen — canonical ER instances and schema materialization
//!
//! The paper generates one XML file per schema with ToXgene, "orchestrated
//! to contain equivalent content to produce equivalent query results". We
//! guarantee the equivalence by construction instead:
//!
//! 1. [`profile`] — a [`ScaleProfile`] fixes the instance count of every
//!    entity and relationship type (with a TPC-W-shaped preset);
//! 2. [`canonical`] — a seeded generator produces one **canonical
//!    instance**: attribute values for every logical instance and
//!    participant links for every relationship instance, respecting
//!    cardinality and participation constraints;
//! 3. [`mod@materialize`] — the same canonical instance is materialized into a
//!    [`colorist_store::Database`] under *each* schema; node-normalized
//!    schemas store each logical instance once, un-normalized schemas store
//!    physical copies wherever their placements demand them.
//!
//! Any query answer, expressed over logical instances, is therefore
//! identical across the seven schemas of a diagram — which the integration
//! tests verify query-by-query.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod materialize;
pub mod profile;
pub mod rng;

pub use canonical::{generate, CanonicalInstance};
pub use materialize::materialize;
pub use profile::ScaleProfile;
pub use rng::Rng;

//! The TPC-W workload: 16 queries (Q1–Q13, U1–U3).
//!
//! Q1 and Q2 are quoted verbatim in the paper; the rest are reconstructed
//! from the evaluation's observable shapes (§6.1 and Table 1): Q3–Q5 and
//! Q13 are the four queries "indifferent to choice of schema"
//! (association-free selections); Q6 returns duplicates on DEEP and needs
//! duplicate elimination; Q7 traverses the M:N `order_line` from the item
//! side; Q8 is the multi-association star; Q9 the longest chain
//! (country → … → author); Q10 the 1:1 hop; Q11 the aggregation; Q12 the
//! billing+shipping star where UNDR's un-normalized structure wins; U1 an
//! order insertion; U2 a two-customer modify; U3 a single-element address
//! modify that is catastrophic on duplicated schemas.

use crate::suite::Workload;
use colorist_er::{ErGraph, NodeId};
use colorist_query::pattern::find_edge;
use colorist_query::{
    CmpOp, InsertLink, InsertSpec, NewInstance, Partner, Pattern, PatternBuilder, UpdateAction,
    UpdateSpec,
};
use colorist_store::Value;

fn t(s: &str) -> Value {
    Value::Text(s.to_string())
}

/// Build the TPC-W workload against the TPC-W ER graph.
#[allow(clippy::vec_init_then_push)] // one commented push per paper query
pub fn workload(g: &ErGraph) -> Workload {
    let b = |name: &str| PatternBuilder::new(g, name);
    let mut reads: Vec<Pattern> = Vec::new();

    // Q1: orders placed by customers having addresses in Japan
    reads.push(
        b("Q1")
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .node("order")
            .chain(0, 1, &["in", "address", "has", "customer", "make"])
            .unwrap()
            .output(1)
            .build()
            .unwrap(),
    );
    // Q2: orders with billing addresses in Japan
    reads.push(
        b("Q2")
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .node("order")
            .chain(0, 1, &["in", "address", "billing"])
            .unwrap()
            .output(1)
            .build()
            .unwrap(),
    );
    // Q3 (schema-indifferent): cheap items
    reads.push(
        b("Q3")
            .node("item")
            .pred("cost", CmpOp::Lt, Value::Float(500.0))
            .output(0)
            .build()
            .unwrap(),
    );
    // Q4 (schema-indifferent): high-discount customers
    reads.push(
        b("Q4")
            .node("customer")
            .pred("discount", CmpOp::Gt, Value::Float(9000.0))
            .output(0)
            .build()
            .unwrap(),
    );
    // Q5 (schema-indifferent): orders by status
    reads.push(
        b("Q5").node("order").pred_eq("status", t("order_status_1")).output(0).build().unwrap(),
    );
    // Q6: distinct items ordered by one customer (duplicates on DEEP)
    reads.push(
        b("Q6")
            .node("customer")
            .pred_eq("id", Value::Int(5))
            .node("item")
            .chain(0, 1, &["make", "order", "order_line"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q7: orders containing one item
    reads.push(
        b("Q7")
            .node("item")
            .pred_eq("id", Value::Int(2))
            .node("order")
            .chain(0, 1, &["order_line"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q8: customers who ordered an item on a subject, shipped to a country
    reads.push(
        b("Q8")
            .node("customer")
            .node("order")
            .node("item")
            .pred_eq("subject", t("item_subject_1"))
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .chain(1, 0, &["make"])
            .unwrap()
            .chain(1, 2, &["order_line"])
            .unwrap()
            .chain(1, 3, &["shipping", "address", "in"])
            .unwrap()
            .output(0)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q9: authors of items ordered by customers with addresses in a country
    reads.push(
        b("Q9")
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .node("author")
            .chain(
                0,
                1,
                &[
                    "in",
                    "address",
                    "has",
                    "customer",
                    "make",
                    "order",
                    "order_line",
                    "item",
                    "write",
                ],
            )
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q10: the credit card transaction of one order (1:1)
    reads.push(
        b("Q10")
            .node("order")
            .pred_eq("id", Value::Int(7))
            .node("credit_card_transaction")
            .chain(0, 1, &["associate"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q11: orders shipped to a country, grouped by status (aggregate)
    reads.push(
        b("Q11")
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .node("order")
            .chain(0, 1, &["in", "address", "shipping"])
            .unwrap()
            .output(1)
            .distinct()
            .group_by("status")
            .build()
            .unwrap(),
    );
    // Q12: orders whose billing AND shipping addresses are in one country
    reads.push(
        b("Q12")
            .node("order")
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .node("country")
            .pred_eq("name", t("country_name_1"))
            .chain(0, 1, &["billing", "address", "in"])
            .unwrap()
            .chain(0, 2, &["shipping", "address", "in"])
            .unwrap()
            .output(0)
            .distinct()
            .build()
            .unwrap(),
    );
    // Q13 (schema-indifferent): authors by last name
    reads.push(
        b("Q13").node("author").pred_eq("lname", t("author_lname_1")).output(0).build().unwrap(),
    );

    let updates = vec![u1(g), u2(g), u3(g)];

    Workload {
        name: "tpcw".into(),
        reads,
        updates,
        indifferent: vec!["Q3".into(), "Q4".into(), "Q5".into(), "Q13".into()],
    }
}

fn node(g: &ErGraph, n: &str) -> NodeId {
    g.node_by_name(n).unwrap_or_else(|| panic!("tpcw node {n}"))
}

/// U1: insert a new order for a customer, with its credit card transaction
/// and two order lines referencing existing items.
fn u1(g: &ErGraph) -> UpdateSpec {
    let order = node(g, "order");
    let cct = node(g, "credit_card_transaction");
    let customer = node(g, "customer");
    let item = node(g, "item");
    let make = node(g, "make");
    let associate = node(g, "associate");
    let order_line = node(g, "order_line");
    let e = |rel, part| find_edge(g, rel, part, None).expect("tpcw edge");

    UpdateSpec {
        name: "U1".into(),
        pattern: PatternBuilder::new(g, "U1loc")
            .node("customer")
            .pred_eq("id", Value::Int(9))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![
                NewInstance {
                    node: order,
                    attrs: vec![
                        Value::Int(5_000_000),
                        Value::Text("2026-07-01".into()),
                        Value::Float(30.0),
                        Value::Float(3.0),
                        Value::Float(33.0),
                        Value::Text("order_status_1".into()),
                    ],
                    links: vec![
                        InsertLink {
                            rel: make,
                            self_edge: e(make, order),
                            partner_edge: e(make, customer),
                            partner: Partner::Matched(0),
                        },
                        InsertLink {
                            rel: order_line,
                            self_edge: e(order_line, order),
                            partner_edge: e(order_line, item),
                            partner: Partner::ByOrdinal(item, 3),
                        },
                        InsertLink {
                            rel: order_line,
                            self_edge: e(order_line, order),
                            partner_edge: e(order_line, item),
                            partner: Partner::ByOrdinal(item, 4),
                        },
                    ],
                },
                NewInstance {
                    node: cct,
                    attrs: vec![
                        Value::Int(5_000_000),
                        Value::Text("visa".into()),
                        Value::Text("4111".into()),
                        Value::Text("2028-01-01".into()),
                        Value::Text("auth".into()),
                        Value::Float(33.0),
                    ],
                    links: vec![InsertLink {
                        rel: associate,
                        self_edge: e(associate, cct),
                        partner_edge: e(associate, order),
                        partner: Partner::New(0),
                    }],
                },
            ],
        }),
    }
}

/// U2: change the email of the first two customers.
fn u2(g: &ErGraph) -> UpdateSpec {
    let email = 4; // customer { id uname fname lname email phone discount }
    UpdateSpec {
        name: "U2".into(),
        pattern: PatternBuilder::new(g, "U2loc")
            .node("customer")
            .pred("id", CmpOp::Lt, Value::Int(2))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Modify { attr: email, value: Value::Text("new@example.com".into()) },
    }
}

/// U3: a single-element update of one address — the query where duplicated
/// schemas (DEEP, UNDR) pay for every copy.
fn u3(g: &ErGraph) -> UpdateSpec {
    let street1 = 1; // address { id street1 street2 city state zip }
    UpdateSpec {
        name: "U3".into(),
        pattern: PatternBuilder::new(g, "U3loc")
            .node("address")
            .pred_eq("id", Value::Int(7))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Modify { attr: street1, value: Value::Text("1 New Street".into()) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn sixteen_queries_four_indifferent() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let w = workload(&g);
        assert_eq!(w.reads.len() + w.updates.len(), 16);
        assert_eq!(w.indifferent.len(), 4);
        assert_eq!(w.reported().len(), 12);
        // reported = Q1, Q2, Q6..Q12, U1..U3 — exactly the Table 1 rows
        assert_eq!(
            w.reported(),
            ["Q1", "Q2", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12", "U1", "U2", "U3"]
        );
    }
}

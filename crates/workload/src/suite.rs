//! Workload execution harness: run every query of a workload against every
//! schema of a diagram, over one shared canonical instance.

use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, CanonicalInstance, ScaleProfile};
use colorist_er::ErGraph;
use colorist_query::{compile, execute, execute_update, Pattern, QueryError, UpdateSpec};
use colorist_store::{stats::stats, Metrics, Stats};

/// Read query or update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Read-only query (Q…).
    Read,
    /// Update query (U…).
    Update,
}

/// A workload: read patterns plus update specifications.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload label.
    pub name: String,
    /// Read queries, in reporting order.
    pub reads: Vec<Pattern>,
    /// Updates, in reporting order.
    pub updates: Vec<UpdateSpec>,
    /// Names of queries that are indifferent to schema choice (excluded
    /// from the reported figures, per §6.1).
    pub indifferent: Vec<String>,
}

impl Workload {
    /// Queries reported in the figures (non-indifferent), reads first.
    pub fn reported(&self) -> Vec<&str> {
        self.reads
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.updates.iter().map(|u| u.name.as_str()))
            .filter(|n| !self.indifferent.iter().any(|i| i == n))
            .collect()
    }
}

/// Result of one query against one schema.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Query name.
    pub name: String,
    /// Read or update.
    pub kind: QueryKind,
    /// Measured metrics (plan ops, volumes, wall time).
    pub metrics: Metrics,
    /// Logical results / elements updated.
    pub logical: u64,
    /// Physical results incl. duplicates (the parenthesized numbers).
    pub physical: u64,
}

/// One schema's complete evaluation.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Storage statistics (Table 1 top).
    pub stats: Stats,
    /// Schema color count.
    pub colors: usize,
    /// Per-query runs, reads then updates.
    pub runs: Vec<QueryRun>,
}

impl SuiteResult {
    /// Find one run by query name.
    pub fn run(&self, name: &str) -> Option<&QueryRun> {
        self.runs.iter().find(|r| r.name == name)
    }
}

/// Run `workload` for every strategy on one diagram. The same canonical
/// instance (from `profile` and `seed`) backs every schema, so logical
/// results agree across strategies by construction.
pub fn run_suite(
    graph: &ErGraph,
    strategies: &[Strategy],
    workload: &Workload,
    profile: &ScaleProfile,
    seed: u64,
) -> Result<Vec<SuiteResult>, QueryError> {
    let instance = generate(graph, profile, seed);
    run_suite_on(graph, strategies, workload, &instance)
}

/// Like [`run_suite`] with a pre-generated instance.
pub fn run_suite_on(
    graph: &ErGraph,
    strategies: &[Strategy],
    workload: &Workload,
    instance: &CanonicalInstance,
) -> Result<Vec<SuiteResult>, QueryError> {
    let mut out = Vec::with_capacity(strategies.len());
    for &s in strategies {
        let schema = design(graph, s).expect("strategy designs the diagram");
        let db = materialize(graph, &schema, instance);
        let mut runs = Vec::new();
        for q in &workload.reads {
            let plan = compile(graph, &db.schema, q)?;
            let r = execute(&db, graph, &plan);
            runs.push(QueryRun {
                name: q.name.clone(),
                kind: QueryKind::Read,
                metrics: r.metrics,
                logical: r.distinct,
                physical: r.results,
            });
        }
        for u in &workload.updates {
            // isolate each update on a fresh clone so later queries see the
            // same base state on every schema
            let mut dbu = db.clone();
            let o = execute_update(&mut dbu, graph, u)?;
            runs.push(QueryRun {
                name: u.name.clone(),
                kind: QueryKind::Update,
                metrics: o.metrics,
                logical: o.logical,
                physical: o.physical,
            });
        }
        out.push(SuiteResult { strategy: s, stats: stats(&db, graph), colors: db.color_count(), runs });
    }
    Ok(out)
}

/// Shifted geometric mean (`exp(mean(ln(1 + x))) - 1`): the aggregation
/// used for Figures 12–14, where most queries have zero value joins and a
/// plain geometric mean would collapse to 0.
pub fn geo_mean(values: impl IntoIterator<Item = u64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += (1.0 + v as f64).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean([]), 0.0);
        assert_eq!(geo_mean([0, 0, 0]), 0.0);
        assert!((geo_mean([1, 1, 1]) - 1.0).abs() < 1e-12);
        // mixed zeros stay between 0 and max
        let m = geo_mean([0, 3]);
        assert!(m > 0.0 && m < 3.0);
    }
}

//! Workload execution harness: run every query of a workload against every
//! schema of a diagram, over one shared canonical instance.

use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, CanonicalInstance, ScaleProfile};
use colorist_er::ErGraph;
use colorist_query::{execute, execute_update, optimize, Pattern, Plan, QueryError, UpdateSpec};
use colorist_store::{stats::stats, KernelDispatch, Metrics, Stats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Read query or update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Read-only query (Q…).
    Read,
    /// Update query (U…).
    Update,
}

/// A workload: read patterns plus update specifications.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload label.
    pub name: String,
    /// Read queries, in reporting order.
    pub reads: Vec<Pattern>,
    /// Updates, in reporting order.
    pub updates: Vec<UpdateSpec>,
    /// Names of queries that are indifferent to schema choice (excluded
    /// from the reported figures, per §6.1).
    pub indifferent: Vec<String>,
}

impl Workload {
    /// Queries reported in the figures (non-indifferent), reads first.
    pub fn reported(&self) -> Vec<&str> {
        self.reads
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.updates.iter().map(|u| u.name.as_str()))
            .filter(|n| !self.indifferent.iter().any(|i| i == n))
            .collect()
    }
}

/// The optimizer's estimated counter totals for one query's plan, summed
/// over the per-operator [`CostEst`](colorist_query::CostEst) annotations
/// and rounded — the numbers the perfgate's q-error budget compares
/// against measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstTotals {
    /// Estimated `elements_scanned`.
    pub scanned: u64,
    /// Estimated `join_probes`.
    pub probes: u64,
    /// Estimated `bytes_touched`.
    pub bytes: u64,
    /// Estimated `index_lookups`.
    pub index_lookups: u64,
}

impl EstTotals {
    /// Sum a plan's cost annotations; `None` for un-annotated plans.
    pub fn of_plan(plan: &Plan) -> Option<EstTotals> {
        if plan.costs.is_empty() {
            return None;
        }
        let mut t = EstTotals::default();
        for c in &plan.costs {
            t.scanned += c.scanned.max(0.0).round() as u64;
            t.probes += c.probes.max(0.0).round() as u64;
            t.bytes += c.bytes.max(0.0).round() as u64;
            t.index_lookups += c.index_lookups.max(0.0).round() as u64;
        }
        Some(t)
    }

    /// The perfgate domination sum (`scanned + probes + bytes`).
    pub fn gate_sum(&self) -> u64 {
        self.scanned + self.probes + self.bytes
    }
}

/// Result of one query against one schema.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Query name.
    pub name: String,
    /// Read or update.
    pub kind: QueryKind,
    /// Measured metrics (plan ops, volumes, wall time) under the default
    /// cost-model planning and dispatch.
    pub metrics: Metrics,
    /// Logical results / elements updated.
    pub logical: u64,
    /// Physical results incl. duplicates (the parenthesized numbers).
    pub physical: u64,
    /// The optimizer's estimated counter totals for this query's plan
    /// (`None` for updates' apply phase and un-annotated plans).
    pub est: Option<EstTotals>,
    /// Measured metrics of the same query under heuristic planning and
    /// ratio dispatch — the optimizer's differential partner, used by the
    /// perfgate's counter-domination check.
    pub heuristic: Option<Metrics>,
}

/// One schema's complete evaluation.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Storage statistics (Table 1 top).
    pub stats: Stats,
    /// Schema color count.
    pub colors: usize,
    /// Per-query runs, reads then updates.
    pub runs: Vec<QueryRun>,
    /// End-to-end wall-clock time of the whole suite invocation that
    /// produced this result (design + materialize + every query on every
    /// strategy). The same value is stamped on every `SuiteResult` of one
    /// `run_suite_on` call; with `COLORIST_THREADS > 1` it is smaller than
    /// the sum of per-query `Metrics::elapsed` spans, which overlap.
    pub suite_wall: Duration,
}

impl SuiteResult {
    /// Find one run by query name.
    pub fn run(&self, name: &str) -> Option<&QueryRun> {
        self.runs.iter().find(|r| r.name == name)
    }
}

/// Run `workload` for every strategy on one diagram. The same canonical
/// instance (from `profile` and `seed`) backs every schema, so logical
/// results agree across strategies by construction.
pub fn run_suite(
    graph: &ErGraph,
    strategies: &[Strategy],
    workload: &Workload,
    profile: &ScaleProfile,
    seed: u64,
) -> Result<Vec<SuiteResult>, QueryError> {
    let instance = generate(graph, profile, seed);
    run_suite_on(graph, strategies, workload, &instance)
}

/// Worker count for the suite runner: `COLORIST_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn suite_threads() -> usize {
    std::env::var("COLORIST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Map `f` over `0..n` on up to `threads` scoped workers, returning the
/// results in index order (a shared atomic cursor hands out indices; each
/// result lands in its own slot, so the output is identical to the serial
/// `(0..n).map(f)` regardless of scheduling).
pub(crate) fn par_map<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Like [`run_suite`] with a pre-generated instance. Parallelism comes
/// from [`suite_threads`] (`COLORIST_THREADS`).
pub fn run_suite_on(
    graph: &ErGraph,
    strategies: &[Strategy],
    workload: &Workload,
    instance: &CanonicalInstance,
) -> Result<Vec<SuiteResult>, QueryError> {
    run_suite_on_threads(graph, strategies, workload, instance, suite_threads())
}

/// [`run_suite_on`] with an explicit worker count. `threads <= 1` runs
/// fully serially; any other count produces byte-identical `QueryRun`s
/// (only the measured times differ).
pub fn run_suite_on_threads(
    graph: &ErGraph,
    strategies: &[Strategy],
    workload: &Workload,
    instance: &CanonicalInstance,
    threads: usize,
) -> Result<Vec<SuiteResult>, QueryError> {
    let _suite_span = colorist_trace::span("suite", format!("suite:{}", workload.name));
    let start = Instant::now();

    // phase A: design + materialize every strategy — independent, so each
    // strategy is one task. Each task also prepares the strategy's
    // heuristic twin: the same database pinned to ratio dispatch, whose
    // plans come from the plain compiler — the optimizer's differential
    // partner for the perfgate's counter-domination check.
    let dbs = par_map(strategies.len(), threads, |i| {
        let _span = colorist_trace::span("suite", format!("setup:{}", strategies[i]));
        let schema = design(graph, strategies[i]).expect("strategy designs the diagram");
        let mut db = materialize(graph, &schema, instance);
        // `COLORIST_BACKEND=paged|paged-mem` attaches the paged storage
        // backend here, before the twin clone — both plans then read
        // through (independent, per-query) buffer pools over one backend
        colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
        let mut heuristic = db.clone();
        heuristic.set_kernel_dispatch(KernelDispatch::Ratio);
        (db, heuristic)
    });

    // phase B: one task per (strategy, query) pair; reads share the
    // strategy's database immutably, updates isolate on a fresh clone so
    // every query sees the same base state on every schema (exactly as the
    // serial runner did)
    let n_reads = workload.reads.len();
    let n_q = n_reads + workload.updates.len();
    let results: Vec<Result<QueryRun, QueryError>> =
        par_map(strategies.len() * n_q, threads, |t| {
            let (si, qi) = (t / n_q, t % n_q);
            let (db, heur) = &dbs[si];
            let qname = if qi < n_reads {
                &workload.reads[qi].name
            } else {
                &workload.updates[qi - n_reads].name
            };
            let _span = colorist_trace::span("suite", format!("{}:{}", strategies[si], qname));
            if qi < n_reads {
                let q = &workload.reads[qi];
                let plan = optimize(db, graph, q)?;
                let r = execute(db, graph, &plan)?;
                let hplan = optimize(heur, graph, q)?;
                let h = execute(heur, graph, &hplan)?;
                if (h.distinct, h.results) != (r.distinct, r.results) {
                    return Err(QueryError::Internal {
                        diag: format!(
                            "optimizer differential: `{}` on {} answers {}/{} optimized \
                             vs {}/{} heuristic",
                            q.name, strategies[si], r.distinct, r.results, h.distinct, h.results
                        ),
                    });
                }
                Ok(QueryRun {
                    name: q.name.clone(),
                    kind: QueryKind::Read,
                    metrics: r.metrics,
                    logical: r.distinct,
                    physical: r.results,
                    est: EstTotals::of_plan(&plan),
                    heuristic: Some(h.metrics),
                })
            } else {
                let u = &workload.updates[qi - n_reads];
                let mut dbu = db.clone();
                let o = execute_update(&mut dbu, graph, u)?;
                let mut dbh = heur.clone();
                let oh = execute_update(&mut dbh, graph, u)?;
                if (oh.logical, oh.physical) != (o.logical, o.physical) {
                    return Err(QueryError::Internal {
                        diag: format!(
                            "optimizer differential: `{}` on {} touches {}/{} optimized \
                             vs {}/{} heuristic",
                            u.name, strategies[si], o.logical, o.physical, oh.logical, oh.physical
                        ),
                    });
                }
                Ok(QueryRun {
                    name: u.name.clone(),
                    kind: QueryKind::Update,
                    metrics: o.metrics,
                    logical: o.logical,
                    physical: o.physical,
                    est: None,
                    heuristic: Some(oh.metrics),
                })
            }
        });

    let suite_wall = start.elapsed();
    let mut it = results.into_iter();
    let mut out = Vec::with_capacity(strategies.len());
    for (si, &s) in strategies.iter().enumerate() {
        // surface errors in task order, so failures are reported
        // identically to the serial runner
        let runs = (0..n_q)
            .map(|_| it.next().expect("one result per task"))
            .collect::<Result<Vec<_>, _>>()?;
        out.push(SuiteResult {
            strategy: s,
            stats: stats(&dbs[si].0, graph),
            colors: dbs[si].0.color_count(),
            runs,
            suite_wall,
        });
    }
    Ok(out)
}

/// Shifted geometric mean (`exp(mean(ln(1 + x))) - 1`): the aggregation
/// used for Figures 12–14, where most queries have zero value joins and a
/// plain geometric mean would collapse to 0.
pub fn geo_mean(values: impl IntoIterator<Item = u64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += (1.0 + v as f64).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn parallel_suite_matches_serial() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
        let w = crate::tpcw::workload(&g);
        let profile = ScaleProfile::tpcw(&g, 20);
        let instance = generate(&g, &profile, 7);
        let serial =
            run_suite_on_threads(&g, &Strategy::ALL, &w, &instance, 1).expect("serial suite");
        let par =
            run_suite_on_threads(&g, &Strategy::ALL, &w, &instance, 4).expect("parallel suite");
        assert_eq!(serial.len(), par.len());
        let norm = |m: Metrics| Metrics { elapsed: Duration::default(), ..m };
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.colors, b.colors);
            assert_eq!(a.runs.len(), b.runs.len());
            for (x, y) in a.runs.iter().zip(&b.runs) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.kind, y.kind);
                assert_eq!((x.logical, x.physical), (y.logical, y.physical), "{}", x.name);
                assert_eq!(norm(x.metrics), norm(y.metrics), "{}", x.name);
                assert_eq!(x.est, y.est, "{}", x.name);
                assert_eq!(x.heuristic.map(norm), y.heuristic.map(norm), "{}", x.name);
            }
        }
    }

    #[test]
    fn suite_threads_respects_env_contract() {
        // can't set the process env safely in a threaded test binary, but
        // the default must be at least 1
        assert!(suite_threads() >= 1);
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean([]), 0.0);
        assert_eq!(geo_mean([0, 0, 0]), 0.0);
        assert!((geo_mean([1, 1, 1]) - 1.0).abs() < 1e-12);
        // mixed zeros stay between 0 and max
        let m = geo_mean([0, 3]);
        assert!(m > 0.0 && m < 3.0);
    }
}

//! Cross-strategy answer-equivalence oracle: differential testing of the
//! whole design → materialize → compile → execute pipeline.
//!
//! The paper's central claim is that every design strategy produces an
//! *information-equivalent* schema of the same ER diagram: any query must
//! return the same logical answer on every schema, differing only in cost.
//! That claim is a free, high-yield test oracle — no hand-written expected
//! answers needed. For each seed the oracle
//!
//! 1. generates a random simplified ER diagram (bounded entity and
//!    relationship counts, random cardinalities, participation constraints
//!    and roles) on the repository's deterministic xoshiro PRNG,
//! 2. classifies it with Theorem 4.1 ([`single_color_feasibility`]) so
//!    both feasible and infeasible diagrams are exercised and reported,
//! 3. generates one shared canonical instance and materializes it under
//!    **all seven** strategies,
//! 4. compiles and executes a randomized pattern workload — point and
//!    range selections, ascent/descent chains (which become value joins on
//!    value-encoding schemas), star patterns, distinct and group-by — on
//!    every schema, and
//! 5. asserts pairwise logical-answer equivalence plus metrics sanity
//!    (runtime operation counters must equal the plan's static counts,
//!    physical counts never undercount logical ones), and
//! 6. re-executes every query with the reference kernels pinned
//!    ([`Database::set_reference_kernels`]) and asserts the
//!    index-accelerated and gallop-skipping paths return identical
//!    answers, so every CI seed differentially tests both kernel
//!    families, and
//! 7. re-plans every query with the cost-based optimizer
//!    ([`colorist_query::optimize()`]), statically verifies the optimized
//!    plan (including its `P010` cost annotations), executes it, and
//!    asserts answer equality with the heuristic plan — every CI seed
//!    differentially tests both planners too.
//!
//! Because [`execute`] is panic-free, the oracle
//! can distinguish "engine refused" (an `Err`, reported as a divergence of
//! its own kind) from "wrong answer" — adversarial seeds never abort a
//! run. Every divergence found during development gets minimized
//! ([`minimize`]) into a fixed regression test.

use crate::suite::par_map;
use colorist_core::{design, single_color_feasibility, Strategy};
use colorist_datagen::{generate, materialize, Rng, ScaleProfile};
use colorist_er::{
    Attribute, Cardinality, EligibleAssociations, Endpoint, ErDiagram, ErGraph, NodeId, NodeKind,
    Participation,
};
use colorist_mct::{ColorId, MctSchema};
use colorist_query::plan_read_footprint;
use colorist_query::{
    compile, execute, execute_snapshot, optimize, verify_plan, CmpOp, Pattern, PatternBuilder,
    Plan, QueryResult,
};
use colorist_store::{
    analyze_batch, certify, Certificate, CommitScheduler, Database, UpdateBatch, Value,
};
use std::collections::BTreeSet;
use std::fmt;

/// Stream-splitting constant: keeps oracle randomness decorrelated from
/// the property tests, which seed the same PRNG with small offsets.
const ORACLE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Bounds and knobs of one oracle run. The defaults keep a seed cheap
/// enough for hundreds per second of CPU budget.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Base entity extent of the shared canonical instance.
    pub scale: u32,
    /// Queries generated per seed.
    pub queries: usize,
    /// Maximum entity count of a random diagram (minimum is 2).
    pub max_entities: usize,
    /// Maximum relationship count of a random diagram (minimum is 1).
    pub max_rels: usize,
    /// Maximum association length considered when picking chain queries.
    pub max_chain: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { scale: 20, queries: 6, max_entities: 5, max_rels: 7, max_chain: 6 }
    }
}

/// One observed divergence: a strategy disagreeing with the reference
/// answer, an engine refusal, or a metrics-sanity violation.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed that produced the diagram, data, and queries.
    pub seed: u64,
    /// Name of the diverging query (`<design>` for design failures).
    pub query: String,
    /// Label of the strategy that diverged.
    pub strategy: String,
    /// What went wrong, with the reference strategy named when relevant.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {} / {} on {}: {}", self.seed, self.query, self.strategy, self.detail)
    }
}

/// The outcome of one oracle seed.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed replayed by [`run_seed`].
    pub seed: u64,
    /// Theorem 4.1 verdict for the generated diagram.
    pub feasible: bool,
    /// Queries generated and executed on every schema.
    pub queries_run: usize,
    /// All divergences observed (empty on a clean seed).
    pub divergences: Vec<Divergence>,
}

/// Aggregate over a seed range.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Per-seed outcomes, in seed order.
    pub reports: Vec<SeedReport>,
}

impl OracleReport {
    /// All divergences across the range, in seed order.
    pub fn divergences(&self) -> Vec<&Divergence> {
        self.reports.iter().flat_map(|r| r.divergences.iter()).collect()
    }

    /// Seeds whose diagram is single-color feasible (Theorem 4.1).
    pub fn feasible_seeds(&self) -> usize {
        self.reports.iter().filter(|r| r.feasible).count()
    }

    /// Total queries executed (each on all seven schemas).
    pub fn queries_run(&self) -> usize {
        self.reports.iter().map(|r| r.queries_run).sum()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let divs = self.divergences();
        writeln!(
            f,
            "oracle: {} seeds ({} feasible per Theorem 4.1), {} queries x {} strategies, {} divergence(s)",
            self.reports.len(),
            self.feasible_seeds(),
            self.queries_run(),
            Strategy::ALL.len(),
            divs.len()
        )?;
        for d in divs {
            writeln!(f, "  DIVERGENCE {d}")?;
        }
        Ok(())
    }
}

/// A random simplified ER diagram: `2..=max_entities` entities (key, text
/// label, integer measure), `1..=max_rels` binary relationships with
/// random cardinalities, participation, roles, and an occasional
/// relationship attribute. Recursive relationships (both endpoints the
/// same entity) arise naturally.
pub fn arb_diagram(rng: &mut Rng, cfg: &OracleConfig) -> ErDiagram {
    let n = 2 + rng.below(cfg.max_entities.saturating_sub(1).max(1) as u64) as usize;
    let n_rels = 1 + rng.below(cfg.max_rels.max(1) as u64) as usize;
    let mut d = ErDiagram::new("oracle");
    for i in 0..n {
        d.add_entity(
            &format!("e{i}"),
            vec![
                Attribute::key("id"),
                Attribute::text("label"),
                Attribute::with_domain("size", colorist_er::Domain::Integer),
            ],
        )
        .expect("fresh entity name");
    }
    for k in 0..n_rels {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let (ca, cb) = match rng.below(4) {
            0 => (Cardinality::One, Cardinality::One),
            1 => (Cardinality::Many, Cardinality::One),
            2 => (Cardinality::One, Cardinality::Many),
            _ => (Cardinality::Many, Cardinality::Many),
        };
        let mut ea = Endpoint::new(&format!("e{a}"), ca).role("l");
        let mut eb = Endpoint::new(&format!("e{b}"), cb).role("r");
        if rng.below(2) == 1 {
            eb = eb.total();
        }
        if rng.below(4) == 0 {
            ea = ea.total();
        }
        let attrs = if rng.below(4) == 0 {
            vec![Attribute::with_domain("qty", colorist_er::Domain::Integer)]
        } else {
            vec![]
        };
        d.add_relationship(&format!("r{k}"), vec![ea, eb], attrs).expect("fresh rel name");
    }
    d
}

/// `via` names (interior path nodes) of an association, oriented
/// `from → to`.
fn via_names(g: &ErGraph, a: &colorist_er::Association, flip: bool) -> Vec<String> {
    let interior = &a.nodes[1..a.nodes.len() - 1];
    let names: Vec<String> = interior.iter().map(|&n| g.node(n).name.clone()).collect();
    if flip {
        names.into_iter().rev().collect()
    } else {
        names
    }
}

/// A randomized pattern workload over one graph: selections, chains (with
/// random direction, so both descents and ascents), star patterns,
/// distinct, and group-by. Deterministic in `rng`.
pub fn arb_queries(g: &ErGraph, rng: &mut Rng, cfg: &OracleConfig) -> Vec<Pattern> {
    let elig = EligibleAssociations::enumerate(g, cfg.max_chain);
    let assocs: Vec<_> = elig.iter().collect();
    let entities: Vec<_> = g.entity_nodes().collect();
    let mut out = Vec::with_capacity(cfg.queries);
    let mut attempts = 0usize;
    while out.len() < cfg.queries && attempts < cfg.queries * 8 {
        attempts += 1;
        let i = out.len();
        let form = rng.below(6);
        let q = match form {
            // point selection on an entity key
            0 => {
                let e = entities[rng.below(entities.len() as u64) as usize];
                let key = rng.below(cfg.scale as u64) as i64;
                PatternBuilder::new(g, &format!("q{i}_sel"))
                    .node(&g.node(e).name)
                    .pred_eq("id", Value::Int(key))
                    .output(0)
                    .build()
                    .ok()
            }
            // range selection on the integer measure
            1 => {
                let e = entities[rng.below(entities.len() as u64) as usize];
                let op = if rng.below(2) == 0 { CmpOp::Lt } else { CmpOp::Gt };
                let threshold = rng.range_i64(100, 900);
                PatternBuilder::new(g, &format!("q{i}_range"))
                    .node(&g.node(e).name)
                    .pred("size", op, Value::Int(threshold))
                    .output(0)
                    .distinct()
                    .build()
                    .ok()
            }
            // star: two chains out of a shared source node
            2 => star_query(g, &assocs, rng, i, cfg),
            // chain + group-by on the target's label
            3 => chain_query(g, &assocs, rng, i, cfg, ChainForm::GroupBy),
            // chain without predicate
            4 => chain_query(g, &assocs, rng, i, cfg, ChainForm::Bare),
            // chain with a key predicate on the source (the workhorse)
            _ => chain_query(g, &assocs, rng, i, cfg, ChainForm::KeyPred),
        };
        if let Some(q) = q {
            out.push(q);
        }
    }
    out
}

/// Flavor of a generated chain query.
enum ChainForm {
    /// Key-equality predicate on the chain's source node.
    KeyPred,
    /// No predicate: every target instance reachable over the association.
    Bare,
    /// Group the (distinct) targets by their text label.
    GroupBy,
}

/// One chain query along a random eligible association, direction
/// randomly flipped (exercising both descents and ascents).
fn chain_query(
    g: &ErGraph,
    assocs: &[&colorist_er::Association],
    rng: &mut Rng,
    i: usize,
    cfg: &OracleConfig,
    form: ChainForm,
) -> Option<Pattern> {
    if assocs.is_empty() {
        return None;
    }
    let a = assocs[rng.below(assocs.len() as u64) as usize];
    let flip = rng.below(2) == 1;
    let (from, to) = if flip { (a.target, a.source) } else { (a.source, a.target) };
    let via = via_names(g, a, flip);
    let via_refs: Vec<&str> = via.iter().map(String::as_str).collect();
    let key = rng.below(cfg.scale as u64) as i64;
    let b = PatternBuilder::new(g, &format!("q{i}_chain")).node(&g.node(from).name);
    let b = match form {
        ChainForm::KeyPred => b.pred_eq("id", Value::Int(key)),
        ChainForm::Bare | ChainForm::GroupBy => b,
    };
    let b = b.node(&g.node(to).name).chain(0, 1, &via_refs).ok()?.output(1).distinct();
    match form {
        ChainForm::GroupBy => b.group_by("label").build().ok(),
        _ => b.build().ok(),
    }
}

/// A star pattern: two chains out of one shared source (compiled into an
/// occurrence-set intersection), with a key predicate on the source.
fn star_query(
    g: &ErGraph,
    assocs: &[&colorist_er::Association],
    rng: &mut Rng,
    i: usize,
    cfg: &OracleConfig,
) -> Option<Pattern> {
    if assocs.is_empty() {
        return None;
    }
    let first = assocs[rng.below(assocs.len() as u64) as usize];
    let siblings: Vec<_> = assocs.iter().filter(|a| a.source == first.source).collect();
    if siblings.len() < 2 {
        return None;
    }
    let second = siblings[rng.below(siblings.len() as u64) as usize];
    let via1 = via_names(g, first, false);
    let via2 = via_names(g, second, false);
    let via1_refs: Vec<&str> = via1.iter().map(String::as_str).collect();
    let via2_refs: Vec<&str> = via2.iter().map(String::as_str).collect();
    let key = rng.below(cfg.scale as u64) as i64;
    PatternBuilder::new(g, &format!("q{i}_star"))
        .node(&g.node(first.source).name)
        .pred_eq("id", Value::Int(key))
        .node(&g.node(first.target).name)
        .node(&g.node(second.target).name)
        .chain(0, 1, &via1_refs)
        .ok()?
        .chain(0, 2, &via2_refs)
        .ok()?
        .output(0)
        .distinct()
        .build()
        .ok()
}

/// Runtime/plan consistency checks on one result. Returns violations.
fn metrics_sanity(plan: &Plan, r: &QueryResult) -> Vec<String> {
    let want = plan.static_metrics();
    let got = &r.metrics;
    let mut v = Vec::new();
    let pairs = [
        ("structural_joins", want.structural_joins, got.structural_joins),
        ("value_joins", want.value_joins, got.value_joins),
        ("color_crossings", want.color_crossings, got.color_crossings),
        ("dup_eliminations", want.dup_eliminations, got.dup_eliminations),
        ("group_bys", want.group_bys, got.group_bys),
    ];
    for (name, w, g) in pairs {
        if w != g {
            v.push(format!("{name}: plan says {w}, runtime counted {g}"));
        }
    }
    if r.results < r.distinct {
        v.push(format!("physical {} undercounts logical {}", r.results, r.distinct));
    }
    if want.group_bys == 0 && r.distinct != r.elements.len() as u64 {
        v.push(format!("distinct {} != {} logical elements", r.distinct, r.elements.len()));
    }
    if got.results != r.results || got.distinct_results != r.distinct {
        v.push("metrics results/distinct disagree with the QueryResult".into());
    }
    v
}

/// Everything one seed determines: diagram, graph, queries, and the
/// shared canonical instance's seed.
struct SeedSetup {
    diagram: ErDiagram,
    graph: ErGraph,
    feasible: bool,
    queries: Vec<Pattern>,
    data_seed: u64,
}

fn setup_seed(seed: u64, cfg: &OracleConfig) -> SeedSetup {
    let mut rng = Rng::new(seed.wrapping_mul(ORACLE_STREAM) ^ 0x04AC1E);
    let diagram = arb_diagram(&mut rng, cfg);
    let graph = ErGraph::from_diagram(&diagram).expect("generated diagrams are valid");
    let feasible = single_color_feasibility(&graph).feasible();
    let queries = arb_queries(&graph, &mut rng, cfg);
    let data_seed = rng.below(1 << 20);
    SeedSetup { diagram, graph, feasible, queries, data_seed }
}

/// Design + materialize every strategy over one shared instance.
/// A design failure becomes a divergence (strategies must design any
/// simplified diagram).
fn build_databases(
    setup: &SeedSetup,
    seed: u64,
    cfg: &OracleConfig,
    divergences: &mut Vec<Divergence>,
) -> Vec<(Strategy, Database)> {
    let g = &setup.graph;
    let inst = generate(g, &ScaleProfile::uniform(g, cfg.scale), setup.data_seed);
    let mut dbs = Vec::with_capacity(Strategy::ALL.len());
    for s in Strategy::ALL {
        match design(g, s) {
            Ok(schema) => {
                for d in colorist_mct::lint_schema(g, &schema) {
                    divergences.push(Divergence {
                        seed,
                        query: "<design>".into(),
                        strategy: s.label().into(),
                        detail: format!("schema lint: {d}"),
                    });
                }
                let mut db = materialize(g, &schema, &inst);
                // `COLORIST_BACKEND` attaches the paged storage backend so
                // the equivalence sweep also exercises flush/reload-path
                // accounting under every strategy
                colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
                dbs.push((s, db));
            }
            Err(e) => divergences.push(Divergence {
                seed,
                query: "<design>".into(),
                strategy: s.label().into(),
                detail: format!("design failed: {e}"),
            }),
        }
    }
    dbs
}

/// Run one seed: generate, materialize under all strategies, execute the
/// random workload everywhere, and compare. Never panics on a seed the
/// generator can produce; engine refusals are reported as divergences.
pub fn run_seed(seed: u64, cfg: &OracleConfig) -> SeedReport {
    let setup = setup_seed(seed, cfg);
    let g = &setup.graph;
    let mut divergences = Vec::new();
    let mut dbs = build_databases(&setup, seed, cfg, &mut divergences);

    for q in &setup.queries {
        // reference answer: the first strategy that executes the query
        let mut reference: Option<(Strategy, QueryResult)> = None;
        for (s, db) in dbs.iter_mut() {
            let s: &Strategy = s;
            let plan = match compile(g, &db.schema, q) {
                Ok(plan) => plan,
                Err(e) => {
                    divergences.push(Divergence {
                        seed,
                        query: q.name.clone(),
                        strategy: s.label().into(),
                        detail: format!("engine refused: {e}"),
                    });
                    continue;
                }
            };
            // Every compiled plan must pass the static verifier before it
            // is trusted to execute — a diagnostic here is a compiler bug.
            for d in verify_plan(g, &db.schema, &plan) {
                divergences.push(Divergence {
                    seed,
                    query: q.name.clone(),
                    strategy: s.label().into(),
                    detail: format!("static verifier: {d}"),
                });
            }
            let r = match execute(db, g, &plan) {
                Ok(r) => r,
                Err(e) => {
                    divergences.push(Divergence {
                        seed,
                        query: q.name.clone(),
                        strategy: s.label().into(),
                        detail: format!("engine refused: {e}"),
                    });
                    continue;
                }
            };
            for violation in metrics_sanity(&plan, &r) {
                divergences.push(Divergence {
                    seed,
                    query: q.name.clone(),
                    strategy: s.label().into(),
                    detail: format!("metrics sanity: {violation}"),
                });
            }
            // Kernel sweep: the index-accelerated / gallop-skipping kernels
            // must be answer-identical to the linear/merge/hash reference
            // paths on every seed, query, and strategy — so each CI seed
            // exercises both code paths differentially.
            db.set_reference_kernels(true);
            let ref_run = execute(db, g, &plan);
            db.set_reference_kernels(false);
            match ref_run {
                Ok(rr) => {
                    if rr.elements != r.elements
                        || rr.results != r.results
                        || rr.distinct != r.distinct
                    {
                        divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: format!(
                                "kernel divergence: indexed kernels gave {}/{} (physical/logical), \
                                 reference kernels gave {}/{}",
                                r.results, r.distinct, rr.results, rr.distinct
                            ),
                        });
                    }
                }
                Err(e) => divergences.push(Divergence {
                    seed,
                    query: q.name.clone(),
                    strategy: s.label().into(),
                    detail: format!("kernel divergence: reference kernels refused: {e}"),
                }),
            }
            // Planner sweep: the cost-based optimizer must plan every query
            // the heuristic compiler can plan, pass the static verifier
            // (including the P010 cost-annotation audit), and return the
            // same logical answer — so each CI seed also differentially
            // tests both planners.
            match optimize(db, g, q) {
                Ok(opt_plan) => {
                    for d in verify_plan(g, &db.schema, &opt_plan) {
                        divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: format!("optimizer static verifier: {d}"),
                        });
                    }
                    match execute(db, g, &opt_plan) {
                        Ok(or) => {
                            if or.elements != r.elements
                                || or.results != r.results
                                || or.distinct != r.distinct
                            {
                                divergences.push(Divergence {
                                    seed,
                                    query: q.name.clone(),
                                    strategy: s.label().into(),
                                    detail: format!(
                                        "planner divergence: optimized plan gave {}/{} \
                                         (physical/logical), heuristic plan gave {}/{}",
                                        or.results, or.distinct, r.results, r.distinct
                                    ),
                                });
                            }
                        }
                        Err(e) => divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: format!("planner divergence: optimized plan refused: {e}"),
                        }),
                    }
                }
                Err(e) => divergences.push(Divergence {
                    seed,
                    query: q.name.clone(),
                    strategy: s.label().into(),
                    detail: format!("planner divergence: optimizer refused: {e}"),
                }),
            }
            match &reference {
                None => reference = Some((*s, r)),
                Some((ref_s, ref_r)) => {
                    if r.elements != ref_r.elements {
                        divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: format!(
                                "answer diverges from {}: {} vs {} elements",
                                ref_s.label(),
                                r.elements.len(),
                                ref_r.elements.len()
                            ),
                        });
                    } else if r.distinct != ref_r.distinct {
                        divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: format!(
                                "distinct count diverges from {}: {} vs {}",
                                ref_s.label(),
                                r.distinct,
                                ref_r.distinct
                            ),
                        });
                    }
                }
            }
        }
    }

    SeedReport { seed, feasible: setup.feasible, queries_run: setup.queries.len(), divergences }
}

/// One oracle seed's static artifacts: the generated graph, the designed
/// schemas, and every plan the compiler produced for the seed's workload.
/// This is the corpus the static-verifier mutation harness perturbs — no
/// data is materialized and nothing executes, so a seed is cheap.
#[derive(Debug, Clone)]
pub struct SeedCorpus {
    /// The generated ER graph.
    pub graph: ErGraph,
    /// Designed schema per strategy (design failures are skipped).
    pub schemas: Vec<(Strategy, MctSchema)>,
    /// Compiled plans: (index into `schemas`, query name, plan).
    pub plans: Vec<(usize, String, Plan)>,
}

/// Generate one oracle seed and compile its whole workload against every
/// strategy, without materializing or executing anything.
pub fn compile_seed(seed: u64, cfg: &OracleConfig) -> SeedCorpus {
    let setup = setup_seed(seed, cfg);
    let mut schemas = Vec::new();
    for s in Strategy::ALL {
        if let Ok(schema) = design(&setup.graph, s) {
            schemas.push((s, schema));
        }
    }
    let mut plans = Vec::new();
    for (si, (_, schema)) in schemas.iter().enumerate() {
        for q in &setup.queries {
            if let Ok(plan) = compile(&setup.graph, schema, q) {
                plans.push((si, q.name.clone(), plan));
            }
        }
    }
    SeedCorpus { graph: setup.graph, schemas, plans }
}

/// Run `count` seeds starting at `start` on up to `threads` workers.
/// Deterministic: the report is identical for any worker count.
pub fn run_seeds(start: u64, count: u64, cfg: &OracleConfig, threads: usize) -> OracleReport {
    let cfg = cfg.clone();
    let reports = par_map(count as usize, threads, move |i| run_seed(start + i as u64, &cfg));
    OracleReport { reports }
}

/// A minimized reproduction of a divergent seed: the smallest scale on a
/// fixed ladder that still diverges, and the first divergence at it.
#[derive(Debug, Clone)]
pub struct MinimizedCase {
    /// The divergent seed.
    pub seed: u64,
    /// Smallest diverging scale found.
    pub scale: u32,
    /// First divergence at that scale.
    pub divergence: Divergence,
}

impl fmt::Display for MinimizedCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minimized: seed {} reproduces at --scale {} ({})",
            self.seed, self.scale, self.divergence
        )
    }
}

/// Shrink a divergent seed by walking a scale ladder bottom-up and
/// keeping the smallest scale that still diverges. Returns `None` when
/// the seed is clean under `cfg`.
pub fn minimize(seed: u64, cfg: &OracleConfig) -> Option<MinimizedCase> {
    let full = run_seed(seed, cfg);
    let mut best: (u32, Divergence) = (cfg.scale, full.divergences.first()?.clone());
    for scale in [2u32, 3, 5, 8, 13] {
        if scale >= cfg.scale {
            break;
        }
        let r = run_seed(seed, &OracleConfig { scale, ..cfg.clone() });
        if let Some(d) = r.divergences.first() {
            best = (scale, d.clone());
            break;
        }
    }
    Some(MinimizedCase { seed, scale: best.0, divergence: best.1 })
}

/// Human-readable description of one seed's diagram and workload — the
/// replay view printed by `colorist-oracle --replay`.
pub fn replay_text(seed: u64, cfg: &OracleConfig) -> String {
    use fmt::Write as _;
    let setup = setup_seed(seed, cfg);
    let g = &setup.graph;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "seed {seed}: diagram `{}` ({} nodes, {} edges), Theorem 4.1 feasible: {}",
        setup.diagram.name,
        g.node_count(),
        g.edge_count(),
        setup.feasible
    );
    for rel in g.relationship_nodes() {
        let ends: Vec<String> = g
            .edges()
            .iter()
            .filter(|e| e.rel == rel)
            .map(|e| {
                format!(
                    "{}({}{})",
                    g.node(e.participant).name,
                    match e.cardinality {
                        Cardinality::One => "1",
                        Cardinality::Many => "m",
                    },
                    match e.participation {
                        Participation::Total => ",total",
                        Participation::Partial => "",
                    }
                )
            })
            .collect();
        let _ = writeln!(s, "  rel {}: {}", g.node(rel).name, ends.join(" -- "));
    }
    let _ = writeln!(s, "  data seed {}, scale {}", setup.data_seed, cfg.scale);

    let mut divergences = Vec::new();
    let dbs = build_databases(&setup, seed, cfg, &mut divergences);
    for q in &setup.queries {
        let _ = writeln!(s, "query {}:", q.name);
        for (st, db) in &dbs {
            match compile(g, &db.schema, q).and_then(|plan| Ok((execute(db, g, &plan)?, plan))) {
                Ok((r, plan)) => {
                    let _ = writeln!(
                        s,
                        "  {:7} {} logical / {} physical  [sj {} vj {} cc {}]",
                        st.label(),
                        r.distinct,
                        r.results,
                        r.metrics.structural_joins,
                        r.metrics.value_joins,
                        r.metrics.color_crossings
                    );
                    let _ = write!(s, "{}", indent(&plan.to_string(), "    "));
                    let _ = write!(
                        s,
                        "{}",
                        indent(&colorist_query::explain_abstract(g, &db.schema, &plan), "    ")
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, "  {:7} REFUSED: {e}", st.label());
                }
            }
        }
    }
    let report = run_seed(seed, cfg);
    if report.divergences.is_empty() {
        let _ = writeln!(s, "seed {seed}: clean");
    } else {
        for d in &report.divergences {
            let _ = writeln!(s, "DIVERGENCE {d}");
        }
    }
    s
}

fn indent(text: &str, pad: &str) -> String {
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// One randomized update batch in *logical* coordinates — `(node,
/// ordinal)` pairs name the same instance in every strategy's database,
/// even though the physical `ElementId`s differ. Writes touch entity
/// attributes; deletes are **delete-closed** (see [`delete_closure`]) so
/// that applying them leaves all seven databases logically identical.
#[derive(Debug, Clone)]
struct LogicalBatch {
    /// `(node, ordinal, attr, value)` attribute writes.
    writes: Vec<(NodeId, u32, usize, Value)>,
    /// Doomed logical instances, sorted for deterministic application.
    deletes: Vec<(NodeId, u32)>,
}

impl LogicalBatch {
    /// Resolve the logical ops against one database's physical ids.
    fn resolve(&self, db: &Database) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for (node, ordinal, attr, value) in &self.writes {
            if let Some(e) = db.canonical_by_ordinal(*node, *ordinal) {
                b.write_attr(e, *attr, value.clone());
            }
        }
        for (node, ordinal) in &self.deletes {
            if let Some(e) = db.canonical_by_ordinal(*node, *ordinal) {
                b.delete(e);
            }
        }
        b
    }
}

/// Close a set of doomed logical instances under the two rules that make
/// a batch of deletes strategy-equivalent:
///
/// 1. **link closure** — a relationship instance referencing a doomed
///    participant is doomed (its links die with the participant, and in
///    schemas nesting the relationship under that participant its subtree
///    vanishes structurally);
/// 2. **subtree closure** — if *any* schema places an instance's
///    occurrence inside a doomed instance's subtree, the instance is
///    doomed everywhere (XML deletes remove whole subtrees, and different
///    strategies nest different nodes under each other).
///
/// Iterates to fixpoint, so the returned set can be deleted under all
/// seven strategies and leave logically identical databases.
fn delete_closure(
    g: &ErGraph,
    dbs: &[(Strategy, Database)],
    seeds: &BTreeSet<(NodeId, u32)>,
) -> BTreeSet<(NodeId, u32)> {
    let mut doomed = seeds.clone();
    loop {
        let before = doomed.len();
        // 1. relationship instances linked to doomed participants (the
        //    link tables are shared canonical-instance data, identical in
        //    every database — any one serves)
        if let Some((_, db0)) = dbs.first() {
            for (node, ordinal) in doomed.clone() {
                for &(e, _) in g.incident(node) {
                    let edge = g.edge(e);
                    if edge.participant == node {
                        for ro in db0.linked_rels(e, ordinal) {
                            doomed.insert((edge.rel, ro));
                        }
                    }
                }
            }
        }
        // 2. occurrences inside a doomed subtree, in any schema
        for (_, db) in dbs {
            for ci in 0..db.color_count() {
                let tree = db.color(ColorId(ci as u16));
                let occs = tree.occs();
                // document order puts parents before children, so one
                // forward pass propagates doom down every parent chain
                let mut dead = vec![false; occs.len()];
                for i in 0..occs.len() {
                    let el = db.element(db.element(occs[i].element).canonical);
                    dead[i] = doomed.contains(&(el.node, el.ordinal))
                        || occs[i].parent.is_some_and(|p| dead[p.idx()]);
                }
                for (i, o) in occs.iter().enumerate() {
                    if dead[i] {
                        let el = db.element(db.element(o.element).canonical);
                        doomed.insert((el.node, el.ordinal));
                    }
                }
            }
        }
        if doomed.len() == before {
            return doomed;
        }
    }
}

/// Execute every query of the seed's workload on one database (compiling
/// fresh, so post-update statistics drive the kernel dispatch), returning
/// per-query outcomes comparable across strategies: canonical element
/// ids are allocated identically by every materialization, so equal
/// answers are `Vec`-equal.
fn batch_answers(
    db: &Database,
    g: &ErGraph,
    queries: &[Pattern],
) -> Vec<Result<QueryResult, String>> {
    queries
        .iter()
        .map(|q| {
            compile(g, &db.schema, q)
                .and_then(|plan| execute(db, g, &plan))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Compare two answer vectors; push a divergence per mismatch. With
/// `physical` the physical tuple counts must match too (same-strategy
/// comparisons: snapshot vs serial, indexed vs reference kernels);
/// without it only the logical answer must (cross-strategy comparisons,
/// where copy counts legitimately differ).
#[allow(clippy::too_many_arguments)]
fn compare_answers(
    seed: u64,
    phase: &str,
    strategy: &str,
    reference: &str,
    physical: bool,
    queries: &[Pattern],
    got: &[Result<QueryResult, String>],
    want: &[Result<QueryResult, String>],
    divergences: &mut Vec<Divergence>,
) {
    for (i, q) in queries.iter().enumerate() {
        let ok = match (&got[i], &want[i]) {
            (Ok(a), Ok(b)) => {
                a.elements == b.elements
                    && a.distinct == b.distinct
                    && a.results >= a.distinct
                    && (!physical || a.results == b.results)
            }
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !ok {
            let render = |r: &Result<QueryResult, String>| match r {
                Ok(r) => format!("{} logical / {} physical", r.distinct, r.results),
                Err(e) => format!("refused: {e}"),
            };
            divergences.push(Divergence {
                seed,
                query: format!("{}@{phase}", q.name),
                strategy: strategy.into(),
                detail: format!(
                    "{phase} answer diverges from {reference}: {} vs {}",
                    render(&got[i]),
                    render(&want[i])
                ),
            });
        }
    }
}

/// Replay one randomized update batch under all seven strategies and
/// assert equivalence at every observation point:
///
/// * the batch (attribute writes + a delete-closed delete set, derived in
///   logical coordinates and resolved per database) commits **half at a
///   time**, and after each half all strategies must agree on every
///   workload query — the mid-batch state is a real state;
/// * a [`Snapshot`](colorist_store::Snapshot) taken before the first half
///   must keep returning the pre-batch answers, byte for byte, after both
///   commits;
/// * after the full batch, the index-accelerated answers must equal the
///   reference-kernel answers on every strategy (the delete-path
///   stale-index differential), and [`Database::check_integrity`] (S008)
///   must hold on every database.
pub fn run_batch_seed(seed: u64, cfg: &OracleConfig) -> SeedReport {
    let setup = setup_seed(seed, cfg);
    let g = &setup.graph;
    let mut divergences = Vec::new();
    let mut dbs = build_databases(&setup, seed, cfg, &mut divergences);
    for (s, db) in &dbs {
        if let Err(e) = db.check_integrity() {
            divergences.push(Divergence {
                seed,
                query: "<build>".into(),
                strategy: s.label().into(),
                detail: format!("integrity: {e}"),
            });
        }
    }

    // derive the logical batch
    let mut rng = Rng::new(seed.wrapping_mul(ORACLE_STREAM) ^ 0xBA7C4);
    let entities: Vec<NodeId> = g.entity_nodes().collect();
    let pick_instance = |rng: &mut Rng, db: &Database| {
        let node = entities[rng.below(entities.len() as u64) as usize];
        let count = db.ordinal_count(node);
        (node, rng.below(count.max(1) as u64) as u32)
    };
    let (writes, first_deletes, rest_deletes) = match dbs.first() {
        None => (Vec::new(), BTreeSet::new(), BTreeSet::new()),
        Some((_, db0)) => {
            let mut writes = Vec::new();
            for _ in 0..(2 + rng.below(4)) {
                let (node, ordinal) = pick_instance(&mut rng, db0);
                // entity attrs are [id, label, size]; write the non-key ones
                let (attr, value) = if rng.below(2) == 0 {
                    (1, Value::Text(format!("w{}", rng.below(1000))))
                } else {
                    (2, Value::Int(rng.range_i64(-500, 1500)))
                };
                writes.push((node, ordinal, attr, value));
            }
            let mut first = BTreeSet::new();
            let mut rest = BTreeSet::new();
            let n_deletes = 2 + rng.below(3);
            for i in 0..n_deletes {
                let inst = pick_instance(&mut rng, db0);
                if i < n_deletes / 2 + 1 {
                    first.insert(inst);
                } else {
                    rest.insert(inst);
                }
            }
            (writes, first, rest)
        }
    };
    // each cumulative delete set must be delete-closed, or the mid-batch
    // state itself would be strategy-dependent
    let closed_first = delete_closure(g, &dbs, &first_deletes);
    let all_seeds: BTreeSet<(NodeId, u32)> = first_deletes.union(&rest_deletes).copied().collect();
    let closed_all = delete_closure(g, &dbs, &all_seeds);
    let doomed_rest: Vec<(NodeId, u32)> = closed_all.difference(&closed_first).copied().collect();
    let live_writes: Vec<_> =
        writes.iter().filter(|(n, o, _, _)| !closed_all.contains(&(*n, *o))).cloned().collect();
    let mid = writes.len() / 2;
    let half1 = LogicalBatch {
        writes: live_writes.iter().take(mid).cloned().collect(),
        deletes: closed_first.iter().copied().collect(),
    };
    let half2 = LogicalBatch {
        writes: live_writes.iter().skip(mid).cloned().collect(),
        deletes: doomed_rest,
    };

    // pre-batch serial answers + one snapshot per strategy
    let queries = &setup.queries;
    let pre: Vec<Vec<Result<QueryResult, String>>> =
        dbs.iter().map(|(_, db)| batch_answers(db, g, queries)).collect();
    let snapshots: Vec<_> = dbs.iter().map(|(_, db)| db.snapshot()).collect();

    for (phase, batch) in [("mid-batch", &half1), ("post-batch", &half2)] {
        let mut reference: Option<(String, Vec<Result<QueryResult, String>>)> = None;
        for (i, (s, db)) in dbs.iter_mut().enumerate() {
            let resolved = batch.resolve(db);
            if let Err(e) = resolved.apply(db, g) {
                divergences.push(Divergence {
                    seed,
                    query: format!("<batch@{phase}>"),
                    strategy: s.label().into(),
                    detail: format!("batch rejected: {e}"),
                });
                continue;
            }
            if let Err(e) = db.check_integrity() {
                divergences.push(Divergence {
                    seed,
                    query: format!("<batch@{phase}>"),
                    strategy: s.label().into(),
                    detail: format!("integrity after commit: {e}"),
                });
            }
            // the pre-batch snapshot must be immune to both commits
            let snap_answers: Vec<Result<QueryResult, String>> = queries
                .iter()
                .map(|q| {
                    compile(g, &snapshots[i].schema, q)
                        .and_then(|plan| execute_snapshot(&snapshots[i], g, &plan))
                        .map_err(|e| e.to_string())
                })
                .collect();
            compare_answers(
                seed,
                &format!("snapshot-{phase}"),
                s.label(),
                "pre-batch serial",
                true,
                queries,
                &snap_answers,
                &pre[i],
                &mut divergences,
            );
            // all strategies must agree on the committed state
            let now = batch_answers(db, g, queries);
            // the stale-index differential: reference kernels see the
            // same post-delete world as the index-backed fast paths
            db.set_reference_kernels(true);
            let ref_now = batch_answers(db, g, queries);
            db.set_reference_kernels(false);
            compare_answers(
                seed,
                &format!("kernels-{phase}"),
                s.label(),
                "reference kernels",
                true,
                queries,
                &now,
                &ref_now,
                &mut divergences,
            );
            match &reference {
                None => reference = Some((s.label().into(), now)),
                Some((ref_label, ref_answers)) => compare_answers(
                    seed,
                    phase,
                    s.label(),
                    ref_label,
                    false,
                    queries,
                    &now,
                    ref_answers,
                    &mut divergences,
                ),
            }
        }
    }

    SeedReport { seed, feasible: setup.feasible, queries_run: setup.queries.len(), divergences }
}

/// Run `count` batch-replay seeds starting at `start` on up to `threads`
/// workers. Deterministic for any worker count, like [`run_seeds`].
pub fn run_batch_seeds(start: u64, count: u64, cfg: &OracleConfig, threads: usize) -> OracleReport {
    let cfg = cfg.clone();
    let reports = par_map(count as usize, threads, move |i| run_batch_seed(start + i as u64, &cfg));
    OracleReport { reports }
}

/// The outcome of one independence seed: one random pair of logical
/// batches, certified (B003) and replayed under every strategy.
#[derive(Debug, Clone)]
pub struct IndependenceSeedReport {
    /// The seed replayed by [`run_independence_seed`].
    pub seed: u64,
    /// Strategies whose batch pair certified independent.
    pub independent: usize,
    /// Strategies whose batch pair certified conflicting.
    pub conflicting: usize,
    /// Conflicting certificates whose witness key was dynamically
    /// touched by both batches, or whose commit order observably
    /// mattered — the numerator of the precision ratio.
    pub genuine: usize,
    /// All divergences observed (empty on a clean seed).
    pub divergences: Vec<Divergence>,
}

/// Aggregate over an independence seed range.
#[derive(Debug, Clone)]
pub struct IndependenceReport {
    /// Per-seed outcomes, in seed order.
    pub reports: Vec<IndependenceSeedReport>,
}

impl IndependenceReport {
    /// All divergences across the range, in seed order.
    pub fn divergences(&self) -> Vec<&Divergence> {
        self.reports.iter().flat_map(|r| r.divergences.iter()).collect()
    }

    /// Pairs certified independent across all seeds and strategies.
    pub fn independent(&self) -> usize {
        self.reports.iter().map(|r| r.independent).sum()
    }

    /// Pairs certified conflicting across all seeds and strategies.
    pub fn conflicting(&self) -> usize {
        self.reports.iter().map(|r| r.conflicting).sum()
    }

    /// Conflicting pairs whose conflict was dynamically genuine.
    pub fn genuine(&self) -> usize {
        self.reports.iter().map(|r| r.genuine).sum()
    }
}

impl fmt::Display for IndependenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let divs = self.divergences();
        let conflicting = self.conflicting();
        writeln!(
            f,
            "independence: {} seeds x {} strategies, {} pairs independent (committed both \
             orders), {} conflicting ({}/{conflicting} genuine), {} divergence(s)",
            self.reports.len(),
            Strategy::ALL.len(),
            self.independent(),
            conflicting,
            self.genuine(),
            divs.len()
        )?;
        for d in divs {
            writeln!(f, "  DIVERGENCE {d}")?;
        }
        Ok(())
    }
}

/// Derive one independence seed's pair of logical batches: each batch
/// writes the integer measure of a few random instances and dooms at
/// most one (delete-closed) instance. Writes are integer-valued on
/// purpose — text writes would intern fresh symbols and certify nearly
/// every pair conflicting on the symbol table.
fn independence_pair(
    rng: &mut Rng,
    g: &ErGraph,
    dbs: &[(Strategy, Database)],
) -> (LogicalBatch, LogicalBatch) {
    let entities: Vec<NodeId> = g.entity_nodes().collect();
    let db0 = &dbs[0].1;
    let batch = |rng: &mut Rng| {
        let mut targets = BTreeSet::new();
        for _ in 0..(1 + rng.below(3)) {
            let node = entities[rng.below(entities.len() as u64) as usize];
            let count = db0.ordinal_count(node);
            targets.insert((node, rng.below(count.max(1) as u64) as u32));
        }
        let writes: Vec<_> = targets
            .iter()
            .map(|&(n, o)| (n, o, 2usize, Value::Int(rng.range_i64(-500, 1500))))
            .collect();
        let mut doom_seeds = BTreeSet::new();
        if rng.below(2) == 1 {
            let node = entities[rng.below(entities.len() as u64) as usize];
            let count = db0.ordinal_count(node);
            doom_seeds.insert((node, rng.below(count.max(1) as u64) as u32));
        }
        let doomed = delete_closure(g, dbs, &doom_seeds);
        LogicalBatch {
            // a batch may not write what it deletes itself (validation
            // would reject it); writing what the *other* batch deletes
            // is exactly the conflict case the certificates must catch
            writes: writes.into_iter().filter(|(n, o, _, _)| !doomed.contains(&(*n, *o))).collect(),
            deletes: doomed.into_iter().collect(),
        }
    };
    let a = batch(rng);
    let b = batch(rng);
    (a, b)
}

/// Replay one random batch pair under all seven strategies and hold the
/// B002–B004 machinery to its contract:
///
/// * both batches are statically analyzed against the pre-state and
///   certified pairwise ([`certify`], B003);
/// * a pair certified **independent** commits in both orders (every
///   apply shadow-tracked, so B002 containment is checked in release
///   builds too) and the two final databases must be byte-identical —
///   extents, trees, indexes, statistics, **and epoch**; the
///   index-accelerated and reference kernels must then agree on the
///   whole workload; every pre-state plan whose read footprint
///   ([`plan_read_footprint`]) is disjoint from both write footprints
///   must return the pre-state answers on the committed database
///   (B004); and the [`CommitScheduler`] must group the pair into two
///   singleton classes whose commit lands on the same state as the
///   serial order;
/// * a pair certified **conflicting** is applied each-alone and in both
///   orders to grade the certificate's precision: the conflict is
///   *genuine* when both executions touch the witness key, an order
///   rejects a batch, or the two orders end in different states.
pub fn run_independence_seed(seed: u64, cfg: &OracleConfig) -> IndependenceSeedReport {
    let setup = setup_seed(seed, cfg);
    let g = &setup.graph;
    let mut divergences = Vec::new();
    let dbs = build_databases(&setup, seed, cfg, &mut divergences);
    let (mut independent, mut conflicting, mut genuine) = (0usize, 0usize, 0usize);
    if dbs.is_empty() {
        return IndependenceSeedReport { seed, independent, conflicting, genuine, divergences };
    }

    let mut rng = Rng::new(seed.wrapping_mul(ORACLE_STREAM) ^ 0x1DE9E2);
    let (la, lb) = independence_pair(&mut rng, g, &dbs);
    let queries = &setup.queries;

    for (s, db) in &dbs {
        let ba = la.resolve(db);
        let bb = lb.resolve(db);
        let ea = analyze_batch(&ba, db, g);
        let eb = analyze_batch(&bb, db, g);
        let mk = |phase: &str, detail: String| Divergence {
            seed,
            query: format!("<independence@{phase}>"),
            strategy: s.label().into(),
            detail,
        };
        // apply one batch on a clone with the shadow tracker on; B002
        // containment failures become divergences even in release builds
        let apply_checked = |target: &mut Database,
                             batch: &UpdateBatch,
                             which: &str,
                             divs: &mut Vec<Divergence>|
         -> Result<colorist_store::TouchedSet, String> {
            match batch.apply_verified(target, g) {
                Ok((_, analysis, touched)) => {
                    if let Err(msg) = analysis.footprint.covers(&touched) {
                        divs.push(mk("B002", format!("batch {which}: {msg}")));
                    }
                    Ok(touched)
                }
                Err(e) => Err(e.to_string()),
            }
        };
        match certify(&ea.footprint, &eb.footprint) {
            Certificate::Independent => {
                independent += 1;
                let mut db_ab = db.clone();
                let mut db_ba = db.clone();
                let mut failed = false;
                for (target, order) in [(&mut db_ab, ["A", "B"]), (&mut db_ba, ["B", "A"])] {
                    for which in order {
                        let batch = if which == "A" { &ba } else { &bb };
                        if let Err(e) = apply_checked(target, batch, which, &mut divergences) {
                            divergences.push(mk(
                                "B003",
                                format!(
                                    "certified independent, but batch {which} was rejected: {e}"
                                ),
                            ));
                            failed = true;
                        }
                    }
                }
                if failed {
                    continue;
                }
                // commutativity: both orders must land on the same bytes
                if let Err(msg) = db_ab.same_state(&db_ba, true) {
                    divergences.push(mk("B003", format!("certified independent, but {msg}")));
                }
                // both kernel families must agree on the committed state
                let now = batch_answers(&db_ab, g, queries);
                db_ab.set_reference_kernels(true);
                let ref_now = batch_answers(&db_ab, g, queries);
                db_ab.set_reference_kernels(false);
                compare_answers(
                    seed,
                    "independence-kernels",
                    s.label(),
                    "reference kernels",
                    true,
                    queries,
                    &now,
                    &ref_now,
                    &mut divergences,
                );
                // B004: plans reading nothing either batch wrote answer
                // identically before and after the commit
                for q in queries {
                    let Ok(plan) = compile(g, &db.schema, q) else { continue };
                    let reads = plan_read_footprint(g, &db.schema, &plan);
                    if ea.footprint.invalidates(&reads).is_some()
                        || eb.footprint.invalidates(&reads).is_some()
                    {
                        continue;
                    }
                    let pre = execute(db, g, &plan).map_err(|e| e.to_string());
                    let post = execute(&db_ab, g, &plan).map_err(|e| e.to_string());
                    let ok = match (&pre, &post) {
                        (Ok(a), Ok(b)) => {
                            a.elements == b.elements
                                && a.results == b.results
                                && a.distinct == b.distinct
                        }
                        (Err(a), Err(b)) => a == b,
                        _ => false,
                    };
                    if !ok {
                        divergences.push(Divergence {
                            seed,
                            query: q.name.clone(),
                            strategy: s.label().into(),
                            detail: "B004 violated: both write footprints are disjoint from the \
                                     plan's read footprint, but the committed state changed its \
                                     answer"
                                .into(),
                        });
                    }
                }
                // the scheduler must see two singleton classes and land
                // on the serial state (epochs differ: one bump per class
                // vs per-phase bumps inside a serial apply)
                let mut sched = CommitScheduler::new();
                sched.stage(ba.clone());
                sched.stage(bb.clone());
                let mut db_sched = db.clone();
                match sched.commit(&mut db_sched, g) {
                    Ok(groups) => {
                        if groups.len() != 2 {
                            divergences.push(mk(
                                "scheduler",
                                format!(
                                    "independent pair group-committed as {} class(es), expected 2",
                                    groups.len()
                                ),
                            ));
                        }
                        if let Err(msg) = db_sched.same_state(&db_ab, false) {
                            divergences.push(mk(
                                "scheduler",
                                format!("group commit diverges from serial: {msg}"),
                            ));
                        }
                    }
                    Err((i, e)) => divergences
                        .push(mk("scheduler", format!("group commit rejected stage {i}: {e}"))),
                }
            }
            Certificate::Conflicting { witness, .. } => {
                conflicting += 1;
                // each batch alone, from the pre-state: does the dynamic
                // execution actually touch the witness key on both sides?
                let mut alone_a = db.clone();
                let mut alone_b = db.clone();
                let ta = apply_checked(&mut alone_a, &ba, "A", &mut divergences);
                let tb = apply_checked(&mut alone_b, &bb, "B", &mut divergences);
                let witness_hit = match (&ta, &tb) {
                    (Ok(ta), Ok(tb)) => ta.contains(&witness) && tb.contains(&witness),
                    _ => false,
                };
                // both orders: does the order observably matter?
                let mut db_ab = db.clone();
                let mut db_ba = db.clone();
                let ab = ba.apply(&mut db_ab, g).and_then(|_| bb.apply(&mut db_ab, g));
                let ba_order = bb.apply(&mut db_ba, g).and_then(|_| ba.apply(&mut db_ba, g));
                let order_effect = match (&ab, &ba_order) {
                    (Ok(_), Ok(_)) => db_ab.same_state(&db_ba, true).is_err(),
                    _ => true,
                };
                if witness_hit || order_effect {
                    genuine += 1;
                }
            }
        }
    }

    IndependenceSeedReport { seed, independent, conflicting, genuine, divergences }
}

/// The per-strategy effect-analysis view of one independence seed's
/// batch pair — what `colorist-lint --batch` prints. Returns the report
/// text and the number of diagnostics in it (design failures plus B001
/// conflict localizations; footprint summaries, B003 certificates, and
/// B004 invalidation verdicts are informational).
pub fn batch_effect_text(seed: u64, cfg: &OracleConfig) -> (String, usize) {
    use fmt::Write as _;
    let setup = setup_seed(seed, cfg);
    let g = &setup.graph;
    let mut divergences = Vec::new();
    let dbs = build_databases(&setup, seed, cfg, &mut divergences);
    let mut out = String::new();
    let mut diags = divergences.len();
    for d in &divergences {
        let _ = writeln!(out, "{d}");
    }
    if dbs.is_empty() {
        return (out, diags);
    }
    let mut rng = Rng::new(seed.wrapping_mul(ORACLE_STREAM) ^ 0x1DE9E2);
    let (la, lb) = independence_pair(&mut rng, g, &dbs);
    for (s, db) in &dbs {
        let ba = la.resolve(db);
        let bb = lb.resolve(db);
        let ea = analyze_batch(&ba, db, g);
        let eb = analyze_batch(&bb, db, g);
        for (which, batch, analysis) in [("A", &ba, &ea), ("B", &bb, &eb)] {
            let _ = writeln!(
                out,
                "seed {seed} [{}] batch {which}: {} op(s), footprint {}",
                s.label(),
                batch.len(),
                analysis.footprint.summary()
            );
            for d in &analysis.diags {
                let _ = writeln!(out, "seed {seed} [{}] batch {which}: {d}", s.label());
                diags += 1;
            }
        }
        let _ =
            writeln!(out, "seed {seed} [{}] {}", s.label(), certify(&ea.footprint, &eb.footprint));
        let (mut immune, mut total) = (0usize, 0usize);
        for q in &setup.queries {
            let Ok(plan) = compile(g, &db.schema, q) else { continue };
            total += 1;
            let reads = plan_read_footprint(g, &db.schema, &plan);
            match ea.footprint.invalidates(&reads).or_else(|| eb.footprint.invalidates(&reads)) {
                None => immune += 1,
                Some(k) => {
                    let _ = writeln!(
                        out,
                        "seed {seed} [{}] {}: B004: the pair invalidates the plan's reads on {k}",
                        s.label(),
                        q.name
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "seed {seed} [{}] B004: {immune}/{total} workload plans immune to the pair",
            s.label()
        );
    }
    (out, diags)
}

/// Run `count` independence seeds starting at `start` on up to
/// `threads` workers. Deterministic for any worker count.
pub fn run_independence_seeds(
    start: u64,
    count: u64,
    cfg: &OracleConfig,
    threads: usize,
) -> IndependenceReport {
    let cfg = cfg.clone();
    let reports =
        par_map(count as usize, threads, move |i| run_independence_seed(start + i as u64, &cfg));
    IndependenceReport { reports }
}

/// Entity / relationship node kinds exercised by the generator — used by
/// the binary's summary line.
pub fn diagram_shape(g: &ErGraph) -> (usize, usize) {
    let ents = g.nodes().iter().filter(|n| n.kind == NodeKind::Entity).count();
    (ents, g.node_count() - ents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_seed_is_deterministic() {
        let cfg = OracleConfig::default();
        let a = run_seed(7, &cfg);
        let b = run_seed(7, &cfg);
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.queries_run, b.queries_run);
        assert_eq!(a.divergences.len(), b.divergences.len());
    }

    #[test]
    fn parallel_range_matches_serial() {
        let cfg = OracleConfig { scale: 8, queries: 3, ..OracleConfig::default() };
        let serial = run_seeds(0, 6, &cfg, 1);
        let par = run_seeds(0, 6, &cfg, 4);
        assert_eq!(serial.reports.len(), par.reports.len());
        for (a, b) in serial.reports.iter().zip(&par.reports) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.queries_run, b.queries_run);
            assert_eq!(a.divergences.len(), b.divergences.len());
        }
    }

    #[test]
    fn generator_mixes_feasible_and_infeasible_diagrams() {
        let cfg = OracleConfig::default();
        let mut feasible = 0;
        let mut infeasible = 0;
        for seed in 0..32 {
            let setup = setup_seed(seed, &cfg);
            if setup.feasible {
                feasible += 1;
            } else {
                infeasible += 1;
            }
            assert!(!setup.queries.is_empty(), "seed {seed} generated no queries");
        }
        assert!(feasible > 0, "Theorem 4.1-feasible diagrams must occur");
        assert!(infeasible > 0, "infeasible diagrams must occur");
    }

    #[test]
    fn independence_seeds_certify_and_commute() {
        let cfg = OracleConfig { scale: 8, queries: 3, ..OracleConfig::default() };
        let rep = run_independence_seeds(0, 8, &cfg, 2);
        assert!(rep.divergences().is_empty(), "{rep}");
        assert!(rep.independent() + rep.conflicting() > 0, "{rep}");
        let serial = run_independence_seeds(0, 8, &cfg, 1);
        assert_eq!(rep.independent(), serial.independent());
        assert_eq!(rep.conflicting(), serial.conflicting());
        assert_eq!(rep.genuine(), serial.genuine());
    }

    #[test]
    fn replay_text_describes_a_seed() {
        let cfg = OracleConfig { scale: 6, queries: 2, ..OracleConfig::default() };
        let text = replay_text(3, &cfg);
        assert!(text.contains("seed 3"), "{text}");
        assert!(text.contains("query "), "{text}");
    }
}

//! The XMark-emulated workload: 28 query templates (8 updates),
//! instantiated against any ER diagram.
//!
//! The paper had no workloads for its collected ER diagrams, so it
//! "generated a query workload for each ER diagram, based on emulating the
//! XMark set of queries through identifying correspondences between schema
//! elements". We do the same mechanically: the XMark shapes (point
//! queries, selections, parent-child chases, deep chains, M:N traversals,
//! star joins, grouping, plus inserts/deletes/modifies) are instantiated
//! on each diagram by picking, deterministically, the nodes and
//! associations that fit each shape.

use crate::suite::Workload;
use colorist_er::{
    Association, Cardinality, Domain, EligibleAssociations, ErGraph, NodeId, NodeKind,
};
use colorist_query::{
    CmpOp, InsertLink, InsertSpec, NewInstance, Partner, Pattern, PatternBuilder, UpdateAction,
    UpdateSpec,
};
use colorist_store::Value;

/// Instantiate the 28-query workload (20 reads + 8 updates) on a diagram.
pub fn workload(graph: &ErGraph) -> Workload {
    let eligible = EligibleAssociations::enumerate_default(graph);
    let mut reads = Vec::new();
    let mut n = 0usize;
    let mut next = |prefix: &str| {
        n += 1;
        format!("{prefix}{n}")
    };

    // longest association per distinct (source, target) pair, longest first
    let mut reps: Vec<&Association> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<&Association> = eligible.iter().collect();
        all.sort_by_key(|a| (std::cmp::Reverse(a.len()), a.source, a.target));
        for a in all {
            if seen.insert((a.source, a.target)) {
                reps.push(a);
            }
        }
    }
    let entities: Vec<NodeId> = graph.entity_nodes().collect();

    // X1/X2: point query + selection on the first entities
    for (i, &e) in entities.iter().take(2).enumerate() {
        reads.push(point_query(graph, &next("X"), e, i as i64 + 1));
    }
    // X3/X4: attribute-range selections
    for &e in entities.iter().skip(2).take(2) {
        if let Some(q) = range_query(graph, &next("X"), e) {
            reads.push(q);
        }
    }
    // chain chases over the longest distinct associations (down), with
    // alternating predicate styles
    let mut rep_iter = reps.iter();
    while reads.len() < 12 {
        match rep_iter.next() {
            Some(a) => reads.push(chain_query(graph, &next("X"), a, false)),
            None => break,
        }
    }
    // reversed chases (output the "one" side)
    let mut rev_iter = reps.iter();
    while reads.len() < 15 {
        match rev_iter.next() {
            Some(a) if a.len() >= 2 => reads.push(chain_query(graph, &next("X"), a, true)),
            Some(_) => {}
            None => break,
        }
    }
    // M:N traversals (both directions) across many-many relationships
    for r in graph.many_many_relationships() {
        if reads.len() >= 17 {
            break;
        }
        let parts: Vec<NodeId> = graph.incident(r).iter().map(|&(_, p)| p).collect();
        if let [a, b] = parts[..] {
            reads.push(mn_query(graph, &next("X"), a, r, b));
            reads.push(mn_query(graph, &next("X"), b, r, a));
        }
    }
    // star: two associations sharing a source
    if let Some(q) = star_query(graph, &reps, &next("X")) {
        reads.push(q);
    }
    // group-by on a chain target
    if let Some(a) = reps.first() {
        if let Some(q) = group_query(graph, a, &next("X")) {
            reads.push(q);
        }
    }
    // pad to 20 with further selections / chains cycling the material
    let mut pad = 0usize;
    while reads.len() < 20 {
        let e = entities[pad % entities.len()];
        reads.push(point_query(graph, &next("X"), e, (pad as i64 % 7) + 2));
        pad += 1;
    }
    reads.truncate(20);

    // 8 updates: 3 modifies, 2 deletes, 3 inserts
    let mut updates = Vec::new();
    let mut un = 0usize;
    let mut unext = || {
        un += 1;
        format!("XU{un}")
    };
    for (i, &e) in entities.iter().take(3).enumerate() {
        if let Some(u) = modify_update(graph, &unext(), e, i as i64) {
            updates.push(u);
        }
    }
    for &e in entities.iter().rev().take(2) {
        updates.push(delete_update(graph, &unext(), e));
    }
    let rels: Vec<NodeId> = graph.relationship_nodes().collect();
    for &r in &rels {
        if updates.len() >= 8 {
            break;
        }
        if let Some(u) = insert_update(graph, &unext(), r) {
            updates.push(u);
        }
    }
    // pad updates with modifies if the diagram is short on material
    let mut pad = 0usize;
    while updates.len() < 8 {
        let e = entities[pad % entities.len()];
        if let Some(u) = modify_update(graph, &unext(), e, pad as i64 + 3) {
            updates.push(u);
        }
        pad += 1;
    }

    Workload { name: format!("xmark@{}", graph.name), reads, updates, indifferent: Vec::new() }
}

fn key_attr(graph: &ErGraph, n: NodeId) -> Option<usize> {
    graph.node(n).attributes.iter().position(|a| a.is_key)
}

fn point_query(graph: &ErGraph, name: &str, e: NodeId, k: i64) -> Pattern {
    let mut b = PatternBuilder::new(graph, name).node(&graph.node(e).name);
    if let Some(i) = key_attr(graph, e) {
        let attr = graph.node(e).attributes[i].name.clone();
        b = b.pred_eq(&attr, Value::Int(k));
    }
    b.output(0).build().expect("point query")
}

fn range_query(graph: &ErGraph, name: &str, e: NodeId) -> Option<Pattern> {
    let node = graph.node(e);
    let (i, attr) = node
        .attributes
        .iter()
        .enumerate()
        .find(|(_, a)| !a.is_key && matches!(a.domain, Domain::Float | Domain::Integer))?;
    let value = match attr.domain {
        Domain::Float => Value::Float(5000.0),
        _ => Value::Int(500),
    };
    let _ = i;
    Some(
        PatternBuilder::new(graph, name)
            .node(&node.name)
            .pred(&attr.name, CmpOp::Gt, value)
            .output(0)
            .build()
            .expect("range query"),
    )
}

fn via_names(graph: &ErGraph, a: &Association) -> Vec<String> {
    a.nodes[1..a.nodes.len() - 1].iter().map(|&n| graph.node(n).name.clone()).collect()
}

fn chain_query(graph: &ErGraph, name: &str, a: &Association, reversed: bool) -> Pattern {
    let (pred_node, out_node) = if reversed { (a.target, a.source) } else { (a.source, a.target) };
    let mut b = PatternBuilder::new(graph, name).node(&graph.node(pred_node).name);
    if let Some(i) = key_attr(graph, pred_node) {
        let attr = graph.node(pred_node).attributes[i].name.clone();
        b = b.pred_eq(&attr, Value::Int(1));
    }
    b = b.node(&graph.node(out_node).name);
    let via: Vec<String> = if reversed {
        via_names(graph, a).into_iter().rev().collect()
    } else {
        via_names(graph, a)
    };
    let via_refs: Vec<&str> = via.iter().map(String::as_str).collect();
    b.chain(0, 1, &via_refs)
        .expect("chain follows the ER path")
        .output(1)
        .distinct()
        .build()
        .expect("chain query")
}

fn mn_query(graph: &ErGraph, name: &str, from: NodeId, rel: NodeId, to: NodeId) -> Pattern {
    let mut b = PatternBuilder::new(graph, name).node(&graph.node(from).name);
    if let Some(i) = key_attr(graph, from) {
        let attr = graph.node(from).attributes[i].name.clone();
        b = b.pred_eq(&attr, Value::Int(2));
    }
    b.node(&graph.node(to).name)
        .chain(0, 1, &[&graph.node(rel).name])
        .expect("m:n chain")
        .output(1)
        .distinct()
        .build()
        .expect("m:n query")
}

fn star_query(graph: &ErGraph, reps: &[&Association], name: &str) -> Option<Pattern> {
    // two associations out of the same source with distinct targets
    let (a, b2) = reps.iter().enumerate().find_map(|(i, a)| {
        reps[i + 1..]
            .iter()
            .find(|b| b.source == a.source && b.target != a.target && b.path[0] != a.path[0])
            .map(|b| (*a, *b))
    })?;
    let src = a.source;
    let via_a = via_names(graph, a);
    let via_b = via_names(graph, b2);
    let mut builder = PatternBuilder::new(graph, name)
        .node(&graph.node(src).name)
        .node(&graph.node(a.target).name)
        .node(&graph.node(b2.target).name);
    // predicates on the branch targets
    for (idx, tgt) in [(1usize, a.target), (2, b2.target)] {
        let _ = idx;
        let _ = tgt;
    }
    let ra: Vec<&str> = via_a.iter().map(String::as_str).collect();
    let rb: Vec<&str> = via_b.iter().map(String::as_str).collect();
    builder = builder.chain(0, 1, &ra).ok()?.chain(0, 2, &rb).ok()?;
    // key predicates on targets for selectivity
    let mut p = builder.output(0).distinct().build().ok()?;
    for (i, tgt) in [(1usize, a.target), (2usize, b2.target)] {
        if let Some(k) = key_attr(graph, tgt) {
            p.nodes[i].predicate =
                Some(colorist_query::Predicate { attr: k, op: CmpOp::Lt, value: Value::Int(6) });
        }
    }
    Some(p)
}

fn group_query(graph: &ErGraph, a: &Association, name: &str) -> Option<Pattern> {
    let tgt = graph.node(a.target);
    let attr = tgt.attributes.iter().find(|x| !x.is_key && x.domain == Domain::Text)?;
    let via = via_names(graph, a);
    let refs: Vec<&str> = via.iter().map(String::as_str).collect();
    PatternBuilder::new(graph, name)
        .node(&graph.node(a.source).name)
        .node(&tgt.name)
        .chain(0, 1, &refs)
        .ok()?
        .output(1)
        .distinct()
        .group_by(&attr.name)
        .build()
        .ok()
}

fn modify_update(graph: &ErGraph, name: &str, e: NodeId, k: i64) -> Option<UpdateSpec> {
    let node = graph.node(e);
    let (attr_idx, attr) = node.attributes.iter().enumerate().find(|(_, a)| !a.is_key)?;
    let key = node.attributes.get(key_attr(graph, e)?)?.name.clone();
    let value = match attr.domain {
        Domain::Float => Value::Float(1.25),
        Domain::Integer => Value::Int(42),
        _ => Value::Text("updated".into()),
    };
    Some(UpdateSpec {
        name: name.to_string(),
        pattern: PatternBuilder::new(graph, name)
            .node(&node.name)
            .pred_eq(&key, Value::Int(k))
            .output(0)
            .build()
            .ok()?,
        action: UpdateAction::Modify { attr: attr_idx, value },
    })
}

fn delete_update(graph: &ErGraph, name: &str, e: NodeId) -> UpdateSpec {
    let node = graph.node(e);
    let mut b = PatternBuilder::new(graph, name).node(&node.name);
    if let Some(i) = key_attr(graph, e) {
        let attr = node.attributes[i].name.clone();
        b = b.pred_eq(&attr, Value::Int(3));
    }
    UpdateSpec {
        name: name.to_string(),
        pattern: b.output(0).build().expect("delete locator"),
        action: UpdateAction::Delete,
    }
}

/// Insert a fresh instance of one endpoint of `rel`, linked to ordinal 0 of
/// the other endpoint. Prefers inserting the side that participates once
/// (a "child" instance, like a new order), matching XMark's inserts.
fn insert_update(graph: &ErGraph, name: &str, rel: NodeId) -> Option<UpdateSpec> {
    let edges: Vec<_> = graph
        .incident(rel)
        .iter()
        .filter(|&&(e, _)| graph.edge(e).rel == rel)
        .map(|&(e, p)| (e, p))
        .collect();
    if edges.len() != 2 {
        return None;
    }
    // the inserted side: prefer cardinality One; entity endpoints only
    let (self_side, partner_side) = {
        let (e0, e1) = (edges[0], edges[1]);
        let one0 = graph.edge(e0.0).cardinality == Cardinality::One;
        if one0 {
            (e0, e1)
        } else {
            (e1, e0)
        }
    };
    if graph.node(self_side.1).kind != NodeKind::Entity
        || graph.node(partner_side.1).kind != NodeKind::Entity
    {
        return None; // higher-order relationship: skip
    }
    let node = graph.node(self_side.1);
    let attrs: Vec<Value> = node
        .attributes
        .iter()
        .map(|a| match a.domain {
            Domain::Integer => Value::Int(8_000_000),
            Domain::Float => Value::Float(8.5),
            _ => Value::Text("inserted".into()),
        })
        .collect();
    let partner_name = graph.node(partner_side.1).name.clone();
    let key = graph.node(partner_side.1).attributes.first()?.name.clone();
    Some(UpdateSpec {
        name: name.to_string(),
        pattern: PatternBuilder::new(graph, name)
            .node(&partner_name)
            .pred_eq(&key, Value::Int(0))
            .output(0)
            .build()
            .ok()?,
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![NewInstance {
                node: self_side.1,
                attrs,
                links: vec![InsertLink {
                    rel,
                    self_edge: self_side.0,
                    partner_edge: partner_side.0,
                    partner: Partner::Matched(0),
                }],
            }],
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn every_catalog_diagram_gets_28_queries() {
        for name in catalog::COLLECTION {
            let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
            let w = workload(&g);
            assert_eq!(w.reads.len(), 20, "{name}");
            assert_eq!(w.updates.len(), 8, "{name}");
        }
    }

    #[test]
    fn deterministic() {
        let g = ErGraph::from_diagram(&catalog::er5()).unwrap();
        let a = workload(&g);
        let b = workload(&g);
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn uses_find_edge_helper_for_mn() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
        let ol = g.node_by_name("order_line").unwrap();
        let order = g.node_by_name("order").unwrap();
        assert!(colorist_query::pattern::find_edge(&g, ol, order, None).is_some());
    }
}

//! # colorist-workload — the paper's evaluation workloads
//!
//! §6 evaluates the schema families on three workloads:
//!
//! * [`tpcw`] — the TPC-W benchmark: 16 queries (Q1–Q13, U1–U3), of which
//!   4 are indifferent to schema choice; the remaining 12 are reported in
//!   Table 1 and Figures 8–11;
//! * [`xmark`] — an XMark-emulated workload: 28 query templates (8 of them
//!   updates) instantiated against *any* ER diagram "through identifying
//!   correspondences between schema elements", used on the ER collection
//!   (Figures 12–14);
//! * [`derby`] — the Database-Derby-style real-world diagram ships its own
//!   20-query workload (8 updates), like the contest schema the paper used.
//!
//! [`suite`] runs a workload against every schema of a diagram over one
//! shared canonical instance and collects the per-query metrics, storage
//! statistics, and geometric means that the benchmark binaries print.
//!
//! [`oracle`] turns the paper's information-equivalence guarantee into a
//! differential-testing oracle: random diagrams, shared data, random
//! queries, all seven strategies — any answer disagreement is a bug.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derby;
pub mod oracle;
pub mod suite;
pub mod tpcw;
pub mod xmark;

pub use oracle::{
    compile_seed, run_seed, run_seeds, Divergence, MinimizedCase, OracleConfig, OracleReport,
    SeedCorpus, SeedReport,
};
pub use suite::{geo_mean, suite_threads, EstTotals, QueryKind, QueryRun, SuiteResult, Workload};

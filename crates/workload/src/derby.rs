//! The Database-Derby workload: 20 queries (12 reads, 8 updates) over the
//! Derby-like manufacturing diagram — standing in for the real 1985 contest
//! schema and query set, which is not available (see `colorist-er`'s
//! catalog notes).

use crate::suite::Workload;
use colorist_er::{ErGraph, NodeId};
use colorist_query::pattern::find_edge;
#[allow(unused_imports)]
use colorist_query::{
    CmpOp, InsertLink, InsertSpec, NewInstance, Partner, Pattern, PatternBuilder, UpdateAction,
    UpdateSpec,
};
use colorist_store::Value;

fn t(s: &str) -> Value {
    Value::Text(s.to_string())
}

/// Build the Derby workload against the Derby ER graph.
#[allow(clippy::vec_init_then_push)] // one commented push per paper query
pub fn workload(g: &ErGraph) -> Workload {
    let b = |name: &str| PatternBuilder::new(g, name);
    let mut reads: Vec<Pattern> = Vec::new();

    // D1: employees of a department
    reads.push(
        b("D1")
            .node("department")
            .pred_eq("id", Value::Int(1))
            .node("employee")
            .chain(0, 1, &["works_in"])
            .unwrap()
            .output(1)
            .build()
            .unwrap(),
    );
    // D2: dependents of employees of a department
    reads.push(
        b("D2")
            .node("department")
            .pred_eq("id", Value::Int(1))
            .node("dependent")
            .chain(0, 1, &["works_in", "employee", "has_dependent"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D3: projects of the department an employee works in
    reads.push(
        b("D3")
            .node("employee")
            .pred_eq("id", Value::Int(5))
            .node("project")
            .chain(0, 1, &["works_in", "department", "controls"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D4: employees assigned to a project (M:N)
    reads.push(
        b("D4")
            .node("project")
            .pred_eq("id", Value::Int(2))
            .node("employee")
            .chain(0, 1, &["assigned_to"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D5: parts from high-rated suppliers (M:N)
    reads.push(
        b("D5")
            .node("supplier")
            .pred("rating", CmpOp::Gt, Value::Int(800))
            .node("part")
            .chain(0, 1, &["supplies"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D6: warehouses stocking a part (M:N)
    reads.push(
        b("D6")
            .node("part")
            .pred_eq("id", Value::Int(3))
            .node("warehouse")
            .chain(0, 1, &["stocked_in"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D7: invoices of purchases placed by a firm
    reads.push(
        b("D7")
            .node("firm")
            .pred_eq("id", Value::Int(2))
            .node("invoice")
            .chain(0, 1, &["places", "purchase", "billed_by"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D8: parts included in purchases shipped from a warehouse
    reads.push(
        b("D8")
            .node("warehouse")
            .pred_eq("city", t("warehouse_city_1"))
            .node("part")
            .chain(0, 1, &["ships_from", "purchase", "includes"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D9: the manager of a department (1:1)
    reads.push(
        b("D9")
            .node("department")
            .pred_eq("id", Value::Int(1))
            .node("employee")
            .chain(0, 1, &["manages"])
            .unwrap()
            .output(1)
            .build()
            .unwrap(),
    );
    // D10: invoices of a firm's purchases, grouped by paid status
    reads.push(
        b("D10")
            .node("firm")
            .pred_eq("industry", t("firm_industry_1"))
            .node("invoice")
            .chain(0, 1, &["places", "purchase", "billed_by"])
            .unwrap()
            .output(1)
            .distinct()
            .group_by("paid")
            .build()
            .unwrap(),
    );
    // D11: employees of the department controlling a project (ascent)
    reads.push(
        b("D11")
            .node("project")
            .pred_eq("id", Value::Int(2))
            .node("employee")
            .chain(0, 1, &["controls", "department", "works_in"])
            .unwrap()
            .output(1)
            .distinct()
            .build()
            .unwrap(),
    );
    // D12: purchases by a firm that include a given part (star)
    reads.push(
        b("D12")
            .node("purchase")
            .node("firm")
            .pred_eq("id", Value::Int(1))
            .node("part")
            .pred_eq("id", Value::Int(2))
            .chain(0, 1, &["places"])
            .unwrap()
            .chain(0, 2, &["includes"])
            .unwrap()
            .output(0)
            .distinct()
            .build()
            .unwrap(),
    );

    let node = |n: &str| g.node_by_name(n).unwrap();
    let e = |rel: NodeId, part: NodeId| find_edge(g, rel, part, None).expect("derby edge");

    let mut updates: Vec<UpdateSpec> = Vec::new();
    // DU1: raise a salary
    updates.push(UpdateSpec {
        name: "DU1".into(),
        pattern: b("DU1").node("employee").pred_eq("id", Value::Int(1)).output(0).build().unwrap(),
        action: UpdateAction::Modify { attr: 3, value: Value::Float(99_000.0) },
    });
    // DU2: reprice a part
    updates.push(UpdateSpec {
        name: "DU2".into(),
        pattern: b("DU2").node("part").pred_eq("id", Value::Int(2)).output(0).build().unwrap(),
        action: UpdateAction::Modify { attr: 4, value: Value::Float(3.5) },
    });
    // DU3: re-budget a department
    updates.push(UpdateSpec {
        name: "DU3".into(),
        pattern: b("DU3")
            .node("department")
            .pred_eq("id", Value::Int(0))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Modify { attr: 2, value: Value::Float(1_000_000.0) },
    });
    // DU4: remove a dependent
    updates.push(UpdateSpec {
        name: "DU4".into(),
        pattern: b("DU4").node("dependent").pred_eq("id", Value::Int(3)).output(0).build().unwrap(),
        action: UpdateAction::Delete,
    });
    // DU5: void an invoice
    updates.push(UpdateSpec {
        name: "DU5".into(),
        pattern: b("DU5").node("invoice").pred_eq("id", Value::Int(4)).output(0).build().unwrap(),
        action: UpdateAction::Delete,
    });
    // DU6: a firm places a new purchase
    let purchase = node("purchase");
    let firm = node("firm");
    let places = node("places");
    updates.push(UpdateSpec {
        name: "DU6".into(),
        pattern: b("DU6loc").node("firm").pred_eq("id", Value::Int(2)).output(0).build().unwrap(),
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![NewInstance {
                node: purchase,
                attrs: vec![
                    Value::Int(7_000_000),
                    Value::Text("2026-07-05".into()),
                    Value::Float(120.0),
                ],
                links: vec![InsertLink {
                    rel: places,
                    self_edge: e(places, purchase),
                    partner_edge: e(places, firm),
                    partner: Partner::Matched(0),
                }],
            }],
        }),
    });
    // DU7: register a new dependent for an employee
    let dependent = node("dependent");
    let employee = node("employee");
    let has_dependent = node("has_dependent");
    updates.push(UpdateSpec {
        name: "DU7".into(),
        pattern: b("DU7loc")
            .node("employee")
            .pred_eq("id", Value::Int(2))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![NewInstance {
                node: dependent,
                attrs: vec![
                    Value::Int(7_000_001),
                    Value::Text("new kid".into()),
                    Value::Text("2026-01-01".into()),
                    Value::Text("child".into()),
                ],
                links: vec![InsertLink {
                    rel: has_dependent,
                    self_edge: e(has_dependent, dependent),
                    partner_edge: e(has_dependent, employee),
                    partner: Partner::Matched(0),
                }],
            }],
        }),
    });
    // DU8: a department starts a new project with one assignee
    let project = node("project");
    let department = node("department");
    let controls = node("controls");
    let assigned_to = node("assigned_to");
    updates.push(UpdateSpec {
        name: "DU8".into(),
        pattern: b("DU8loc")
            .node("department")
            .pred_eq("id", Value::Int(1))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![NewInstance {
                node: project,
                attrs: vec![
                    Value::Int(7_000_002),
                    Value::Text("skunkworks".into()),
                    Value::Text("2027-01-01".into()),
                    Value::Int(1),
                ],
                links: vec![
                    InsertLink {
                        rel: controls,
                        self_edge: e(controls, project),
                        partner_edge: e(controls, department),
                        partner: Partner::Matched(0),
                    },
                    InsertLink {
                        rel: assigned_to,
                        self_edge: e(assigned_to, project),
                        partner_edge: e(assigned_to, employee),
                        partner: Partner::ByOrdinal(employee, 3),
                    },
                ],
            }],
        }),
    });

    Workload { name: "derby".into(), reads, updates, indifferent: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::catalog;

    #[test]
    fn twenty_queries_eight_updates() {
        let g = ErGraph::from_diagram(&catalog::derby()).unwrap();
        let w = workload(&g);
        assert_eq!(w.reads.len(), 12);
        assert_eq!(w.updates.len(), 8);
        assert_eq!(w.reported().len(), 20);
    }
}

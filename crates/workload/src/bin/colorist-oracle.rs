//! `colorist-oracle` — drive the cross-strategy answer-equivalence oracle.
//!
//! ```text
//! colorist-oracle [--seeds N] [--start S] [--scale B] [--queries K] [--threads T]
//! colorist-oracle --batch-seeds N [--start S] [--scale B] [--queries K] [--threads T]
//! colorist-oracle --independence-seeds N [--start S] [--scale B] [--queries K] [--threads T]
//! colorist-oracle --replay SEED [--scale B] [--queries K]
//! colorist-oracle --minimize SEED [--scale B] [--queries K]
//! ```
//!
//! The default mode sweeps `--seeds` consecutive seeds from `--start`,
//! printing a summary and exiting nonzero when any seed diverges (each
//! divergent seed is auto-minimized to the smallest reproducing scale).
//! `--replay` prints one seed's diagram, workload, per-strategy plans and
//! counts; `--minimize` shrinks one divergent seed. `--batch-seeds` sweeps
//! the *batch-replay* oracle instead: every seed derives one randomized
//! atomic update batch (attribute writes + a delete-closed delete set),
//! commits it half at a time under all seven strategies, and asserts
//! answer equivalence mid-batch and post-batch, snapshot immunity, and
//! indexed-vs-reference kernel agreement after the deletes.
//! `--independence-seeds` sweeps the *effect-analysis* oracle: every seed
//! derives one random pair of batches, certifies them pairwise (B003),
//! commits certified-independent pairs in both orders (asserting
//! byte-identical final databases, B002 footprint containment, B004
//! snapshot-safety of disjoint plans, and scheduler/serial agreement),
//! and grades certified-conflicting pairs for genuine dynamic witnesses.
//!
//! `--trace out.json` records a hierarchical span trace of the run (every
//! design, materialization and query, on every worker thread) in
//! chrome-trace format — open it in `chrome://tracing` or Perfetto.

use colorist_workload::oracle::{
    minimize, replay_text, run_batch_seeds, run_independence_seeds, run_seeds, OracleConfig,
};
use std::process::ExitCode;

struct Args {
    seeds: u64,
    batch_seeds: Option<u64>,
    independence_seeds: Option<u64>,
    start: u64,
    threads: usize,
    replay: Option<u64>,
    minimize: Option<u64>,
    trace: Option<String>,
    cfg: OracleConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: colorist-oracle [--seeds N | --batch-seeds N | --independence-seeds N] \
         [--start S] [--scale B] [--queries K] [--threads T] [--trace OUT.json] \
         [--backend mem|paged|paged-mem] [--pool-bytes N]\n\
         \x20      colorist-oracle --replay SEED | --minimize SEED"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 64,
        batch_seeds: None,
        independence_seeds: None,
        start: 0,
        threads: colorist_workload::suite_threads(),
        replay: None,
        minimize: None,
        trace: None,
        cfg: OracleConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a non-negative integer");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val("--seeds"),
            "--batch-seeds" => args.batch_seeds = Some(val("--batch-seeds")),
            "--independence-seeds" => args.independence_seeds = Some(val("--independence-seeds")),
            "--start" => args.start = val("--start"),
            "--scale" => args.cfg.scale = val("--scale").max(2) as u32,
            "--queries" => args.cfg.queries = val("--queries").max(1) as usize,
            "--threads" => args.threads = val("--threads").max(1) as usize,
            "--replay" => args.replay = Some(val("--replay")),
            "--minimize" => args.minimize = Some(val("--minimize")),
            "--trace" => {
                args.trace = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    usage()
                }))
            }
            "--backend" => match it.next() {
                Some(b) => std::env::set_var("COLORIST_BACKEND", b),
                None => {
                    eprintln!("--backend needs a value");
                    usage()
                }
            },
            "--pool-bytes" => {
                std::env::set_var("COLORIST_POOL_BYTES", val("--pool-bytes").to_string())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    args
}

fn write_trace(path: &str) {
    let trace = colorist_trace::collect_stop();
    match std::fs::write(path, colorist_trace::chrome_trace_json(&trace)) {
        Ok(()) => eprintln!("trace: {} spans -> {path}", trace.spans.len()),
        Err(e) => eprintln!("trace write failed: {e}"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.trace.is_some() {
        colorist_trace::collect_start();
    }
    let code = run(&args);
    if let Some(path) = &args.trace {
        write_trace(path);
    }
    code
}

fn run(args: &Args) -> ExitCode {
    if let Some(seed) = args.replay {
        print!("{}", replay_text(seed, &args.cfg));
        return ExitCode::SUCCESS;
    }

    if let Some(seed) = args.minimize {
        return match minimize(seed, &args.cfg) {
            Some(m) => {
                println!("{m}");
                println!(
                    "replay: colorist-oracle --replay {} --scale {} --queries {}",
                    m.seed, m.scale, args.cfg.queries
                );
                ExitCode::FAILURE
            }
            None => {
                println!("seed {seed}: clean at scale {} — nothing to minimize", args.cfg.scale);
                ExitCode::SUCCESS
            }
        };
    }

    if let Some(n) = args.independence_seeds {
        let report = run_independence_seeds(args.start, n, &args.cfg, args.threads);
        print!("{report}");
        return if report.divergences().is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if let Some(n) = args.batch_seeds {
        let report = run_batch_seeds(args.start, n, &args.cfg, args.threads);
        print!("batch {report}");
        return if report.divergences().is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let report = run_seeds(args.start, args.seeds, &args.cfg, args.threads);
    print!("{report}");
    let divergent: Vec<u64> = {
        let mut seeds: Vec<u64> =
            report.reports.iter().filter(|r| !r.divergences.is_empty()).map(|r| r.seed).collect();
        seeds.dedup();
        seeds
    };
    if divergent.is_empty() {
        return ExitCode::SUCCESS;
    }
    // auto-minimize the first few divergent seeds into replayable repros
    for &seed in divergent.iter().take(5) {
        match minimize(seed, &args.cfg) {
            Some(m) => {
                println!("{m}");
                println!(
                    "replay: colorist-oracle --replay {} --scale {} --queries {}",
                    m.seed, m.scale, args.cfg.queries
                );
            }
            None => println!("seed {seed}: diverged in the sweep but not under minimization"),
        }
    }
    ExitCode::FAILURE
}

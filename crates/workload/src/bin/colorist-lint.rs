//! `colorist-lint` — run the static schema linter and plan verifier over
//! the whole catalog, or over one oracle seed.
//!
//! ```text
//! colorist-lint                       # catalog collection × 7 strategies
//! colorist-lint --seed N [--queries K] [--scale B]
//! colorist-lint --batch N [--queries K] [--scale B]
//! ```
//!
//! Default mode designs all seven strategies for every diagram of the
//! evaluation collection, lints each schema (`S0xx`), cross-validates the
//! property checkers (`S007`), compiles the diagram's workload against
//! every schema, and verifies every compiled plan (`P0xx`). `--seed` does
//! the same over the randomly generated diagram and workload of one
//! oracle seed. `--batch` statically effect-analyzes one independence
//! seed's random batch pair under every strategy (`B0xx`): per-batch
//! footprint summaries and B001 conflict localizations, the pairwise B003
//! certificate, and per-plan B004 invalidation verdicts. Exit code 0
//! means zero diagnostics.

use colorist_core::{design, properties, Strategy};
use colorist_er::{catalog, EligibleAssociations, ErGraph};
use colorist_query::{compile, verify_plan, Pattern};
use colorist_workload::oracle::{batch_effect_text, compile_seed, OracleConfig};
use colorist_workload::{derby, tpcw, xmark};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: colorist-lint [--seed N | --batch N] [--queries K] [--scale B]\n\
         \x20 default: lint the full catalog under all seven strategies"
    );
    std::process::exit(2);
}

/// Lint one (graph, strategy) pair and verify the given read queries'
/// plans against it. Returns the number of diagnostics printed.
fn lint_one(label: &str, g: &ErGraph, strategy: Strategy, reads: &[Pattern]) -> usize {
    let schema = match design(g, strategy) {
        Ok(s) => s,
        Err(e) => {
            println!("{label} [{strategy}] design failed: {e}");
            return 1;
        }
    };
    let mut n = 0;
    for d in colorist_mct::lint_schema(g, &schema) {
        println!("{label} [{strategy}] {d}");
        n += 1;
    }
    let elig = EligibleAssociations::enumerate_default(g);
    for d in properties::cross_validate(&schema, g, &elig) {
        println!("{label} [{strategy}] {d}");
        n += 1;
    }
    for q in reads {
        match compile(g, &schema, q) {
            Ok(plan) => {
                for d in verify_plan(g, &schema, &plan) {
                    println!("{label} [{strategy}] {}: {d}", q.name);
                    n += 1;
                }
            }
            Err(e) => {
                println!("{label} [{strategy}] {}: compile failed: {e}", q.name);
                n += 1;
            }
        }
    }
    n
}

/// Read queries exercised on a catalog diagram: the XMark-emulated
/// templates instantiate on any graph; TPC-W and Derby additionally get
/// their native workloads.
fn catalog_reads(name: &str, g: &ErGraph) -> Vec<Pattern> {
    let mut reads = xmark::workload(g).reads;
    match name {
        "tpcw" => reads.extend(tpcw::workload(g).reads),
        "derby" => reads.extend(derby::workload(g).reads),
        _ => {}
    }
    reads
}

fn run_catalog() -> usize {
    let mut diags = 0;
    let mut schemas = 0;
    let mut plans = 0;
    for name in catalog::COLLECTION {
        let diagram = catalog::by_name(name).expect("collection name");
        let g = ErGraph::from_diagram(&diagram).expect("catalog diagrams build");
        let reads = catalog_reads(name, &g);
        for s in Strategy::ALL {
            diags += lint_one(name, &g, s, &reads);
            schemas += 1;
            plans += reads.len();
        }
    }
    println!("linted {schemas} schemas / verified up to {plans} plans: {diags} diagnostic(s)");
    diags
}

fn run_seed_mode(seed: u64, cfg: &OracleConfig) -> usize {
    let corpus = compile_seed(seed, cfg);
    let label = format!("seed {seed}");
    let mut diags = 0;
    let elig = EligibleAssociations::enumerate_default(&corpus.graph);
    for (s, schema) in &corpus.schemas {
        for d in colorist_mct::lint_schema(&corpus.graph, schema) {
            println!("{label} [{s}] {d}");
            diags += 1;
        }
        for d in properties::cross_validate(schema, &corpus.graph, &elig) {
            println!("{label} [{s}] {d}");
            diags += 1;
        }
    }
    for (si, qname, plan) in &corpus.plans {
        let (s, schema) = &corpus.schemas[*si];
        for d in verify_plan(&corpus.graph, schema, plan) {
            println!("{label} [{s}] {qname}: {d}");
            diags += 1;
        }
    }
    println!(
        "seed {seed}: linted {} schemas / verified {} plans: {diags} diagnostic(s)",
        corpus.schemas.len(),
        corpus.plans.len()
    );
    diags
}

fn run_batch_mode(seed: u64, cfg: &OracleConfig) -> usize {
    let (text, diags) = batch_effect_text(seed, cfg);
    print!("{text}");
    println!(
        "seed {seed}: effect-analyzed 2 batches x {} strategies: {diags} diagnostic(s)",
        Strategy::ALL.len()
    );
    diags
}

fn main() -> ExitCode {
    let mut seed: Option<u64> = None;
    let mut batch: Option<u64> = None;
    let mut cfg = OracleConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a non-negative integer");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => seed = Some(val("--seed")),
            "--batch" => batch = Some(val("--batch")),
            "--queries" => cfg.queries = val("--queries").max(1) as usize,
            "--scale" => cfg.scale = val("--scale").max(2) as u32,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let diags = match (batch, seed) {
        (Some(b), _) => run_batch_mode(b, &cfg),
        (None, Some(s)) => run_seed_mode(s, &cfg),
        (None, None) => run_catalog(),
    };
    if diags == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! The span model and the global collector.
//!
//! A **span** is one timed region of work on one thread: it has a category
//! (`design`, `materialize`, `compile`, `query`, `op`, …), a name, a
//! wall-clock interval, and a bag of integer counters. Spans form a forest
//! per thread: a span opened while another span is open on the same thread
//! becomes its child (RAII nesting), so dropping guards in LIFO order —
//! the only order safe Rust scoping produces — yields a well-formed tree.
//!
//! Collection is **global and off by default**: when no collection session
//! is active, [`span()`] returns an inert guard whose construction costs one
//! relaxed atomic load and no clock read, so instrumented hot paths stay
//! free. [`collect_start`] opens a session on every thread at once;
//! [`collect_stop`] closes it and returns the [`Trace`]. Guards opened in
//! an earlier session (or before the session started) never leak records
//! into a later one.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as stored in a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonically assigned across threads).
    pub id: u64,
    /// Id of the innermost span that was open on the same thread when this
    /// one started, if any.
    pub parent: Option<u64>,
    /// Trace-local thread id: 0 for the first thread that ever recorded,
    /// then densely increasing per new OS thread.
    pub tid: u32,
    /// Span category (`"design"`, `"op"`, …) — the chrome `cat` field.
    pub cat: &'static str,
    /// Human-readable span name (e.g. `"execute:Q12:DR"`).
    pub name: String,
    /// Start offset in nanoseconds since the process trace epoch (the
    /// first [`collect_start`] of the process).
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Operator-local counters, in insertion order. Repeated
    /// [`Span::counter`] calls with the same key accumulate into one entry.
    pub counters: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// End offset in nanoseconds since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// The value of counter `key`, if recorded on this span.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// A completed collection session: every span recorded between one
/// [`collect_start`]/[`collect_stop`] pair, in completion order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded spans. Ordered by span *end* time per thread (spans are
    /// recorded when their guard drops), interleaved across threads.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Spans of one category, in recorded order.
    pub fn of_cat(&self, cat: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.cat == cat).collect()
    }

    /// Sum of counter `key` over every span that carries it.
    pub fn total(&self, key: &str) -> u64 {
        self.spans.iter().filter_map(|s| s.counter(key)).sum()
    }

    /// Check structural well-formedness: span ids are unique, every parent
    /// exists, children run on their parent's thread strictly within its
    /// interval, and same-parent same-thread siblings never partially
    /// overlap. Returns the first violation as a human-readable message.
    ///
    /// Violations are impossible with RAII guard scoping on one session;
    /// this check exists to pin that invariant in tests and to vet traces
    /// that crossed a serialization boundary.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let mut by_id = std::collections::HashMap::with_capacity(self.spans.len());
        for (i, s) in self.spans.iter().enumerate() {
            if by_id.insert(s.id, i).is_some() {
                return Err(format!("span id {} recorded twice", s.id));
            }
        }
        for s in &self.spans {
            let Some(pid) = s.parent else { continue };
            let Some(&pi) = by_id.get(&pid) else {
                return Err(format!(
                    "span {} `{}`: parent {pid} is not in the trace",
                    s.id, s.name
                ));
            };
            let p = &self.spans[pi];
            if p.tid != s.tid {
                return Err(format!(
                    "span {} `{}` on tid {} has parent {} on tid {}",
                    s.id, s.name, s.tid, p.id, p.tid
                ));
            }
            if s.start_ns < p.start_ns || s.end_ns() > p.end_ns() {
                return Err(format!(
                    "span {} `{}` [{}, {}] escapes parent {} `{}` [{}, {}]",
                    s.id,
                    s.name,
                    s.start_ns,
                    s.end_ns(),
                    p.id,
                    p.name,
                    p.start_ns,
                    p.end_ns()
                ));
            }
        }
        // same-(tid, parent) siblings must be disjoint (RAII: a second
        // sibling can only open after the first guard dropped)
        let mut groups: std::collections::HashMap<(u32, Option<u64>), Vec<&SpanRecord>> =
            std::collections::HashMap::new();
        for s in &self.spans {
            groups.entry((s.tid, s.parent)).or_default().push(s);
        }
        for sibs in groups.values_mut() {
            sibs.sort_by_key(|s| (s.start_ns, s.end_ns()));
            for w in sibs.windows(2) {
                let (a, b) = (w[0], w[1]);
                if b.start_ns < a.end_ns() {
                    return Err(format!(
                        "sibling spans {} `{}` and {} `{}` overlap on tid {}",
                        a.id, a.name, b.id, b.name, a.tid
                    ));
                }
            }
        }
        Ok(())
    }
}

struct Collector {
    collecting: AtomicBool,
    session: AtomicU64,
    next_id: AtomicU64,
    next_tid: AtomicU32,
    records: Mutex<Vec<SpanRecord>>,
}

static COLLECTOR: Collector = Collector {
    collecting: AtomicBool::new(false),
    session: AtomicU64::new(0),
    next_id: AtomicU64::new(0),
    next_tid: AtomicU32::new(0),
    records: Mutex::new(Vec::new()),
};

/// The process trace epoch: set by the first [`collect_start`] and shared
/// by every later session, so `start_ns` offsets are comparable within a
/// process lifetime.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static TID: Cell<Option<u32>> = const { Cell::new(None) };
    // (session, span id) of every open span on this thread, innermost last
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u32 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = COLLECTOR.next_tid.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Is a collection session active? One relaxed atomic load.
pub fn is_collecting() -> bool {
    COLLECTOR.collecting.load(Ordering::Relaxed)
}

/// Start a global collection session, discarding any records a previous
/// unfinished session left behind. Spans opened by any thread while the
/// session is active are recorded when their guard drops.
pub fn collect_start() {
    EPOCH.get_or_init(Instant::now);
    let mut recs = COLLECTOR.records.lock().expect("trace record buffer");
    recs.clear();
    COLLECTOR.session.fetch_add(1, Ordering::SeqCst);
    COLLECTOR.collecting.store(true, Ordering::SeqCst);
}

/// Stop the active session and return everything it recorded. Spans still
/// open are discarded when they eventually drop (they belong to no
/// session), so stop only after the instrumented work has joined.
pub fn collect_stop() -> Trace {
    COLLECTOR.collecting.store(false, Ordering::SeqCst);
    let mut recs = COLLECTOR.records.lock().expect("trace record buffer");
    Trace { spans: std::mem::take(&mut *recs) }
}

struct ActiveSpan {
    session: u64,
    id: u64,
    parent: Option<u64>,
    tid: u32,
    cat: &'static str,
    name: String,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
}

/// An RAII span guard: the span covers the guard's lifetime. Inert (and
/// nearly free) when no collection session is active.
pub struct Span {
    active: Option<ActiveSpan>,
}

/// Open a span. The span's parent is the innermost span currently open on
/// this thread; its interval closes when the returned guard drops.
pub fn span(cat: &'static str, name: impl Into<String>) -> Span {
    if !is_collecting() {
        return Span { active: None };
    }
    let session = COLLECTOR.session.load(Ordering::SeqCst);
    let id = COLLECTOR.next_id.fetch_add(1, Ordering::Relaxed);
    let tid = tid();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.iter().rev().find(|&&(ss, _)| ss == session).map(|&(_, id)| id);
        s.push((session, id));
        parent
    });
    Span {
        active: Some(ActiveSpan {
            session,
            id,
            parent,
            tid,
            cat,
            name: name.into(),
            start: Instant::now(),
            counters: Vec::new(),
        }),
    }
}

impl Span {
    /// Is this guard actually recording? False outside a session.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Add `value` to counter `key` on this span (accumulating across
    /// repeated calls with the same key). A no-op on an inert guard.
    pub fn counter(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            match a.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += value,
                None => a.counters.push((key, value)),
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur = a.start.elapsed();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&(ss, id)| ss == a.session && id == a.id) {
                s.remove(pos);
            }
        });
        // record only if the guard's own session is still the active one
        if !is_collecting() || COLLECTOR.session.load(Ordering::SeqCst) != a.session {
            return;
        }
        let epoch = EPOCH.get().copied().unwrap_or(a.start);
        let start_ns = a.start.saturating_duration_since(epoch).as_nanos() as u64;
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            tid: a.tid,
            cat: a.cat,
            name: a.name,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            counters: a.counters,
        };
        COLLECTOR.records.lock().expect("trace record buffer").push(rec);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _l = test_lock();
        assert!(!is_collecting());
        let mut s = span("test", "off");
        assert!(!s.is_recording());
        s.counter("k", 1);
        drop(s);
    }

    #[test]
    fn nesting_and_counters() {
        let _l = test_lock();
        collect_start();
        {
            let mut outer = span("test", "outer");
            outer.counter("n", 2);
            outer.counter("n", 3);
            {
                let _inner = span("test", "inner");
            }
        }
        let t = collect_stop();
        assert_eq!(t.spans.len(), 2);
        // completion order: inner drops first
        assert_eq!(t.spans[0].name, "inner");
        assert_eq!(t.spans[1].name, "outer");
        assert_eq!(t.spans[0].parent, Some(t.spans[1].id));
        assert_eq!(t.spans[1].counter("n"), Some(5));
        assert_eq!(t.total("n"), 5);
        t.check_well_formed().expect("RAII nesting is well-formed");
    }

    #[test]
    fn cross_thread_spans_get_distinct_tids() {
        let _l = test_lock();
        collect_start();
        {
            let _root = span("test", "main-side");
            std::thread::scope(|s| {
                for i in 0..2 {
                    s.spawn(move || {
                        let _w = span("test", format!("worker-{i}"));
                    });
                }
            });
        }
        let t = collect_stop();
        assert_eq!(t.spans.len(), 3);
        t.check_well_formed().expect("per-thread forests are well-formed");
        let main_tid = t.spans.iter().find(|s| s.name == "main-side").unwrap().tid;
        for s in t.spans.iter().filter(|s| s.name.starts_with("worker")) {
            assert_ne!(s.tid, main_tid, "worker spans carry their own tid");
            assert_eq!(s.parent, None, "no cross-thread parenting");
        }
    }

    #[test]
    fn stale_session_guards_do_not_leak() {
        let _l = test_lock();
        collect_start();
        let stale = span("test", "stale");
        let _ = collect_stop();
        collect_start();
        drop(stale); // belongs to the closed session: must not record
        let fresh = span("test", "fresh");
        drop(fresh);
        let t = collect_stop();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "fresh");
    }

    #[test]
    fn well_formedness_rejects_orphans_and_overlaps() {
        let rec = |id, parent, start_ns, dur_ns| SpanRecord {
            id,
            parent,
            tid: 0,
            cat: "t",
            name: format!("s{id}"),
            start_ns,
            dur_ns,
            counters: vec![],
        };
        let orphan = Trace { spans: vec![rec(1, Some(99), 0, 10)] };
        assert!(orphan.check_well_formed().is_err());
        let escape = Trace { spans: vec![rec(1, None, 0, 10), rec(2, Some(1), 5, 10)] };
        assert!(escape.check_well_formed().is_err());
        let overlap = Trace { spans: vec![rec(1, None, 0, 10), rec(2, None, 5, 10)] };
        assert!(overlap.check_well_formed().is_err());
        let ok = Trace { spans: vec![rec(1, None, 0, 10), rec(2, Some(1), 2, 5)] };
        ok.check_well_formed().expect("nested interval is fine");
    }
}

//! # colorist-trace — the observability layer
//!
//! Zero-dependency hierarchical span tracing for the whole workspace:
//! every phase of the pipeline (design → materialize → compile → execute)
//! and every plan operator can open a [`span()`], attach operator-local
//! counters (elements scanned, join probes, crossings, …), and have the
//! result exported as [chrome-trace JSON](chrome_trace_json) for
//! `chrome://tracing` / Perfetto, or inspected programmatically as a
//! [`Trace`].
//!
//! Two invariants the rest of the workspace leans on:
//!
//! * **Off means free.** With no collection session active, [`span()`] is one
//!   relaxed atomic load — no clock read, no allocation — so instrumented
//!   hot paths (the per-operator executor loop) cost nothing in ordinary
//!   benchmark runs. Collection is opt-in per process via
//!   [`collect_start`] / [`collect_stop`] (the `--trace` flag of the
//!   `table1` and `colorist-oracle` binaries).
//! * **Counters are deterministic, only time is not.** Span *counters*
//!   are copied from the deterministic [`Metrics`] deltas of the executor,
//!   so they are byte-identical across `COLORIST_THREADS` settings; the
//!   wall-clock fields (`start_ns`, `dur_ns`) are the only
//!   machine-dependent content of a trace.
//!
//! [`Metrics`]: https://docs.rs/colorist-store
//!
//! ## Example
//!
//! ```
//! use colorist_trace::{collect_start, collect_stop, span, chrome_trace_json};
//!
//! collect_start();
//! {
//!     let mut q = span("query", "execute:Q1");
//!     {
//!         let mut op = span("op", "scan");
//!         op.counter("elements_scanned", 103);
//!     } // `scan` closes here, nested inside `execute:Q1`
//!     q.counter("rows_out", 15);
//! }
//! let trace = collect_stop();
//!
//! assert_eq!(trace.spans.len(), 2);
//! trace.check_well_formed().expect("RAII spans nest");
//! assert_eq!(trace.total("elements_scanned"), 103);
//!
//! // export for chrome://tracing and read it back with the JSON reader
//! let json = chrome_trace_json(&trace);
//! let doc = colorist_trace::Json::parse(&json).expect("valid JSON");
//! let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("event array");
//! assert!(events.len() >= trace.spans.len());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod span;

pub use chrome::{chrome_trace_json, escape_json};
pub use json::Json;
pub use span::{collect_start, collect_stop, is_collecting, span, Span, SpanRecord, Trace};

//! A minimal JSON reader.
//!
//! The workspace builds offline with zero external crates, but two tools
//! need to *read* JSON the workspace itself wrote: `colorist-perfgate`
//! (diffing `bench_summary.json` documents) and trace validation
//! (round-tripping the chrome-trace export). This is a strict, small
//! recursive-descent parser for exactly that job — standard JSON, numbers
//! as `f64`, objects as ordered key/value vectors. It is not a general
//! serde replacement and does not aim to be.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member `key` of an object; `None` on non-objects / absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.i)
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied();
                    self.i += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // no surrogate-pair support: the workspace never
                            // writes astral characters via \u
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // copy one UTF-8 scalar
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.b.get(self.i), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("parses");
        assert_eq!(j.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len), Some(3));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(j.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x\ny"));
        assert_eq!(j.get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }
}

//! Chrome-trace ("Trace Event Format") export.
//!
//! Renders a [`Trace`] as the JSON object `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) load directly: one complete
//! (`"ph": "X"`) event per span with microsecond `ts`/`dur`, the span's
//! counters (plus its `id`/`parent` links) under `args`, and a
//! `thread_name` metadata event per thread. Everything runs in `pid` 1;
//! `tid` is the trace-local thread id of [`SpanRecord::tid`].

use crate::span::{SpanRecord, Trace};
use std::fmt::Write as _;

/// Escape `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Render `trace` in chrome-trace JSON. Events are sorted by
/// `(tid, start, id)` so the output is stable for a given trace.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut spans: Vec<&SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.tid, s.start_ns, s.id));

    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(j, "  \"traceEvents\": [");
    let mut first = true;
    let mut sep = |j: &mut String| {
        if !std::mem::take(&mut first) {
            let _ = writeln!(j, ",");
        }
    };
    for t in &tids {
        sep(&mut j);
        let name = if *t == 0 { "main".to_string() } else { format!("worker-{t}") };
        let _ = write!(
            j,
            "    {{\"ph\": \"M\", \"pid\": 1, \"tid\": {t}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{name}\"}}}}"
        );
    }
    for s in &spans {
        sep(&mut j);
        let _ = write!(
            j,
            "    {{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \"cat\": \"{}\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"id\": {}",
            s.tid,
            escape_json(&s.name),
            escape_json(s.cat),
            us(s.start_ns),
            us(s.dur_ns),
            s.id,
        );
        if let Some(p) = s.parent {
            let _ = write!(j, ", \"parent\": {p}");
        }
        for (k, v) in &s.counters {
            let _ = write!(j, ", \"{}\": {v}", escape_json(k));
        }
        let _ = write!(j, "}}}}");
    }
    let _ = writeln!(j);
    let _ = writeln!(j, "  ]");
    let _ = write!(j, "}}");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn renders_metadata_and_complete_events() {
        let trace = Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    tid: 0,
                    cat: "query",
                    name: "execute:Q1".into(),
                    start_ns: 1_500,
                    dur_ns: 2_000,
                    counters: vec![("elements_scanned", 103)],
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    tid: 0,
                    cat: "op",
                    name: "scan".into(),
                    start_ns: 1_600,
                    dur_ns: 100,
                    counters: vec![],
                },
            ],
        };
        let j = chrome_trace_json(&trace);
        assert!(j.contains("\"thread_name\""), "{j}");
        assert!(j.contains("\"name\": \"execute:Q1\""), "{j}");
        assert!(j.contains("\"ts\": 1.500"), "{j}");
        assert!(j.contains("\"elements_scanned\": 103"), "{j}");
        assert!(j.contains("\"parent\": 1"), "{j}");
        crate::json::Json::parse(&j).expect("export is valid JSON");
    }
}

//! Unix-domain-socket front end (feature `uds`, DESIGN.md §15.6).
//!
//! A deliberately minimal line protocol over `std::os::unix::net` — the
//! in-process [`Client`] API is the primary surface, and
//! this front end exists so an external process can drive the service's
//! *registered* named queries without linking the workspace:
//!
//! ```text
//! READ <query-name>\n   ->  OK <distinct> <results> <epoch> <hit|miss>\n
//! FLUSH\n               ->  OK <committed> <epoch>\n
//! PING\n                ->  OK pong\n
//! QUIT\n                ->  (connection closes)
//! ```
//!
//! Errors answer `ERR <message>\n` and keep the connection open. Writes
//! are not exposed over the wire: an [`UpdateBatch`](colorist_store::UpdateBatch)
//! is a rich in-process structure, and serializing one is out of scope
//! for the line protocol.
//!
//! Each accepted connection gets its own handler thread; all handlers
//! share one submission [`Client`], so wire requests ride
//! the same MPMC queue, plan cache and admission path as in-process
//! requests.

use crate::{Client, Server};
use colorist_query::Pattern;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running socket front end; drop or [`UdsFront::stop`] to tear down.
pub struct UdsFront {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Bind `path` and serve the registered `queries` (looked up by
/// case-insensitive pattern name) against `server`'s submission queue.
/// Fails if the socket cannot be bound. A stale *socket* file at `path`
/// is removed first; anything else at the path (a regular file, a
/// directory, a symlink) is never deleted — the bind fails with
/// `AlreadyExists` instead.
pub fn serve(server: &Server, path: &Path, queries: &[Pattern]) -> std::io::Result<UdsFront> {
    use std::os::unix::fs::FileTypeExt;
    match std::fs::symlink_metadata(path) {
        Ok(meta) if meta.file_type().is_socket() => std::fs::remove_file(path)?,
        Ok(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("refusing to replace non-socket file at `{}`", path.display()),
            ))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let client = server.client();
    let registry: Arc<Vec<Pattern>> = Arc::new(queries.to_vec());
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new().name("colorist-uds-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { break };
                let client = client.clone();
                let registry = Arc::clone(&registry);
                let _ = std::thread::Builder::new()
                    .name("colorist-uds-conn".into())
                    .spawn(move || handle(conn, &client, &registry));
            }
        })?
    };
    Ok(UdsFront { path: path.to_path_buf(), stop, accept: Some(accept) })
}

impl UdsFront {
    /// The socket path being served.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop accepting, unblock the accept loop, join it, and remove the
    /// socket file. In-flight connection handlers finish their current
    /// line and exit on the next read error.
    pub fn stop(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if let Some(h) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // poke the blocking accept so the loop observes the flag
            let _ = UnixStream::connect(&self.path);
            let _ = h.join();
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl Drop for UdsFront {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn handle(conn: UnixStream, client: &Client, registry: &[Pattern]) {
    let Ok(reader_side) = conn.try_clone() else { return };
    let mut reader = BufReader::new(reader_side);
    let mut writer = conn;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let reply = respond(line.trim(), client, registry);
        let Some(reply) = reply else { return };
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// One request line → one reply line (`None` = close the connection).
fn respond(line: &str, client: &Client, registry: &[Pattern]) -> Option<String> {
    let mut words = line.split_whitespace();
    match (words.next(), words.next()) {
        (Some("QUIT"), _) => None,
        (Some("PING"), _) => Some("OK pong\n".into()),
        (Some("FLUSH"), _) => Some(match client.flush().wait() {
            Ok(r) => format!("OK {} {}\n", r.committed, r.epoch),
            Err(e) => format!("ERR {e}\n"),
        }),
        (Some("READ"), Some(name)) => {
            let Some(pattern) = registry.iter().find(|p| p.name.eq_ignore_ascii_case(name)) else {
                return Some(format!("ERR unknown query `{name}`\n"));
            };
            Some(match client.read(pattern).wait() {
                Ok(r) => format!(
                    "OK {} {} {} {}\n",
                    r.distinct,
                    r.results,
                    r.epoch,
                    if r.cache_hit { "hit" } else { "miss" }
                ),
                Err(e) => format!("ERR {e}\n"),
            })
        }
        (Some(other), _) => Some(format!("ERR unknown command `{other}`\n")),
        (None, _) => Some("ERR empty request\n".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::{catalog, ErGraph};
    use colorist_query::PatternBuilder;

    /// Regression: `serve` must never delete a non-socket file sitting
    /// at the requested path — it fails with `AlreadyExists` and leaves
    /// the file intact.
    #[test]
    fn serve_refuses_to_replace_a_non_socket_file() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
        let schema = design(&g, Strategy::En).expect("tpcw designs");
        let db = materialize(&g, &schema, &generate(&g, &ScaleProfile::uniform(&g, 4), 11));
        let server = crate::Server::start(db, &g, &ServerConfig::default());
        let path =
            std::env::temp_dir().join(format!("colorist-uds-occupied-{}.txt", std::process::id()));
        std::fs::write(&path, b"precious").expect("file writes");
        let err = match serve(&server, &path, &[]) {
            Err(e) => e,
            Ok(_) => panic!("bind must refuse an occupied non-socket path"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read(&path).expect("file survives"), b"precious");
        std::fs::remove_file(&path).expect("cleanup");
        server.shutdown();
    }

    /// Drive the wire protocol end-to-end over a real socket: PING,
    /// READ (miss then hit, matching answers), unknown query/command
    /// errors keeping the connection open, FLUSH, QUIT closing it.
    #[test]
    fn line_protocol_serves_registered_queries_over_a_real_socket() {
        let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
        let schema = design(&g, Strategy::Dr).expect("tpcw designs");
        let db = materialize(&g, &schema, &generate(&g, &ScaleProfile::uniform(&g, 6), 11));
        let q = PatternBuilder::new(&g, "Qw")
            .node("country")
            .node("customer")
            .chain(0, 1, &["in", "address", "has"])
            .expect("path exists")
            .output(1)
            .build()
            .expect("pattern builds");
        let expect = {
            let p = colorist_query::optimize(&db, &g, &q).expect("plan");
            colorist_query::execute(&db, &g, &p).expect("runs")
        };
        let server = crate::Server::start(db, &g, &ServerConfig::default().with_workers(2));
        let sock =
            std::env::temp_dir().join(format!("colorist-uds-test-{}.sock", std::process::id()));
        let front = serve(&server, &sock, std::slice::from_ref(&q)).expect("socket binds");

        let conn = UnixStream::connect(front.path()).expect("connects");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut roundtrip = |req: &str| {
            let mut w = &conn;
            w.write_all(req.as_bytes()).expect("request writes");
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply arrives");
            line
        };
        assert_eq!(roundtrip("PING\n"), "OK pong\n");
        let miss = roundtrip("READ qw\n"); // case-insensitive lookup
        assert_eq!(miss, format!("OK {} {} 0 miss\n", expect.distinct, expect.results));
        let hit = roundtrip("READ Qw\n");
        assert_eq!(hit, format!("OK {} {} 0 hit\n", expect.distinct, expect.results));
        assert!(roundtrip("READ nope\n").starts_with("ERR unknown query"));
        assert!(roundtrip("EXPLODE\n").starts_with("ERR unknown command"));
        assert_eq!(roundtrip("FLUSH\n"), "OK 0 0\n", "nothing admitted, epoch unchanged");

        // QUIT closes this connection; the front end keeps serving others
        {
            let mut w = &conn;
            w.write_all(b"QUIT\n").expect("request writes");
        }
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("EOF"), 0, "connection closed");
        let second = UnixStream::connect(front.path()).expect("reconnects");
        let mut reader2 = BufReader::new(second.try_clone().expect("clone"));
        {
            let mut w = &second;
            w.write_all(b"READ Qw\n").expect("request writes");
        }
        let mut line = String::new();
        reader2.read_line(&mut line).expect("reply arrives");
        assert_eq!(line, format!("OK {} {} 0 hit\n", expect.distinct, expect.results));

        front.stop();
        assert!(!sock.exists(), "socket file removed on stop");
        server.shutdown();
    }
}

//! # colorist-server — the multi-client query service (DESIGN.md §15)
//!
//! The paper measures its seven schemas on a single-threaded TIMBER
//! substrate; this crate is the layer that *serves* them: a
//! thread-per-core worker pool over an in-process MPMC submission queue.
//! Clients submit prepared read queries and [`UpdateBatch`] writes and
//! get [`Pending`] tickets they can block on.
//!
//! * **Reads** execute on any worker against the *published*
//!   epoch-pinned [`Database::snapshot`] view with no coordination:
//!   taking the view is one `Arc` clone, and the copy-on-write store
//!   guarantees the answer equals what the database would have returned
//!   at snapshot time, byte for byte. Plans come from the sharded
//!   prepared-plan cache ([`PlanCache`]) keyed on
//!   `(pattern, strategy, statistics epoch)`: compile + optimize once,
//!   hit thereafter, re-optimize after any statistics-catalog
//!   maintenance (the epoch shifts the key — stale plans are never
//!   served).
//! * **Writes** flow through *admission batching* into the
//!   commutativity-certified group commit of DESIGN.md §13: each write
//!   gets a global admission sequence number when it enters the queue;
//!   a commit cycle drains the contiguous admitted prefix **in sequence
//!   order** into a [`CommitScheduler`], which partitions it into
//!   independence classes and commits each class under one epoch bump.
//!   Draining in admission order makes the final database state equal
//!   the serial application of all writes in admission order — for any
//!   worker count — because distinct classes are certified to commute
//!   and conflicting writes stay in one class in admission order. The
//!   torture tests in `tests/server.rs` pin exactly this.
//! * **Metrics** aggregate per worker and are summed on collection
//!   ([`Server::metrics`]): each request charges exactly one worker
//!   once, so every deterministic counter family stays exact under any
//!   worker count. `queue_wait_ns` (and `elapsed`) are wall-clock
//!   derived and machine-dependent.
//!
//! The optional Unix-domain-socket front end lives behind the `uds`
//! feature (the `uds` module); the in-process [`Client`] API is the
//! primary surface.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use colorist_er::ErGraph;
use colorist_query::{execute_snapshot, optimize_cached, Pattern, PlanCache, QueryError};
use colorist_store::{
    BatchError, BatchReceipt, CommitScheduler, Database, ElementId, Metrics, Snapshot, UpdateBatch,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

#[cfg(all(unix, feature = "uds"))]
pub mod uds;

/// Server construction parameters; see [`ServerConfig::default`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads. Thread-per-core is [`ServerConfig::per_core`];
    /// the default is 1 (fully deterministic scheduling).
    pub workers: usize,
    /// Admission threshold: a commit cycle starts as soon as this many
    /// writes are pending (a [`Client::flush`] commits everything
    /// regardless). Larger values give the certifier more batches to
    /// group under one epoch bump.
    pub admit_max: usize,
    /// Total prepared-plan cache capacity, in plans.
    pub plan_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            admit_max: 32,
            plan_cache_capacity: colorist_query::cache::DEFAULT_CAPACITY,
        }
    }
}

impl ServerConfig {
    /// Thread-per-core: one worker per available hardware thread.
    pub fn per_core() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServerConfig { workers, ..ServerConfig::default() }
    }

    /// Same config with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// What can go wrong serving a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Plan compilation/optimization or execution failed.
    Query(QueryError),
    /// The write batch failed validation at commit time.
    Batch(BatchError),
    /// The server stopped before (or while) handling the request.
    Stopped,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Query(e) => write!(f, "query failed: {e}"),
            ServerError::Batch(e) => write!(f, "batch rejected: {e}"),
            ServerError::Stopped => write!(f, "server stopped"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<QueryError> for ServerError {
    fn from(e: QueryError) -> Self {
        ServerError::Query(e)
    }
}

/// Answer of one read request.
#[derive(Debug, Clone)]
pub struct ReadReply {
    /// Distinct logical answers, as sorted canonical element ids.
    pub elements: Vec<ElementId>,
    /// Physical result tuples (copies included on un-normalized schemas).
    pub results: u64,
    /// Distinct logical results.
    pub distinct: u64,
    /// Epoch of the snapshot the read executed against.
    pub epoch: u64,
    /// Whether the plan came from the prepared-plan cache.
    pub cache_hit: bool,
    /// Per-request metrics: execution counters plus `queue_wait_ns` and
    /// the `plan_cache_*` charge of this request.
    pub metrics: Metrics,
}

/// Receipt of one committed write request.
#[derive(Debug, Clone)]
pub struct WriteReply {
    /// The batch's own receipt (epoch rewritten to the group's commit
    /// epoch when it group-committed).
    pub receipt: BatchReceipt,
    /// Epoch the write's independence class committed under.
    pub group_epoch: u64,
    /// Batches in the independence class this write committed with (1 =
    /// it shared its epoch bump with nobody).
    pub group_size: usize,
    /// Per-request metrics: `queue_wait_ns` plus the receipt's
    /// `pages_written` as `page_writes`.
    pub metrics: Metrics,
}

/// Outcome of a [`Client::flush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReply {
    /// Writes this flush found pending and committed (writes already
    /// committed by admission-threshold cycles are not re-counted).
    pub committed: u64,
    /// Database epoch after the flush.
    pub epoch: u64,
}

type Cell<T> = Arc<(Mutex<Option<T>>, Condvar)>;

/// A ticket for an in-flight request; [`Pending::wait`] blocks until a
/// worker fulfills it.
#[derive(Debug)]
pub struct Pending<T> {
    cell: Cell<T>,
}

impl<T> Pending<T> {
    fn new() -> (Pending<T>, Ticket<T>) {
        let cell: Cell<T> = Arc::new((Mutex::new(None), Condvar::new()));
        (Pending { cell: Arc::clone(&cell) }, Ticket { cell })
    }

    fn ready(value: T) -> Pending<T> {
        Pending { cell: Arc::new((Mutex::new(Some(value)), Condvar::new())) }
    }

    /// Block until the reply arrives.
    pub fn wait(self) -> T {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().expect("ticket lock");
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = cv.wait(slot).expect("ticket wait");
        }
    }
}

#[derive(Debug)]
struct Ticket<T> {
    cell: Cell<T>,
}

impl<T> Ticket<T> {
    fn fulfill(self, value: T) {
        let (lock, cv) = &*self.cell;
        *lock.lock().expect("ticket lock") = Some(value);
        cv.notify_all();
    }
}

enum Request {
    Read {
        pattern: Box<Pattern>,
        enqueued: Instant,
        ticket: Ticket<Result<ReadReply, ServerError>>,
    },
    Write {
        wseq: u64,
        batch: Box<UpdateBatch>,
        enqueued: Instant,
        ticket: Ticket<Result<WriteReply, ServerError>>,
    },
    Flush {
        /// Every write admitted before this flush entered the queue has
        /// `wseq < upto`; the flush waits for and commits them all.
        upto: u64,
        ticket: Ticket<Result<FlushReply, ServerError>>,
    },
}

/// The MPMC submission queue. Write sequence numbers are assigned under
/// the same lock that orders the queue, so FIFO pop order respects
/// admission order — the invariant the flush barrier relies on.
struct Queue {
    requests: VecDeque<Request>,
    next_wseq: u64,
    stopped: bool,
}

/// One admitted-but-uncommitted write.
struct PendingWrite {
    batch: Box<UpdateBatch>,
    ticket: Ticket<Result<WriteReply, ServerError>>,
    queue_wait_ns: u64,
}

/// Admission buffer: writes keyed by sequence number, plus the commit
/// frontier. `pending` may have gaps (a worker still carrying a popped
/// write); commit cycles only drain the contiguous prefix at
/// `next_commit`, so commits never reorder admissions.
struct Admission {
    pending: BTreeMap<u64, PendingWrite>,
    next_commit: u64,
}

struct Shared {
    graph: ErGraph,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    /// Authoritative database; committed to under `commit_gate`.
    db: Mutex<Database>,
    /// Published read view, republished after every commit cycle.
    snap: Mutex<Arc<Snapshot>>,
    cache: PlanCache,
    admission: Mutex<Admission>,
    /// Signaled when a write lands in the admission buffer (flush
    /// barriers wait on it).
    admission_cv: Condvar,
    /// Serializes drain+commit cycles so contiguous prefixes commit in
    /// admission order even when several workers race to commit.
    commit_gate: Mutex<()>,
    admit_max: usize,
    worker_metrics: Vec<Mutex<Metrics>>,
}

/// The running service: owns the worker pool and the authoritative
/// database. Create with [`Server::start`], submit through handles from
/// [`Server::client`], stop with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap submission handle; clone one per client thread.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Server {
    /// Take ownership of `db` and start `config.workers` workers.
    pub fn start(db: Database, graph: &ErGraph, config: &ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let snap = Arc::new(db.snapshot());
        let shared = Arc::new(Shared {
            graph: graph.clone(),
            queue: Mutex::new(Queue { requests: VecDeque::new(), next_wseq: 0, stopped: false }),
            queue_cv: Condvar::new(),
            db: Mutex::new(db),
            snap: Mutex::new(snap),
            cache: PlanCache::new(config.plan_cache_capacity),
            admission: Mutex::new(Admission { pending: BTreeMap::new(), next_commit: 0 }),
            admission_cv: Condvar::new(),
            commit_gate: Mutex::new(()),
            admit_max: config.admit_max.max(1),
            worker_metrics: (0..workers).map(|_| Mutex::new(Metrics::default())).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("colorist-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers: handles }
    }

    /// A submission handle sharing this server's state.
    pub fn client(&self) -> Client {
        Client { shared: Arc::clone(&self.shared) }
    }

    /// Sum of every worker's per-request metric charges. Deterministic
    /// counter families are exact for any worker count; `queue_wait_ns`
    /// and `elapsed` are machine-dependent.
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::default();
        for m in &self.shared.worker_metrics {
            total += *m.lock().expect("worker metrics lock");
        }
        total
    }

    /// Prepared-plan cache counters.
    pub fn cache_stats(&self) -> colorist_query::CacheStats {
        self.shared.cache.stats()
    }

    /// Epoch of the currently published read view.
    pub fn published_epoch(&self) -> u64 {
        self.shared.snap.lock().expect("snapshot lock").epoch()
    }

    /// Flush all pending writes, stop the workers, and return the final
    /// database. Requests still queued after the flush barrier are
    /// answered with [`ServerError::Stopped`]; writes a worker already
    /// admitted (racing the stop flag past the barrier) are committed by
    /// a final drain so no ticket is left unfulfilled and no admitted
    /// write is silently dropped.
    pub fn shutdown(self) -> Database {
        let _ = self.client().flush().wait();
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.stopped = true;
            self.shared.queue_cv.notify_all();
        }
        for h in self.workers {
            let _ = h.join();
        }
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            for req in q.requests.drain(..) {
                match req {
                    Request::Read { ticket, .. } => ticket.fulfill(Err(ServerError::Stopped)),
                    Request::Write { ticket, .. } => ticket.fulfill(Err(ServerError::Stopped)),
                    Request::Flush { ticket, .. } => ticket.fulfill(Err(ServerError::Stopped)),
                }
            }
        }
        // A write submitted after the internal flush barrier captured its
        // `upto` but popped and admitted by a worker before it observed
        // the stop flag sits in the admission buffer below `admit_max`
        // with nobody left to commit it. Drain and commit the stragglers
        // (BTreeMap order = admission order) so their clients unblock
        // with real receipts and the returned database contains every
        // write that was ever admitted.
        let stragglers: Vec<PendingWrite> = {
            let mut adm = self.shared.admission.lock().expect("admission lock");
            std::mem::take(&mut adm.pending).into_values().collect()
        };
        if !stragglers.is_empty() {
            commit_group(&self.shared, 0, stragglers);
        }
        // workers joined and queue drained; clients may still hold
        // handles, so clone the authoritative database out instead of
        // unwrapping the Arc
        self.shared.db.lock().expect("db lock").clone()
    }
}

impl Client {
    /// Submit a prepared read query; executes against the published
    /// snapshot on any worker.
    pub fn read(&self, pattern: &Pattern) -> Pending<Result<ReadReply, ServerError>> {
        let (pending, ticket) = Pending::new();
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.stopped {
            drop(q);
            return Pending::ready(Err(ServerError::Stopped));
        }
        q.requests.push_back(Request::Read {
            pattern: Box::new(pattern.clone()),
            enqueued: Instant::now(),
            ticket,
        });
        drop(q);
        self.shared.queue_cv.notify_all();
        pending
    }

    /// Submit a write batch; it is admitted in submission order and
    /// group-committed with whatever certified-independent writes share
    /// its commit cycle.
    pub fn write(&self, batch: UpdateBatch) -> Pending<Result<WriteReply, ServerError>> {
        let (pending, ticket) = Pending::new();
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.stopped {
            drop(q);
            return Pending::ready(Err(ServerError::Stopped));
        }
        let wseq = q.next_wseq;
        q.next_wseq += 1;
        q.requests.push_back(Request::Write {
            wseq,
            batch: Box::new(batch),
            enqueued: Instant::now(),
            ticket,
        });
        drop(q);
        self.shared.queue_cv.notify_all();
        pending
    }

    /// Commit barrier: waits for every write submitted before this call
    /// to commit, then republishes the read view. The reply reports how
    /// many writes the barrier itself had to commit.
    pub fn flush(&self) -> Pending<Result<FlushReply, ServerError>> {
        let (pending, ticket) = Pending::new();
        let mut q = self.shared.queue.lock().expect("queue lock");
        if q.stopped {
            drop(q);
            return Pending::ready(Err(ServerError::Stopped));
        }
        let upto = q.next_wseq;
        q.requests.push_back(Request::Flush { upto, ticket });
        drop(q);
        self.shared.queue_cv.notify_all();
        pending
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let req = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(r) = q.requests.pop_front() {
                    break r;
                }
                if q.stopped {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue wait");
            }
        };
        match req {
            Request::Read { pattern, enqueued, ticket } => {
                let reply = serve_read(shared, &pattern, enqueued);
                if let Ok(r) = &reply {
                    charge(shared, worker, r.metrics);
                }
                ticket.fulfill(reply);
            }
            Request::Write { wseq, batch, enqueued, ticket } => {
                let queue_wait_ns = enqueued.elapsed().as_nanos() as u64;
                {
                    let mut span = colorist_trace::span("server", "admit");
                    span.counter("queue_wait_ns", queue_wait_ns);
                    let mut adm = shared.admission.lock().expect("admission lock");
                    adm.pending.insert(wseq, PendingWrite { batch, ticket, queue_wait_ns });
                    shared.admission_cv.notify_all();
                }
                commit_cycle(shared, worker, None);
            }
            Request::Flush { upto, ticket } => {
                let committed = commit_cycle(shared, worker, Some(upto));
                let epoch = shared.snap.lock().expect("snapshot lock").epoch();
                ticket.fulfill(Ok(FlushReply { committed, epoch }));
            }
        }
    }
}

fn serve_read(
    shared: &Shared,
    pattern: &Pattern,
    enqueued: Instant,
) -> Result<ReadReply, ServerError> {
    let queue_wait_ns = enqueued.elapsed().as_nanos() as u64;
    let snap = Arc::clone(&*shared.snap.lock().expect("snapshot lock"));
    let mut span = colorist_trace::span("server", format!("read:{}", pattern.name));
    span.counter("queue_wait_ns", queue_wait_ns);
    let lookup = optimize_cached(&shared.cache, snap.database(), &shared.graph, pattern)?;
    if lookup.hit {
        span.counter("plan_cache_hits", 1);
    } else {
        span.counter("plan_cache_misses", 1);
        span.counter("plan_cache_evictions", lookup.evicted);
    }
    let r = execute_snapshot(&snap, &shared.graph, &lookup.plan)?;
    let mut metrics = r.metrics;
    metrics.queue_wait_ns += queue_wait_ns;
    if lookup.hit {
        metrics.plan_cache_hits += 1;
    } else {
        metrics.plan_cache_misses += 1;
        metrics.plan_cache_evictions += lookup.evicted;
    }
    Ok(ReadReply {
        elements: r.elements,
        results: r.results,
        distinct: r.distinct,
        epoch: snap.epoch(),
        cache_hit: lookup.hit,
        metrics,
    })
}

fn charge(shared: &Shared, worker: usize, metrics: Metrics) {
    *shared.worker_metrics[worker].lock().expect("worker metrics lock") += metrics;
}

/// Run commit cycles. With `barrier: None`, commit only if the admission
/// threshold is reached; with `Some(upto)`, loop — waiting for stragglers
/// still between the queue and the admission buffer — until every write
/// with `wseq < upto` has committed. Returns how many writes this call
/// committed. Cycles are serialized by `commit_gate` and each drains the
/// contiguous admitted prefix, so commits apply in admission order.
fn commit_cycle(shared: &Shared, worker: usize, barrier: Option<u64>) -> u64 {
    let _gate = shared.commit_gate.lock().expect("commit gate");
    let mut committed = 0u64;
    loop {
        let drained: Vec<PendingWrite> = {
            let mut adm = shared.admission.lock().expect("admission lock");
            loop {
                // the commit frontier is admitted AND (a barrier is
                // active, or the admission threshold is reached): drain
                // the whole contiguous prefix
                let due = adm.pending.contains_key(&adm.next_commit)
                    && (barrier.is_some() || adm.pending.len() >= shared.admit_max);
                if due {
                    let mut v = Vec::new();
                    loop {
                        let frontier = adm.next_commit;
                        match adm.pending.remove(&frontier) {
                            Some(w) => {
                                v.push(w);
                                adm.next_commit += 1;
                            }
                            None => break,
                        }
                    }
                    break v;
                }
                match barrier {
                    Some(upto) if adm.next_commit < upto => {
                        // a write admitted before the barrier is still on
                        // its way from the queue: wait for its worker
                        adm = shared.admission_cv.wait(adm).expect("admission wait");
                    }
                    // below threshold, or a straggler owns the frontier
                    // (its own admission will trigger the cycle)
                    _ => return committed,
                }
            }
        };
        committed += drained.len() as u64;
        commit_group(shared, worker, drained);
    }
}

/// Group-commit one drained admission prefix: certify independence,
/// commit each class under one epoch bump, republish the read view, and
/// fulfill the write tickets. If certification-ordered application fails
/// validation, fall back to committing each batch serially in admission
/// order (per-batch atomicity, per-batch verdicts) — the final state is
/// the serial-order state either way.
fn commit_group(shared: &Shared, worker: usize, drained: Vec<PendingWrite>) {
    let mut span = colorist_trace::span("server", "commit");
    span.counter("admitted", drained.len() as u64);
    let mut sched = CommitScheduler::new();
    let mut tickets = Vec::with_capacity(drained.len());
    for w in drained {
        sched.stage(*w.batch);
        tickets.push(Some((w.ticket, w.queue_wait_ns)));
    }
    let mut db = shared.db.lock().expect("db lock");
    // Commit against a trial clone and install it only on full success.
    // `CommitScheduler::commit` installs independence classes one at a
    // time, so an error on a later class leaves earlier classes applied;
    // the serial fallback must start from the pre-group state or batches
    // in already-committed classes would apply twice.
    let mut trial = db.clone();
    match sched.commit(&mut trial, &shared.graph) {
        Ok(groups) => {
            *db = trial;
            publish(shared, &db);
            drop(db);
            span.counter("groups", groups.len() as u64);
            for g in &groups {
                for (&member, receipt) in g.members.iter().zip(&g.receipts) {
                    let (ticket, queue_wait_ns) =
                        tickets[member].take().expect("one receipt per stage");
                    let metrics = Metrics {
                        queue_wait_ns,
                        page_writes: receipt.pages_written,
                        ..Metrics::default()
                    };
                    charge(shared, worker, metrics);
                    ticket.fulfill(Ok(WriteReply {
                        receipt: receipt.clone(),
                        group_epoch: g.epoch,
                        group_size: g.members.len(),
                        metrics,
                    }));
                }
            }
        }
        Err(_) => {
            // some batch fails validation *somewhere* in the certified
            // order: drop the trial state and degrade to serial
            // admission-order commits against the untouched database so
            // every batch gets an individual verdict
            drop(trial);
            let mut verdicts = Vec::with_capacity(tickets.len());
            for (i, slot) in tickets.iter_mut().enumerate() {
                let (ticket, queue_wait_ns) = slot.take().expect("unfulfilled");
                verdicts.push((
                    ticket,
                    queue_wait_ns,
                    sched.batches()[i].apply(&mut db, &shared.graph),
                ));
            }
            // republish before fulfilling, mirroring the Ok arm, so a
            // client whose write succeeded can never read a snapshot
            // that predates its own commit
            publish(shared, &db);
            drop(db);
            for (ticket, queue_wait_ns, verdict) in verdicts {
                match verdict {
                    Ok(receipt) => {
                        let metrics = Metrics {
                            queue_wait_ns,
                            page_writes: receipt.pages_written,
                            ..Metrics::default()
                        };
                        charge(shared, worker, metrics);
                        let group_epoch = receipt.epoch;
                        ticket.fulfill(Ok(WriteReply {
                            receipt,
                            group_epoch,
                            group_size: 1,
                            metrics,
                        }));
                    }
                    Err(e) => {
                        charge(shared, worker, Metrics { queue_wait_ns, ..Metrics::default() });
                        ticket.fulfill(Err(ServerError::Batch(e)));
                    }
                }
            }
        }
    }
}

/// Republish the read view from the authoritative database.
fn publish(shared: &Shared, db: &Database) {
    *shared.snap.lock().expect("snapshot lock") = Arc::new(db.snapshot());
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_core::{design, Strategy};
    use colorist_datagen::{generate, materialize, ScaleProfile};
    use colorist_er::{catalog, NodeId};
    use colorist_query::{execute, optimize, PatternBuilder};
    use colorist_store::Value;

    fn build(strategy: Strategy) -> (ErGraph, Database) {
        let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
        let schema = design(&g, strategy).expect("tpcw designs");
        let db = materialize(&g, &schema, &generate(&g, &ScaleProfile::uniform(&g, 8), 11));
        (g, db)
    }

    fn by_name(g: &ErGraph, name: &str) -> NodeId {
        g.node_ids().find(|&n| g.node(n).name == name).expect("node exists")
    }

    fn customers_query(g: &ErGraph) -> Pattern {
        PatternBuilder::new(g, "Qc")
            .node("country")
            .node("customer")
            .chain(0, 1, &["in", "address", "has"])
            .expect("path exists")
            .output(1)
            .build()
            .expect("pattern builds")
    }

    #[test]
    fn reads_match_direct_execution_and_hit_the_plan_cache() {
        let (g, db, q) = {
            let (g, db) = build(Strategy::Dr);
            let q = customers_query(&g);
            (g, db, q)
        };
        let expect = execute(&db, &g, &optimize(&db, &g, &q).expect("plan")).expect("runs");
        let server = Server::start(db, &g, &ServerConfig::default().with_workers(2));
        let c = server.client();
        let first = c.read(&q).wait().expect("read serves");
        assert!(!first.cache_hit, "first touch compiles");
        assert_eq!(first.elements, expect.elements);
        let second = c.read(&q).wait().expect("read serves");
        assert!(second.cache_hit, "steady state hits");
        assert_eq!(second.elements, expect.elements);
        let m = server.metrics();
        assert_eq!((m.plan_cache_misses, m.plan_cache_hits), (1, 1));
        assert_eq!(server.cache_stats().entries, 1);
        server.shutdown();
    }

    #[test]
    fn writes_flush_republish_and_equal_serial_application() {
        let (g, db) = build(Strategy::Af);
        let customer = by_name(&g, "customer");
        let targets: Vec<ElementId> =
            (0..4).map(|i| db.canonical_by_ordinal(customer, i).expect("instance")).collect();
        // serial reference
        let mut serial = db.clone();
        for (i, &e) in targets.iter().enumerate() {
            let mut b = UpdateBatch::new();
            b.write_attr(e, 1, Value::Int(1000 + i as i64));
            b.apply(&mut serial, &g).expect("serial apply");
        }
        let server = Server::start(db, &g, &ServerConfig::default().with_workers(4));
        let c = server.client();
        let pendings: Vec<_> = targets
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                let mut b = UpdateBatch::new();
                b.write_attr(e, 1, Value::Int(1000 + i as i64));
                c.write(b)
            })
            .collect();
        let flush = c.flush().wait().expect("flush");
        assert!(flush.epoch > 0, "commits bump the published epoch");
        for p in pendings {
            let w = p.wait().expect("write commits");
            assert!(w.group_size >= 1);
        }
        assert_eq!(server.published_epoch(), flush.epoch);
        let final_db = server.shutdown();
        assert!(
            final_db.same_state(&serial, false).is_ok(),
            "admission-ordered group commit lands on the serial state"
        );
    }

    /// Regression: when a later independence class fails validation, the
    /// scheduler has already committed earlier classes — the serial
    /// fallback must start from the pre-group state, not re-apply them.
    /// Deletes are non-idempotent, so a double-apply flips the valid
    /// batch's verdict to `Deleted` even though its delete committed.
    #[test]
    fn failed_batch_in_group_falls_back_without_double_applying() {
        let (g, mut db) = build(Strategy::Af);
        let item = by_name(&g, "item");
        let doomed = db.canonical_by_ordinal(item, 5).expect("instance");
        {
            let mut b = UpdateBatch::new();
            b.delete(doomed);
            b.apply(&mut db, &g).expect("pre-delete applies");
        }
        let victim = db.canonical_by_ordinal(item, 3).expect("instance");
        // serial reference: only the valid delete lands
        let mut serial = db.clone();
        {
            let mut b = UpdateBatch::new();
            b.delete(victim);
            b.apply(&mut serial, &g).expect("serial apply");
        }
        let server = Server::start(db, &g, &ServerConfig::default());
        let c = server.client();
        // both drain in one commit cycle: the valid delete's class
        // commits first, then the already-deleted delete (empty
        // footprint -> its own later class) fails validation
        let mut ok_batch = UpdateBatch::new();
        ok_batch.delete(victim);
        let mut bad_batch = UpdateBatch::new();
        bad_batch.delete(doomed);
        let p_ok = c.write(ok_batch);
        let p_bad = c.write(bad_batch);
        c.flush().wait().expect("flush runs");
        assert!(p_ok.wait().is_ok(), "valid batch must commit exactly once");
        match p_bad.wait() {
            Err(ServerError::Batch(BatchError::Deleted(e))) => assert_eq!(e, doomed),
            other => panic!("expected Deleted verdict, got {other:?}"),
        }
        let final_db = server.shutdown();
        assert!(
            final_db.same_state(&serial, false).is_ok(),
            "fallback state must equal serial application of the valid batch"
        );
    }

    /// Regression: a write racing `shutdown` past the internal flush
    /// barrier used to be admitted and then stranded — its ticket never
    /// fulfilled, its data silently absent. Every ticket must now
    /// resolve, and the returned database must equal the serial
    /// application of exactly the writes that reported success.
    #[test]
    fn shutdown_never_strands_admitted_writes() {
        let (g, db) = build(Strategy::Dr);
        let customer = by_name(&g, "customer");
        for round in 0..8i64 {
            let targets: Vec<ElementId> =
                (0..6).map(|i| db.canonical_by_ordinal(customer, i).expect("instance")).collect();
            let server = Server::start(db.clone(), &g, &ServerConfig::default().with_workers(2));
            let c = server.client();
            let writer = {
                let targets = targets.clone();
                std::thread::spawn(move || {
                    targets
                        .into_iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let mut b = UpdateBatch::new();
                            b.write_attr(e, 1, Value::Int(7_000 + round * 100 + i as i64));
                            (i, e, c.write(b))
                        })
                        .collect::<Vec<_>>()
                })
            };
            let final_db = server.shutdown();
            let mut reference = db.clone();
            for (i, e, p) in writer.join().expect("writer thread") {
                match p.wait() {
                    Ok(_) => {
                        let mut b = UpdateBatch::new();
                        b.write_attr(e, 1, Value::Int(7_000 + round * 100 + i as i64));
                        b.apply(&mut reference, &g).expect("reference apply");
                    }
                    Err(err) => assert_eq!(err, ServerError::Stopped),
                }
            }
            final_db.same_state(&reference, false).unwrap_or_else(|m| {
                panic!("round {round}: state diverges from acknowledged writes: {m}")
            });
        }
    }

    #[test]
    fn epoch_bump_invalidates_cached_plans_with_zero_stale_serves() {
        let (g, db) = build(Strategy::Dr);
        let customer = by_name(&g, "customer");
        let target = db.canonical_by_ordinal(customer, 0).expect("instance");
        let q = customers_query(&g);
        let server = Server::start(db, &g, &ServerConfig::default());
        let c = server.client();
        assert!(!c.read(&q).wait().expect("read").cache_hit);
        assert!(c.read(&q).wait().expect("read").cache_hit);
        // a committed write refreshes the statistics catalog -> epoch bump
        let mut b = UpdateBatch::new();
        b.write_attr(target, 1, Value::Int(77));
        c.write(b);
        c.flush().wait().expect("flush");
        let post = c.read(&q).wait().expect("read");
        assert!(!post.cache_hit, "stale plan must be re-optimized, not served");
        assert!(c.read(&q).wait().expect("read").cache_hit);
        server.shutdown();
    }

    #[test]
    fn stopped_server_rejects_new_requests() {
        let (g, db) = build(Strategy::En);
        let q = customers_query(&g);
        let server = Server::start(db, &g, &ServerConfig::default());
        let c = server.client();
        server.shutdown();
        assert_eq!(c.read(&q).wait().unwrap_err(), ServerError::Stopped);
        assert_eq!(c.flush().wait().unwrap_err(), ServerError::Stopped);
    }

    #[cfg(all(unix, feature = "uds"))]
    #[test]
    fn uds_front_end_serves_registered_queries() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let (g, db) = build(Strategy::Mcmr);
        let q = customers_query(&g);
        let expect = execute(&db, &g, &optimize(&db, &g, &q).expect("plan")).expect("runs");
        let server = Server::start(db, &g, &ServerConfig::default().with_workers(2));
        let dir = std::env::temp_dir().join(format!("colorist-uds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("svc.sock");
        let front = crate::uds::serve(&server, &path, std::slice::from_ref(&q)).expect("binds");
        let mut conn = UnixStream::connect(&path).expect("connects");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut ask = |line: &str| {
            conn.write_all(line.as_bytes()).expect("write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            reply
        };
        assert_eq!(ask("PING\n"), "OK pong\n");
        let reply = ask("READ qc\n");
        assert!(reply.starts_with(&format!("OK {} ", expect.distinct)), "reply was {reply:?}");
        assert!(ask("READ nosuch\n").starts_with("ERR unknown query"));
        assert!(ask("FLUSH\n").starts_with("OK 0 "));
        front.stop();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

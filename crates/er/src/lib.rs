//! # colorist-er — the Entity-Relationship substrate
//!
//! The design methodology of *Making Designer Schemas with Colors* (ICDE 2006)
//! starts from a design specification expressed as an **ER diagram** in the
//! style of Elmasri & Navathe. This crate provides:
//!
//! * [`model`] — entity types, relationship types (any arity), attributes,
//!   cardinality and participation constraints, and the [`ErDiagram`] builder;
//! * [`simplify`] — the transformations that turn an arbitrary diagram into a
//!   *simplified* one (only binary relationships and atomic attributes), as the
//!   paper assumes (§2.1);
//! * [`graph`] — the **ER graph** view: one node per entity *and* relationship
//!   type, one edge per (relationship, participant) adjacency, plus the edge
//!   orientation preprocessing of §4.1;
//! * [`associations`] — association graphs over the transitive closure of the
//!   ER graph and the enumeration of *eligible* associations for direct
//!   recoverability (§3.1);
//! * [`parse`] — a small text DSL for diagrams, used by the catalog and tests;
//! * [`catalog`] — the diagram collection used in the paper's evaluation:
//!   TPC-W (Figure 1), a Database-Derby-like diagram, and ten textbook-style
//!   diagrams ER1–ER10.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod associations;
pub mod catalog;
pub mod error;
pub mod graph;
pub mod model;
pub mod parse;
pub mod simplify;

pub use associations::{Association, AssociationKind, EligibleAssociations};
pub use error::ErError;
pub use graph::{EdgeId, ErEdge, ErGraph, ErNode, NodeId, NodeKind, Orientation, Sccs};
pub use model::{
    Attribute, Cardinality, Domain, Endpoint, EntityType, ErDiagram, Participation,
    RelationshipType,
};

//! Error type shared by the ER crate.

use std::fmt;

/// Errors produced while building, parsing, or transforming ER diagrams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErError {
    /// A name (entity, relationship, or attribute) was declared twice.
    DuplicateName(String),
    /// A relationship endpoint referenced a participant that does not exist.
    UnknownParticipant {
        /// The relationship declaring the endpoint.
        relationship: String,
        /// The missing participant name.
        participant: String,
    },
    /// A relationship was declared with fewer than two participants.
    TooFewParticipants(String),
    /// The diagram is not *simplified* (binary relationships, atomic
    /// attributes) and the caller required it to be.
    NotSimplified(String),
    /// A parse error in the diagram DSL, with a 1-based line number.
    Parse {
        /// 1-based source line of the error.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Higher-order relationship participation forms a cycle (ill-founded).
    IllFoundedHierarchy(String),
}

impl fmt::Display for ErError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ErError::UnknownParticipant { relationship, participant } => {
                write!(
                    f,
                    "relationship `{relationship}` references unknown participant `{participant}`"
                )
            }
            ErError::TooFewParticipants(r) => {
                write!(f, "relationship `{r}` needs at least two participants")
            }
            ErError::NotSimplified(why) => write!(f, "diagram is not simplified: {why}"),
            ErError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            ErError::IllFoundedHierarchy(r) => {
                write!(f, "higher-order relationship `{r}` participates in itself (directly or transitively)")
            }
        }
    }
}

impl std::error::Error for ErError {}

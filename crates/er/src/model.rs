//! The ER model: entity types, relationship types, attributes, constraints.
//!
//! We follow the Elmasri–Navathe flavor referenced by the paper (§2.1). A
//! *simplified* diagram contains only entity types, **binary** relationship
//! types between distinct entity or relationship types, and **atomic**
//! attributes. Arbitrary diagrams are reduced to simplified ones by
//! [`crate::simplify`].

use crate::error::ErError;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum number of relationship instances a single participant instance can
/// take part in.
///
/// For a classic "1 customer : M orders" relationship `make`, the *customer*
/// endpoint is [`Cardinality::Many`] (one customer makes many orders, so it
/// participates in many `make` instances) and the *order* endpoint is
/// [`Cardinality::One`] (each order is made exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cardinality {
    /// The participant instance occurs in at most one relationship instance.
    One,
    /// The participant instance may occur in many relationship instances.
    Many,
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::One => write!(f, "1"),
            Cardinality::Many => write!(f, "m"),
        }
    }
}

/// Whether every instance of the participant must take part in the
/// relationship (total) or not (partial). §4.2 maps these onto minimum
/// occurrence constraints of the generated schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Participation {
    /// Some participant instances may not take part.
    #[default]
    Partial,
    /// Every participant instance takes part in at least one instance.
    Total,
}

/// Attribute domains. Atomic only in simplified diagrams; composite and
/// multivalued attributes are flattened by [`crate::simplify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Free text.
    Text,
    /// 64-bit integer.
    Integer,
    /// Floating point (stored as text in instances, compared numerically).
    Float,
    /// ISO-8601 date, stored as text.
    Date,
    /// Composite of named sub-attributes (non-simplified diagrams only).
    Composite(Vec<Attribute>),
    /// Multivalued attribute of the given element domain (non-simplified only).
    MultiValued(Box<Domain>),
}

impl Domain {
    /// Whether this domain is atomic (allowed in simplified diagrams).
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Domain::Composite(_) | Domain::MultiValued(_))
    }
}

/// A named, typed attribute of an entity or relationship type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its owner.
    pub name: String,
    /// Whether the attribute is (part of) the owner's key. Key constraints are
    /// orthogonal to the translation (§4.2): they only contribute keys to the
    /// generated element types.
    pub is_key: bool,
    /// Value domain.
    pub domain: Domain,
}

impl Attribute {
    /// A non-key text attribute.
    pub fn text(name: &str) -> Self {
        Attribute { name: name.to_string(), is_key: false, domain: Domain::Text }
    }

    /// A key attribute (text domain by default, like TPC-W surrogate ids).
    pub fn key(name: &str) -> Self {
        Attribute { name: name.to_string(), is_key: true, domain: Domain::Integer }
    }

    /// A non-key attribute with an explicit domain.
    pub fn with_domain(name: &str, domain: Domain) -> Self {
        Attribute { name: name.to_string(), is_key: false, domain }
    }
}

/// An entity type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityType {
    /// Unique name.
    pub name: String,
    /// Attributes (at least one key attribute for well-formed diagrams).
    pub attributes: Vec<Attribute>,
}

/// One endpoint of a relationship type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Name of the participating entity *or relationship* type (higher-order
    /// relationships treat lower-order ones as their entities; §4.1 fn. 3).
    pub participant: String,
    /// How many relationship instances one participant instance can join.
    pub cardinality: Cardinality,
    /// Whether participation is total.
    pub participation: Participation,
    /// Optional role name, to disambiguate recursive relationships.
    pub role: Option<String>,
}

impl Endpoint {
    /// Convenience constructor with partial participation and no role.
    pub fn new(participant: &str, cardinality: Cardinality) -> Self {
        Endpoint {
            participant: participant.to_string(),
            cardinality,
            participation: Participation::Partial,
            role: None,
        }
    }

    /// Mark the endpoint's participation as total.
    pub fn total(mut self) -> Self {
        self.participation = Participation::Total;
        self
    }

    /// Attach a role name.
    pub fn role(mut self, role: &str) -> Self {
        self.role = Some(role.to_string());
        self
    }
}

/// A relationship type of arbitrary arity. Simplified diagrams require
/// exactly two endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipType {
    /// Unique name (shared namespace with entity types).
    pub name: String,
    /// Attributes of the relationship itself.
    pub attributes: Vec<Attribute>,
    /// Participating endpoints, in declaration order.
    pub endpoints: Vec<Endpoint>,
}

impl RelationshipType {
    /// Arity of the relationship.
    pub fn arity(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the relationship is binary.
    pub fn is_binary(&self) -> bool {
        self.arity() == 2
    }

    /// Whether the relationship is many-many (both endpoints
    /// [`Cardinality::Many`]); only meaningful for binary relationships.
    pub fn is_many_many(&self) -> bool {
        self.is_binary() && self.endpoints.iter().all(|e| e.cardinality == Cardinality::Many)
    }

    /// Whether the relationship is one-one (both endpoints
    /// [`Cardinality::One`]); only meaningful for binary relationships.
    pub fn is_one_one(&self) -> bool {
        self.is_binary() && self.endpoints.iter().all(|e| e.cardinality == Cardinality::One)
    }
}

/// A complete ER diagram: a named collection of entity and relationship
/// types over a shared name space.
///
/// Construction is incremental through the builder-style `add_*` methods;
/// [`ErDiagram::validate`] (called by [`ErDiagram::graph`](crate::graph))
/// checks referential integrity.
///
/// ```
/// use colorist_er::{ErDiagram, Attribute};
///
/// let mut d = ErDiagram::new("shop");
/// d.add_entity("customer", vec![Attribute::key("id"), Attribute::text("name")]).unwrap();
/// d.add_entity("order", vec![Attribute::key("id")]).unwrap();
/// // one customer makes many orders
/// d.add_rel_1m("make", "customer", "order").unwrap();
/// assert!(d.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErDiagram {
    /// Diagram name (used in reports).
    pub name: String,
    /// Entity types, in declaration order.
    pub entities: Vec<EntityType>,
    /// Relationship types, in declaration order.
    pub relationships: Vec<RelationshipType>,
}

impl ErDiagram {
    /// Create an empty diagram.
    pub fn new(name: &str) -> Self {
        ErDiagram { name: name.to_string(), ..Default::default() }
    }

    /// Add an entity type. Fails on duplicate names.
    pub fn add_entity(&mut self, name: &str, attributes: Vec<Attribute>) -> Result<(), ErError> {
        if self.has_name(name) {
            return Err(ErError::DuplicateName(name.to_string()));
        }
        self.entities.push(EntityType { name: name.to_string(), attributes });
        Ok(())
    }

    /// Add a relationship type with explicit endpoints.
    pub fn add_relationship(
        &mut self,
        name: &str,
        endpoints: Vec<Endpoint>,
        attributes: Vec<Attribute>,
    ) -> Result<(), ErError> {
        if self.has_name(name) {
            return Err(ErError::DuplicateName(name.to_string()));
        }
        if endpoints.len() < 2 {
            return Err(ErError::TooFewParticipants(name.to_string()));
        }
        self.relationships.push(RelationshipType { name: name.to_string(), attributes, endpoints });
        Ok(())
    }

    /// Add a binary 1:M relationship: one `one_side` instance relates to many
    /// `many_side` instances (so the `one_side` endpoint has
    /// [`Cardinality::Many`] participation).
    pub fn add_rel_1m(
        &mut self,
        name: &str,
        one_side: &str,
        many_side: &str,
    ) -> Result<(), ErError> {
        self.add_relationship(
            name,
            vec![
                Endpoint::new(one_side, Cardinality::Many),
                Endpoint::new(many_side, Cardinality::One),
            ],
            Vec::new(),
        )
    }

    /// Add a binary 1:1 relationship.
    pub fn add_rel_11(&mut self, name: &str, left: &str, right: &str) -> Result<(), ErError> {
        self.add_relationship(
            name,
            vec![Endpoint::new(left, Cardinality::One), Endpoint::new(right, Cardinality::One)],
            Vec::new(),
        )
    }

    /// Add a binary M:N relationship.
    pub fn add_rel_mn(&mut self, name: &str, left: &str, right: &str) -> Result<(), ErError> {
        self.add_relationship(
            name,
            vec![Endpoint::new(left, Cardinality::Many), Endpoint::new(right, Cardinality::Many)],
            Vec::new(),
        )
    }

    /// Whether `name` is already used by an entity or relationship type.
    pub fn has_name(&self, name: &str) -> bool {
        self.entities.iter().any(|e| e.name == name)
            || self.relationships.iter().any(|r| r.name == name)
    }

    /// Look up an entity type by name.
    pub fn entity(&self, name: &str) -> Option<&EntityType> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Look up a relationship type by name.
    pub fn relationship(&self, name: &str) -> Option<&RelationshipType> {
        self.relationships.iter().find(|r| r.name == name)
    }

    /// Number of entity plus relationship types (= ER graph node count).
    pub fn node_count(&self) -> usize {
        self.entities.len() + self.relationships.len()
    }

    /// Validate referential integrity and well-foundedness:
    /// * each endpoint references a declared entity or relationship type;
    /// * no relationship participates in itself, directly or transitively;
    /// * attribute names are unique within each owner.
    pub fn validate(&self) -> Result<(), ErError> {
        for e in &self.entities {
            check_attr_names(&e.name, &e.attributes)?;
        }
        for r in &self.relationships {
            check_attr_names(&r.name, &r.attributes)?;
            for ep in &r.endpoints {
                if !self.has_name(&ep.participant) {
                    return Err(ErError::UnknownParticipant {
                        relationship: r.name.clone(),
                        participant: ep.participant.clone(),
                    });
                }
            }
        }
        // Well-foundedness of higher-order participation: the "participates
        // in" relation over relationship types must be acyclic.
        let rel_index: BTreeMap<&str, usize> =
            self.relationships.iter().enumerate().map(|(i, r)| (r.name.as_str(), i)).collect();
        let n = self.relationships.len();
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        fn dfs(
            i: usize,
            rels: &[RelationshipType],
            idx: &BTreeMap<&str, usize>,
            state: &mut [u8],
        ) -> Result<(), ErError> {
            state[i] = 1;
            for ep in &rels[i].endpoints {
                if let Some(&j) = idx.get(ep.participant.as_str()) {
                    match state[j] {
                        1 => return Err(ErError::IllFoundedHierarchy(rels[j].name.clone())),
                        0 => dfs(j, rels, idx, state)?,
                        _ => {}
                    }
                }
            }
            state[i] = 2;
            Ok(())
        }
        for i in 0..n {
            if state[i] == 0 {
                dfs(i, &self.relationships, &rel_index, &mut state)?;
            }
        }
        Ok(())
    }

    /// Whether the diagram is *simplified*: binary relationships and atomic
    /// attributes only (§2.1).
    pub fn is_simplified(&self) -> bool {
        self.relationships.iter().all(|r| r.is_binary())
            && self
                .entities
                .iter()
                .map(|e| &e.attributes)
                .chain(self.relationships.iter().map(|r| &r.attributes))
                .all(|attrs| attrs.iter().all(|a| a.domain.is_atomic()))
    }

    /// Error with an explanation unless the diagram is simplified.
    pub fn require_simplified(&self) -> Result<(), ErError> {
        for r in &self.relationships {
            if !r.is_binary() {
                return Err(ErError::NotSimplified(format!(
                    "relationship `{}` has arity {}",
                    r.name,
                    r.arity()
                )));
            }
        }
        for (owner, attrs) in self
            .entities
            .iter()
            .map(|e| (&e.name, &e.attributes))
            .chain(self.relationships.iter().map(|r| (&r.name, &r.attributes)))
        {
            if let Some(a) = attrs.iter().find(|a| !a.domain.is_atomic()) {
                return Err(ErError::NotSimplified(format!(
                    "attribute `{}` of `{owner}` is not atomic",
                    a.name
                )));
            }
        }
        Ok(())
    }
}

fn check_attr_names(owner: &str, attrs: &[Attribute]) -> Result<(), ErError> {
    let mut seen = std::collections::BTreeSet::new();
    for a in attrs {
        if !seen.insert(a.name.as_str()) {
            return Err(ErError::DuplicateName(format!("{owner}.{}", a.name)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ErDiagram {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("x")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        d
    }

    #[test]
    fn builder_and_lookup() {
        let d = sample();
        assert!(d.validate().is_ok());
        assert!(d.is_simplified());
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.entity("a").unwrap().attributes.len(), 1);
        let r = d.relationship("r").unwrap();
        assert_eq!(r.endpoints[0].cardinality, Cardinality::Many);
        assert_eq!(r.endpoints[1].cardinality, Cardinality::One);
        assert!(!r.is_many_many());
        assert!(!r.is_one_one());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = sample();
        assert_eq!(d.add_entity("a", vec![]), Err(ErError::DuplicateName("a".into())));
        assert_eq!(d.add_rel_11("r", "a", "b"), Err(ErError::DuplicateName("r".into())));
    }

    #[test]
    fn unknown_participant_rejected() {
        let mut d = sample();
        d.add_rel_1m("bad", "a", "zzz").unwrap();
        assert!(matches!(d.validate(), Err(ErError::UnknownParticipant { .. })));
    }

    #[test]
    fn too_few_participants_rejected() {
        let mut d = sample();
        let err = d.add_relationship("solo", vec![Endpoint::new("a", Cardinality::One)], vec![]);
        assert_eq!(err, Err(ErError::TooFewParticipants("solo".into())));
    }

    #[test]
    fn higher_order_relationships_allowed_when_well_founded() {
        let mut d = sample();
        // relationship over a relationship (treats `r` as an entity)
        d.add_rel_1m("meta", "b", "r").unwrap();
        assert!(d.validate().is_ok());
    }

    #[test]
    fn ill_founded_hierarchy_rejected() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        // r1 participates in r2 and vice versa
        d.add_relationship(
            "r1",
            vec![Endpoint::new("a", Cardinality::Many), Endpoint::new("r2", Cardinality::One)],
            vec![],
        )
        .unwrap();
        d.add_relationship(
            "r2",
            vec![Endpoint::new("a", Cardinality::Many), Endpoint::new("r1", Cardinality::One)],
            vec![],
        )
        .unwrap();
        assert!(matches!(d.validate(), Err(ErError::IllFoundedHierarchy(_))));
    }

    #[test]
    fn cardinality_classifiers() {
        let mut d = sample();
        d.add_rel_mn("mn", "a", "b").unwrap();
        d.add_rel_11("oo", "a", "b").unwrap();
        assert!(d.relationship("mn").unwrap().is_many_many());
        assert!(d.relationship("oo").unwrap().is_one_one());
    }

    #[test]
    fn non_atomic_attribute_detected() {
        let mut d = ErDiagram::new("t");
        d.add_entity(
            "a",
            vec![Attribute::with_domain("addr", Domain::Composite(vec![Attribute::text("city")]))],
        )
        .unwrap();
        assert!(!d.is_simplified());
        assert!(matches!(d.require_simplified(), Err(ErError::NotSimplified(_))));
    }

    #[test]
    fn duplicate_attribute_names_rejected() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::text("x"), Attribute::text("x")]).unwrap();
        assert!(matches!(d.validate(), Err(ErError::DuplicateName(_))));
    }
}

//! Reduction of arbitrary ER diagrams to *simplified* ones (§2.1).
//!
//! Simplified diagrams contain only binary relationship types and atomic
//! attributes. The paper notes that arbitrary diagrams can be translated into
//! simplified ones "by applying simple transformations"; we implement the
//! textbook versions:
//!
//! * **n-ary relationship** `R(E1, …, Ek)`, k ≥ 3 → reify `R` as an entity
//!   type carrying `R`'s attributes, plus `k` binary relationships
//!   `R_Ei` that are 1:M from `Ei` to `R` (each `R` instance involves exactly
//!   one `Ei` instance).
//! * **composite attribute** → flattened atomic attributes with
//!   underscore-joined names (`address.city` → `address_city`).
//! * **multivalued attribute** `A` of `E` → a new weak entity `E_A` holding a
//!   single `value` attribute, linked by a 1:M relationship `E_has_A`.

use crate::error::ErError;
use crate::model::{Attribute, Cardinality, Domain, Endpoint, ErDiagram, Participation};

/// Produce a simplified copy of `diagram`. Idempotent on already simplified
/// diagrams (returns an equal diagram).
pub fn simplify(diagram: &ErDiagram) -> Result<ErDiagram, ErError> {
    diagram.validate()?;
    let mut out = ErDiagram::new(&diagram.name);

    // Entities, with attribute flattening and multivalued extraction.
    let mut extracted: Vec<(String, String)> = Vec::new(); // (owner, new entity)
    for e in &diagram.entities {
        let (atomic, multi) = split_attributes(&e.attributes);
        out.add_entity(&e.name, atomic)?;
        for (attr_name, elem_domain) in multi {
            let child = format!("{}_{}", e.name, attr_name);
            out.add_entity(
                &child,
                vec![Attribute { name: "value".to_string(), is_key: false, domain: elem_domain }],
            )?;
            extracted.push((e.name.clone(), child));
        }
    }
    for (owner, child) in &extracted {
        let rel =
            format!("{owner}_has_{}", child.strip_prefix(&format!("{owner}_")).unwrap_or(child));
        out.add_relationship(
            &rel,
            vec![
                Endpoint::new(owner, Cardinality::Many),
                Endpoint::new(child, Cardinality::One).total(),
            ],
            Vec::new(),
        )?;
    }

    // Relationships: binary kept (with flattened attributes); n-ary reified.
    for r in &diagram.relationships {
        let (atomic, multi) = split_attributes(&r.attributes);
        if !multi.is_empty() {
            return Err(ErError::NotSimplified(format!(
                "relationship `{}` has a multivalued attribute; move it to an entity first",
                r.name
            )));
        }
        if r.is_binary() {
            out.add_relationship(&r.name, r.endpoints.clone(), atomic)?;
        } else {
            // Reify: R becomes an entity; add a surrogate key.
            let mut attrs = vec![Attribute::key("id")];
            attrs.extend(atomic.into_iter().filter(|a| a.name != "id"));
            out.add_entity(&r.name, attrs)?;
            for ep in &r.endpoints {
                let suffix = ep.role.as_deref().unwrap_or(&ep.participant);
                let rel_name = format!("{}_{}", r.name, suffix);
                // Each R instance involves exactly one Ei instance; Ei may be
                // in many R instances unless its original cardinality was One.
                let ei_card = ep.cardinality;
                out.add_relationship(
                    &rel_name,
                    vec![
                        Endpoint {
                            participant: ep.participant.clone(),
                            cardinality: ei_card,
                            participation: ep.participation,
                            role: ep.role.clone(),
                        },
                        Endpoint {
                            participant: r.name.clone(),
                            cardinality: Cardinality::One,
                            participation: Participation::Total,
                            role: None,
                        },
                    ],
                    Vec::new(),
                )?;
            }
        }
    }

    out.validate()?;
    debug_assert!(out.is_simplified());
    Ok(out)
}

/// Flatten composite attributes; split off multivalued ones.
fn split_attributes(attrs: &[Attribute]) -> (Vec<Attribute>, Vec<(String, Domain)>) {
    let mut atomic = Vec::new();
    let mut multi = Vec::new();
    for a in attrs {
        flatten_into(a, None, &mut atomic, &mut multi);
    }
    (atomic, multi)
}

fn flatten_into(
    a: &Attribute,
    prefix: Option<&str>,
    atomic: &mut Vec<Attribute>,
    multi: &mut Vec<(String, Domain)>,
) {
    let name = match prefix {
        Some(p) => format!("{p}_{}", a.name),
        None => a.name.clone(),
    };
    match &a.domain {
        Domain::Composite(subs) => {
            for s in subs {
                flatten_into(s, Some(&name), atomic, multi);
            }
        }
        Domain::MultiValued(elem) => {
            multi.push((name, (**elem).clone()));
        }
        d => atomic.push(Attribute { name, is_key: a.is_key, domain: d.clone() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ErGraph;

    #[test]
    fn already_simplified_is_identity() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let s = simplify(&d).unwrap();
        assert_eq!(s, d);
    }

    #[test]
    fn ternary_relationship_is_reified() {
        let mut d = ErDiagram::new("t");
        for n in ["supplier", "part", "project"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        d.add_relationship(
            "supplies",
            vec![
                Endpoint::new("supplier", Cardinality::Many),
                Endpoint::new("part", Cardinality::Many),
                Endpoint::new("project", Cardinality::Many),
            ],
            vec![Attribute::text("qty")],
        )
        .unwrap();
        let s = simplify(&d).unwrap();
        assert!(s.is_simplified());
        // supplies became an entity with qty + surrogate id
        let e = s.entity("supplies").unwrap();
        assert!(e.attributes.iter().any(|a| a.name == "qty"));
        assert!(e.attributes.iter().any(|a| a.is_key));
        // three binary relationships
        assert!(s.relationship("supplies_supplier").is_some());
        assert!(s.relationship("supplies_part").is_some());
        assert!(s.relationship("supplies_project").is_some());
        // each is 1:m from participant to supplies
        let r = s.relationship("supplies_part").unwrap();
        assert_eq!(r.endpoints[0].cardinality, Cardinality::Many);
        assert_eq!(r.endpoints[1].cardinality, Cardinality::One);
        // and the result builds a graph
        ErGraph::from_diagram(&s).unwrap();
    }

    #[test]
    fn composite_attributes_flattened() {
        let mut d = ErDiagram::new("t");
        d.add_entity(
            "person",
            vec![
                Attribute::key("id"),
                Attribute::with_domain(
                    "address",
                    Domain::Composite(vec![Attribute::text("city"), Attribute::text("zip")]),
                ),
            ],
        )
        .unwrap();
        let s = simplify(&d).unwrap();
        let p = s.entity("person").unwrap();
        let names: Vec<&str> = p.attributes.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["id", "address_city", "address_zip"]);
    }

    #[test]
    fn multivalued_attribute_extracted_as_weak_entity() {
        let mut d = ErDiagram::new("t");
        d.add_entity(
            "person",
            vec![
                Attribute::key("id"),
                Attribute::with_domain("phone", Domain::MultiValued(Box::new(Domain::Text))),
            ],
        )
        .unwrap();
        let s = simplify(&d).unwrap();
        assert!(s.entity("person_phone").is_some());
        let r = s.relationship("person_has_phone").unwrap();
        assert_eq!(r.endpoints[0].participant, "person");
        assert_eq!(r.endpoints[0].cardinality, Cardinality::Many);
        assert_eq!(r.endpoints[1].participation, Participation::Total);
        assert!(s.is_simplified());
    }

    #[test]
    fn nested_composite_with_multivalued_inside() {
        let mut d = ErDiagram::new("t");
        d.add_entity(
            "person",
            vec![Attribute::with_domain(
                "contact",
                Domain::Composite(vec![
                    Attribute::text("email"),
                    Attribute::with_domain("phone", Domain::MultiValued(Box::new(Domain::Text))),
                ]),
            )],
        )
        .unwrap();
        let s = simplify(&d).unwrap();
        let p = s.entity("person").unwrap();
        assert!(p.attributes.iter().any(|a| a.name == "contact_email"));
        assert!(s.entity("person_contact_phone").is_some());
        assert!(s.relationship("person_has_contact_phone").is_some());
    }
}

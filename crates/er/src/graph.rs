//! The **ER graph** view of a simplified diagram (§2.1) and the edge
//! orientation preprocessing of §4.1.
//!
//! The ER graph has one node per entity type *and* per relationship type, and
//! an edge between a relationship node and each of its participants. Edge
//! labels carry the participant's cardinality and participation.
//!
//! Orientation rule (§4.1): if an entity of type `E` can participate in
//! *multiple* relationship instances of type `R` ([`Cardinality::Many`]), the
//! edge is oriented `E → R` — from the "one" side to the "many" side: each
//! `R`-instance has exactly one `E`-instance, so nesting `R` under `E` never
//! duplicates `R`. Edges with [`Cardinality::One`] participation remain
//! undirected (1:1; either nesting direction is duplication-free).

use crate::error::ErError;
use crate::model::{Attribute, Cardinality, ErDiagram, Participation};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a node in an [`ErGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an edge in an [`ErGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether an ER graph node stems from an entity or a relationship type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Entity type.
    Entity,
    /// Relationship type.
    Relationship,
}

/// A node of the ER graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErNode {
    /// Type name (unique across the graph).
    pub name: String,
    /// Entity or relationship.
    pub kind: NodeKind,
    /// Attributes carried over from the diagram.
    pub attributes: Vec<Attribute>,
}

/// An edge of the ER graph: the adjacency between a relationship node and one
/// of its participants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErEdge {
    /// The relationship node.
    pub rel: NodeId,
    /// The participant node (entity, or a lower-order relationship).
    pub participant: NodeId,
    /// Index of this endpoint within the relationship's endpoint list
    /// (0 = left, 1 = right). Distinguishes the two edges of a recursive
    /// relationship whose endpoints are the same type.
    pub endpoint: usize,
    /// How many `rel` instances one participant instance can join.
    pub cardinality: Cardinality,
    /// Whether every participant instance must join.
    pub participation: Participation,
    /// Optional role label.
    pub role: Option<String>,
}

/// The orientation of an ER graph edge after §4.1 preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Must be traversed `from → to` (one side to many side).
    Directed {
        /// Parent end ("one" side).
        from: NodeId,
        /// Child end ("many" side).
        to: NodeId,
    },
    /// 1:1 adjacency; may be oriented either way by a traversal.
    Undirected,
}

/// The ER graph of a simplified diagram, with precomputed orientations,
/// adjacency lists, and strongly connected components of the mixed graph.
#[derive(Debug, Clone)]
pub struct ErGraph {
    /// Diagram name.
    pub name: String,
    nodes: Vec<ErNode>,
    edges: Vec<ErEdge>,
    orientations: Vec<Orientation>,
    /// adjacency: for each node, (edge, other endpoint)
    adj: Vec<Vec<(EdgeId, NodeId)>>,
    /// SCC id per node (condensation of the mixed graph, where undirected
    /// edges connect both ways).
    scc_of: Vec<usize>,
    scc_count: usize,
    name_index: BTreeMap<String, NodeId>,
}

impl ErGraph {
    /// Build the ER graph of a diagram. The diagram must validate and be
    /// simplified (binary relationships); see [`crate::simplify`] to reduce
    /// arbitrary diagrams first.
    pub fn from_diagram(diagram: &ErDiagram) -> Result<Self, ErError> {
        diagram.validate()?;
        for r in &diagram.relationships {
            if !r.is_binary() {
                return Err(ErError::NotSimplified(format!(
                    "relationship `{}` has arity {}",
                    r.name,
                    r.arity()
                )));
            }
        }

        let mut nodes = Vec::with_capacity(diagram.node_count());
        let mut name_index = BTreeMap::new();
        for e in &diagram.entities {
            let id = NodeId(nodes.len() as u32);
            name_index.insert(e.name.clone(), id);
            nodes.push(ErNode {
                name: e.name.clone(),
                kind: NodeKind::Entity,
                attributes: e.attributes.clone(),
            });
        }
        for r in &diagram.relationships {
            let id = NodeId(nodes.len() as u32);
            name_index.insert(r.name.clone(), id);
            nodes.push(ErNode {
                name: r.name.clone(),
                kind: NodeKind::Relationship,
                attributes: r.attributes.clone(),
            });
        }

        let mut edges = Vec::new();
        for r in &diagram.relationships {
            let rel = name_index[&r.name];
            for (endpoint, ep) in r.endpoints.iter().enumerate() {
                let participant = name_index[&ep.participant];
                edges.push(ErEdge {
                    rel,
                    participant,
                    endpoint,
                    cardinality: ep.cardinality,
                    participation: ep.participation,
                    role: ep.role.clone(),
                });
            }
        }

        let orientations: Vec<Orientation> = edges
            .iter()
            .map(|e| match e.cardinality {
                // E participates in many R instances: orient E -> R.
                Cardinality::Many => Orientation::Directed { from: e.participant, to: e.rel },
                Cardinality::One => Orientation::Undirected,
            })
            .collect();

        let mut adj: Vec<Vec<(EdgeId, NodeId)>> = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adj[e.rel.idx()].push((id, e.participant));
            adj[e.participant.idx()].push((id, e.rel));
        }

        let (scc_of, scc_count) = compute_sccs(nodes.len(), &edges, &orientations, &adj);

        Ok(ErGraph {
            name: diagram.name.clone(),
            nodes,
            edges,
            orientations,
            adj,
            scc_of,
            scc_count,
            name_index,
        })
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[ErNode] {
        &self.nodes
    }

    /// All edges, indexable by [`EdgeId`].
    pub fn edges(&self) -> &[ErEdge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &ErNode {
        &self.nodes[id.idx()]
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &ErEdge {
        &self.edges[id.idx()]
    }

    /// Node lookup by type name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The §4.1 orientation of an edge.
    pub fn orientation(&self, e: EdgeId) -> Orientation {
        self.orientations[e.idx()]
    }

    /// Incident edges of a node, as `(edge, other endpoint)` pairs.
    pub fn incident(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[n.idx()]
    }

    /// Walk an edge chain from `from`, taking each edge to its other
    /// endpoint in order; returns the terminal node, or `None` when an edge
    /// id is out of range or not incident to the walk's current node. The
    /// static plan verifier uses this to check that a structural join's
    /// `via` sequence is a connected ER path between its endpoint types.
    pub fn chain_end(&self, from: NodeId, via: &[EdgeId]) -> Option<NodeId> {
        let mut cur = from;
        for &e in via {
            if e.idx() >= self.edges.len() {
                return None;
            }
            let edge = self.edge(e);
            cur = if edge.rel == cur {
                edge.participant
            } else if edge.participant == cur {
                edge.rel
            } else {
                return None;
            };
        }
        Some(cur)
    }

    /// The endpoint of `e` that is not `n`. Panics if `n` is not an endpoint.
    pub fn other_end(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = self.edge(e);
        if edge.rel == n {
            edge.participant
        } else {
            assert_eq!(edge.participant, n, "{n} is not an endpoint of {e}");
            edge.rel
        }
    }

    /// Whether `e` may be traversed from `from` toward the other endpoint
    /// under the §4.1 orientation (directed edges only forward; undirected
    /// edges either way).
    pub fn traversable_from(&self, e: EdgeId, from: NodeId) -> bool {
        match self.orientation(e) {
            Orientation::Directed { from: f, .. } => f == from,
            Orientation::Undirected => true,
        }
    }

    /// Functional successors of `n`: `(edge, successor)` pairs such that
    /// nesting `successor` under `n` duplicates nothing (each successor
    /// instance has at most one `n` instance via that edge).
    pub fn functional_successors(&self, n: NodeId) -> Vec<(EdgeId, NodeId)> {
        self.adj[n.idx()].iter().copied().filter(|&(e, _)| self.traversable_from(e, n)).collect()
    }

    /// SCC id of a node in the mixed graph (undirected edges both ways).
    pub fn scc(&self, n: NodeId) -> usize {
        self.scc_of[n.idx()]
    }

    /// Number of SCCs.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// SCC ids with no incoming directed edge from a different SCC
    /// ("source" components of the condensation) — Algorithm MC picks its
    /// start nodes from these (Figure 7, step 2).
    pub fn source_sccs(&self) -> Vec<usize> {
        let mut has_incoming = vec![false; self.scc_count];
        for (i, _e) in self.edges.iter().enumerate() {
            if let Orientation::Directed { from, to } = self.orientations[i] {
                let (a, b) = (self.scc_of[from.idx()], self.scc_of[to.idx()]);
                if a != b {
                    has_incoming[b] = true;
                }
            }
        }
        (0..self.scc_count).filter(|&s| !has_incoming[s]).collect()
    }

    /// SCCs of the subgraph keeping only edges where `edge_alive` holds
    /// (directed edges one-way, undirected both ways). Algorithm MC calls
    /// this on the *uncolored* subgraph before picking each start node.
    pub fn sccs_masked(&self, edge_alive: impl Fn(EdgeId) -> bool) -> Sccs {
        let (of, count) =
            compute_sccs_masked(self.nodes.len(), &self.orientations, &self.adj, &edge_alive);
        Sccs { of, count }
    }

    /// Per-node flag: is the node's masked SCC a *source* (no incoming alive
    /// directed edge from a different SCC)?
    pub fn in_source_scc_masked(
        &self,
        sccs: &Sccs,
        edge_alive: impl Fn(EdgeId) -> bool,
    ) -> Vec<bool> {
        let mut has_incoming = vec![false; sccs.count];
        for i in 0..self.edges.len() {
            if !edge_alive(EdgeId(i as u32)) {
                continue;
            }
            if let Orientation::Directed { from, to } = self.orientations[i] {
                let (a, b) = (sccs.of[from.idx()], sccs.of[to.idx()]);
                if a != b {
                    has_incoming[b] = true;
                }
            }
        }
        (0..self.nodes.len()).map(|n| !has_incoming[sccs.of[n]]).collect()
    }

    /// Whether the *underlying undirected* graph is a forest (no cycles).
    /// Condition (i) of Theorem 4.1.
    pub fn is_forest(&self) -> bool {
        // A multigraph is a forest iff every connected component has
        // |edges| = |nodes| - 1 and there are no parallel edges/self loops.
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for e in &self.edges {
            let (a, b) = (find(&mut parent, e.rel.idx()), find(&mut parent, e.participant.idx()));
            if a == b {
                return false; // cycle (including parallel edges)
            }
            parent[a] = b;
        }
        true
    }

    /// Relationship nodes that are many-many (both incident edges Many).
    pub fn many_many_relationships(&self) -> Vec<NodeId> {
        self.relationship_nodes()
            .filter(|&r| {
                let inc = &self.adj[r.idx()];
                inc.len() == 2
                    && inc.iter().all(|&(e, _)| self.edge(e).cardinality == Cardinality::Many)
            })
            .collect()
    }

    /// For each node, the number of one-many relationship types in which it
    /// is on the **many** side (participates with [`Cardinality::One`] while
    /// the opposite endpoint participates with [`Cardinality::Many`]).
    /// Condition (iii) of Theorem 4.1 requires this to be ≤ 1 for all nodes.
    pub fn many_side_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for r in self.relationship_nodes() {
            let inc = &self.adj[r.idx()];
            if inc.len() != 2 {
                continue;
            }
            let (e0, n0) = inc[0];
            let (e1, n1) = inc[1];
            let c0 = self.edge(e0).cardinality;
            let c1 = self.edge(e1).cardinality;
            match (c0, c1) {
                (Cardinality::Many, Cardinality::One) => counts[n1.idx()] += 1,
                (Cardinality::One, Cardinality::Many) => counts[n0.idx()] += 1,
                _ => {}
            }
        }
        counts
    }

    /// Iterator over relationship node ids.
    pub fn relationship_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.node(n).kind == NodeKind::Relationship)
    }

    /// Iterator over entity node ids.
    pub fn entity_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.node(n).kind == NodeKind::Entity)
    }
}

/// SCC decomposition of a (possibly edge-masked) mixed graph.
#[derive(Debug, Clone)]
pub struct Sccs {
    /// SCC id per node index.
    pub of: Vec<usize>,
    /// Number of SCCs.
    pub count: usize,
}

/// Tarjan SCC over the full mixed graph.
fn compute_sccs(
    n: usize,
    _edges: &[ErEdge],
    orientations: &[Orientation],
    adj: &[Vec<(EdgeId, NodeId)>],
) -> (Vec<usize>, usize) {
    compute_sccs_masked(n, orientations, adj, &|_| true)
}

/// Tarjan SCC over the mixed graph restricted to alive edges: directed edges
/// one-way, undirected edges both ways. Iterative to avoid recursion limits
/// on large graphs.
fn compute_sccs_masked(
    n: usize,
    orientations: &[Orientation],
    adj: &[Vec<(EdgeId, NodeId)>],
    edge_alive: &impl Fn(EdgeId) -> bool,
) -> (Vec<usize>, usize) {
    // successor list under the mixed-graph semantics
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            adj[u]
                .iter()
                .filter_map(|&(e, v)| {
                    if !edge_alive(e) {
                        return None;
                    }
                    let ok = match orientations[e.idx()] {
                        Orientation::Directed { from, .. } => from.idx() == u,
                        Orientation::Undirected => true,
                    };
                    ok.then_some(v.idx())
                })
                .collect()
        })
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (node, next successor position)
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (u, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[u] = next_index;
                low[u] = next_index;
                next_index += 1;
                stack.push(u);
                on_stack[u] = true;
            }
            if *pos < succ[u].len() {
                let v = succ[u][*pos];
                *pos += 1;
                if index[v] == usize::MAX {
                    call.push((v, 0));
                } else if on_stack[v] {
                    low[u] = low[u].min(index[v]);
                }
            } else {
                if low[u] == index[u] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == u {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p] = low[p].min(low[u]);
                }
            }
        }
    }
    (scc_of, scc_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Attribute;

    fn chain() -> ErGraph {
        // a -r1-> b -r2-> c   (two 1:m relationships)
        let mut d = ErDiagram::new("chain");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "b", "c").unwrap();
        ErGraph::from_diagram(&d).unwrap()
    }

    #[test]
    fn builds_nodes_and_edges() {
        let g = chain();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node(g.node_by_name("r1").unwrap()).kind, NodeKind::Relationship);
        assert_eq!(g.node(g.node_by_name("a").unwrap()).kind, NodeKind::Entity);
    }

    #[test]
    fn orientation_follows_cardinality() {
        let g = chain();
        let a = g.node_by_name("a").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        let b = g.node_by_name("b").unwrap();
        // a participates in many r1 instances -> a directed toward r1
        let (e_ar1, _) = g.incident(a)[0];
        assert_eq!(g.orientation(e_ar1), Orientation::Directed { from: a, to: r1 });
        // b participates once in r1 -> undirected
        let &(e_br1, _) = g.incident(b).iter().find(|&&(e, _)| g.edge(e).rel == r1).unwrap();
        assert_eq!(g.orientation(e_br1), Orientation::Undirected);
        assert!(g.traversable_from(e_ar1, a));
        assert!(!g.traversable_from(e_ar1, r1));
        assert!(g.traversable_from(e_br1, b));
        assert!(g.traversable_from(e_br1, r1));
    }

    #[test]
    fn forest_detection() {
        let g = chain();
        assert!(g.is_forest());

        // add a cycle: c -r3-> a
        let mut d = ErDiagram::new("cyc");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "b", "c").unwrap();
        d.add_rel_1m("r3", "c", "a").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        assert!(!g.is_forest());
    }

    #[test]
    fn many_many_detection() {
        let mut d = ErDiagram::new("mn");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_mn("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        assert_eq!(g.many_many_relationships(), vec![g.node_by_name("r").unwrap()]);
    }

    #[test]
    fn many_side_counts_flag_shared_children() {
        // b is on the many side of both r1 (from a) and r2 (from c)
        let mut d = ErDiagram::new("t");
        for n in ["a", "b", "c"] {
            d.add_entity(n, vec![Attribute::key("id")]).unwrap();
        }
        d.add_rel_1m("r1", "a", "b").unwrap();
        d.add_rel_1m("r2", "c", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let counts = g.many_side_counts();
        assert_eq!(counts[g.node_by_name("b").unwrap().idx()], 2);
        assert_eq!(counts[g.node_by_name("a").unwrap().idx()], 0);
    }

    #[test]
    fn sccs_of_dag_are_singletons_and_sources_found() {
        let g = chain();
        // {a}, {r1, b} (joined by the undirected 1:1 edge), {r2, c}
        assert_eq!(g.scc_count(), 3);
        let sources = g.source_sccs();
        // `a` must be in a source SCC; `b`, `c`, `r1`, `r2` reachable from a.
        let a = g.node_by_name("a").unwrap();
        assert!(sources.contains(&g.scc(a)));
        // b is undirected-adjacent to r1 (1:1) so b and r1 are in one SCC?
        // No: undirected edges go both ways, so b <-> r1 are mutually
        // reachable and must share an SCC.
        let b = g.node_by_name("b").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        assert_eq!(g.scc(b), g.scc(r1));
    }

    #[test]
    fn one_one_cycle_is_single_scc() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_11("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        // a - r - b all connected by undirected edges: one SCC
        assert_eq!(g.scc_count(), 1);
        assert_eq!(g.source_sccs(), vec![0]);
    }

    #[test]
    fn functional_successors_respect_direction() {
        let g = chain();
        let a = g.node_by_name("a").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        let succ_a: Vec<NodeId> = g.functional_successors(a).into_iter().map(|(_, n)| n).collect();
        assert_eq!(succ_a, vec![r1]);
        // from r1: can reach b (undirected) but not a (wrong way)
        let succ_r1: Vec<NodeId> =
            g.functional_successors(r1).into_iter().map(|(_, n)| n).collect();
        assert_eq!(succ_r1, vec![g.node_by_name("b").unwrap()]);
    }
}

//! A small line-oriented text DSL for ER diagrams, used by the catalog,
//! examples, and tests.
//!
//! ```text
//! diagram shop                      # optional name directive
//! entity customer { id* name email }
//! entity order    { id* date total:float }
//! rel make 1:m customer -- order!   # one customer, many orders;
//!                                   # `!` marks total participation
//! rel pays m:n customer -- order { method }
//! ```
//!
//! Attribute syntax: `name` (text), `name:int|float|date|text`, `name*`
//! (key, integer domain unless a type is given). Participant syntax:
//! `name`, `name!` (total participation), `name@role` (role label, for
//! recursive relationships), combinable as `name@role!`.
//!
//! Cardinality syntax `X:Y` reads "X left-instances relate to Y
//! right-instances": `1:m a -- b` means one `a` has many `b`s, so the `a`
//! endpoint participates in Many relationship instances and `b` in One.

use crate::error::ErError;
use crate::model::{Attribute, Cardinality, Domain, Endpoint, ErDiagram};

/// Parse a diagram from DSL text.
pub fn parse_diagram(input: &str) -> Result<ErDiagram, ErError> {
    let mut diagram = ErDiagram::new("unnamed");
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ErError::Parse { line: lineno + 1, message };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("diagram") => {
                let name = words.next().ok_or_else(|| err("missing diagram name".into()))?;
                diagram.name = name.to_string();
            }
            Some("entity") => {
                let name = words.next().ok_or_else(|| err("missing entity name".into()))?;
                let attrs = parse_attr_block(line, lineno + 1)?;
                diagram.add_entity(name, attrs).map_err(|e| err(e.to_string()))?;
            }
            Some("rel") => {
                parse_rel(&mut diagram, line, lineno + 1)?;
            }
            Some(other) => {
                return Err(err(format!("unknown directive `{other}`")));
            }
            None => unreachable!(),
        }
    }
    diagram.validate()?;
    Ok(diagram)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse the `{ ... }` attribute block of a line, if any.
fn parse_attr_block(line: &str, lineno: usize) -> Result<Vec<Attribute>, ErError> {
    let Some(open) = line.find('{') else {
        return Ok(Vec::new());
    };
    let close = line.rfind('}').ok_or(ErError::Parse {
        line: lineno,
        message: "unterminated `{` attribute block".into(),
    })?;
    if close < open {
        return Err(ErError::Parse { line: lineno, message: "mismatched braces".into() });
    }
    line[open + 1..close].split_whitespace().map(|tok| parse_attr(tok, lineno)).collect()
}

fn parse_attr(tok: &str, lineno: usize) -> Result<Attribute, ErError> {
    let (name_part, domain_part) = match tok.split_once(':') {
        Some((n, d)) => (n, Some(d)),
        None => (tok, None),
    };
    let (name, is_key) = match name_part.strip_suffix('*') {
        Some(n) => (n, true),
        None => (name_part, false),
    };
    if name.is_empty() {
        return Err(ErError::Parse { line: lineno, message: format!("bad attribute `{tok}`") });
    }
    let domain = match domain_part {
        Some("int") => Domain::Integer,
        Some("float") => Domain::Float,
        Some("date") => Domain::Date,
        Some("text") => Domain::Text,
        Some(other) => {
            return Err(ErError::Parse {
                line: lineno,
                message: format!("unknown attribute type `{other}`"),
            })
        }
        None if is_key => Domain::Integer,
        None => Domain::Text,
    };
    Ok(Attribute { name: name.to_string(), is_key, domain })
}

fn parse_rel(diagram: &mut ErDiagram, line: &str, lineno: usize) -> Result<(), ErError> {
    let err = |message: String| ErError::Parse { line: lineno, message };
    // strip any attribute block before tokenizing the header
    let header = match line.find('{') {
        Some(i) => &line[..i],
        None => line,
    };
    let attrs = parse_attr_block(line, lineno)?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    // rel NAME X:Y LEFT -- RIGHT
    if toks.len() != 6 || toks[4] != "--" {
        return Err(err(format!("expected `rel NAME X:Y LEFT -- RIGHT`, got `{}`", header.trim())));
    }
    let name = toks[1];
    let (cl, cr) = parse_cardinalities(toks[2], lineno)?;
    let left = parse_participant(toks[3], cl);
    let right = parse_participant(toks[5], cr);
    diagram.add_relationship(name, vec![left, right], attrs).map_err(|e| err(e.to_string()))
}

/// `X:Y` where one `X` relates to `Y` many/one right instances. The endpoint
/// cardinality is the *opposite* side's multiplicity: in `1:m`, the left
/// participant joins Many instances (one left : many right).
fn parse_cardinalities(tok: &str, lineno: usize) -> Result<(Cardinality, Cardinality), ErError> {
    let parse_side = |s: &str| match s {
        "1" => Some(false),
        "m" | "n" | "M" | "N" => Some(true),
        _ => None,
    };
    let (l, r) = tok.split_once(':').unwrap_or((tok, ""));
    match (parse_side(l), parse_side(r)) {
        (Some(lm), Some(rm)) => {
            // left endpoint participates in as many instances as there are
            // right partners per left instance, and vice versa.
            let left_card = if rm { Cardinality::Many } else { Cardinality::One };
            let right_card = if lm { Cardinality::Many } else { Cardinality::One };
            Ok((left_card, right_card))
        }
        _ => Err(ErError::Parse {
            line: lineno,
            message: format!("bad cardinality `{tok}` (use 1:1, 1:m, m:1, or m:n)"),
        }),
    }
}

fn parse_participant(tok: &str, cardinality: Cardinality) -> Endpoint {
    let (tok, total) = match tok.strip_suffix('!') {
        Some(t) => (t, true),
        None => (tok, false),
    };
    let (name, role) = match tok.split_once('@') {
        Some((n, r)) => (n, Some(r.to_string())),
        None => (tok, None),
    };
    let mut ep = Endpoint::new(name, cardinality);
    if total {
        ep = ep.total();
    }
    ep.role = role;
    ep
}

/// Serialize a (binary) diagram back to DSL text. Inverse of
/// [`parse_diagram`] up to formatting.
pub fn to_dsl(diagram: &ErDiagram) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "diagram {}", diagram.name);
    for e in &diagram.entities {
        let _ = write!(s, "entity {}", e.name);
        write_attrs(&mut s, &e.attributes);
        s.push('\n');
    }
    for r in &diagram.relationships {
        assert!(r.is_binary(), "DSL serialization requires binary relationships");
        let (l, rr) = (&r.endpoints[0], &r.endpoints[1]);
        // invert the endpoint-cardinality encoding back to X:Y notation
        let x = match rr.cardinality {
            Cardinality::Many => "m",
            Cardinality::One => "1",
        };
        let y = match l.cardinality {
            Cardinality::Many => "m",
            Cardinality::One => "1",
        };
        let _ = write!(
            s,
            "rel {} {}:{} {} -- {}",
            r.name,
            x,
            y,
            fmt_participant(l),
            fmt_participant(rr)
        );
        write_attrs(&mut s, &r.attributes);
        s.push('\n');
    }
    s
}

fn fmt_participant(ep: &Endpoint) -> String {
    let mut s = ep.participant.clone();
    if let Some(role) = &ep.role {
        s.push('@');
        s.push_str(role);
    }
    if ep.participation == crate::model::Participation::Total {
        s.push('!');
    }
    s
}

fn write_attrs(s: &mut String, attrs: &[Attribute]) {
    use std::fmt::Write as _;
    if attrs.is_empty() {
        return;
    }
    s.push_str(" {");
    for a in attrs {
        let _ = write!(s, " {}", a.name);
        if a.is_key {
            s.push('*');
        }
        match (&a.domain, a.is_key) {
            (Domain::Integer, true) => {}
            (Domain::Text, false) => {}
            (Domain::Integer, false) => s.push_str(":int"),
            (Domain::Float, _) => s.push_str(":float"),
            (Domain::Date, _) => s.push_str(":date"),
            (Domain::Text, true) => s.push_str(":text"),
            _ => panic!("non-atomic attribute in DSL serialization"),
        }
    }
    s.push_str(" }");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Participation;

    #[test]
    fn parses_entities_rels_attrs() {
        let d = parse_diagram(
            "diagram shop\n\
             # a comment\n\
             entity customer { id* name email }\n\
             entity order { id* total:float placed:date }\n\
             rel make 1:m customer -- order!  # totals\n\
             rel pays m:n customer -- order { method }\n",
        )
        .unwrap();
        assert_eq!(d.name, "shop");
        assert_eq!(d.entities.len(), 2);
        let c = d.entity("customer").unwrap();
        assert!(c.attributes[0].is_key);
        assert_eq!(c.attributes[0].domain, Domain::Integer);
        assert_eq!(d.entity("order").unwrap().attributes[1].domain, Domain::Float);
        let make = d.relationship("make").unwrap();
        assert_eq!(make.endpoints[0].cardinality, Cardinality::Many); // one customer, many orders
        assert_eq!(make.endpoints[1].cardinality, Cardinality::One);
        assert_eq!(make.endpoints[1].participation, Participation::Total);
        assert!(d.relationship("pays").unwrap().is_many_many());
        assert_eq!(d.relationship("pays").unwrap().attributes[0].name, "method");
    }

    #[test]
    fn m1_is_mirror_of_1m() {
        let d = parse_diagram("entity a { id* }\nentity b { id* }\nrel r m:1 a -- b\n").unwrap();
        let r = d.relationship("r").unwrap();
        // many a : one b -> a participates once, b participates many times
        assert_eq!(r.endpoints[0].cardinality, Cardinality::One);
        assert_eq!(r.endpoints[1].cardinality, Cardinality::Many);
    }

    #[test]
    fn roles_parsed() {
        let d = parse_diagram(
            "entity employee { id* }\nrel manages 1:m employee@boss -- employee@report\n",
        )
        .unwrap();
        let r = d.relationship("manages").unwrap();
        assert_eq!(r.endpoints[0].role.as_deref(), Some("boss"));
        assert_eq!(r.endpoints[1].role.as_deref(), Some("report"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_diagram("entity a { id* }\nrel r 1:m a - b\n").unwrap_err();
        assert!(matches!(e, ErError::Parse { line: 2, .. }), "{e:?}");
        let e = parse_diagram("entity a { id*\n").unwrap_err();
        assert!(matches!(e, ErError::Parse { line: 1, .. }), "{e:?}");
        let e = parse_diagram("entity a { id* }\nrel r 2:m a -- a\n").unwrap_err();
        assert!(matches!(e, ErError::Parse { line: 2, .. }), "{e:?}");
        let e = parse_diagram("bogus x\n").unwrap_err();
        assert!(matches!(e, ErError::Parse { line: 1, .. }), "{e:?}");
    }

    #[test]
    fn unknown_participant_fails_validation() {
        let e = parse_diagram("entity a { id* }\nrel r 1:m a -- nope\n").unwrap_err();
        assert!(matches!(e, ErError::UnknownParticipant { .. }), "{e:?}");
    }

    #[test]
    fn round_trip() {
        let src = "diagram shop\n\
             entity customer { id* name joined:date score:int }\n\
             entity order { id* total:float }\n\
             rel make 1:m customer -- order!\n\
             rel pays m:n customer -- order { method }\n\
             rel twin 1:1 customer -- order\n";
        let d = parse_diagram(src).unwrap();
        let printed = to_dsl(&d);
        let d2 = parse_diagram(&printed).unwrap();
        assert_eq!(d, d2);
    }
}

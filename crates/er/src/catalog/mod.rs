//! The ER diagram collection used by the paper's evaluation (§6).
//!
//! * [`tpcw`] — the TPC-W benchmark diagram of Figure 1. Attributes are
//!   suppressed in the paper ("can be readily imagined"); ours mirror the
//!   TPC-W relational schema. One modeling note: Figure 1 draws both an
//!   `order_line` and an `occur_in` node, but the prose (§4.1, §5.1) twice
//!   describes `order_line` as *"the many-many relationship type between
//!   order and item"*; we follow the prose, absorbing `occur_in` into the
//!   M:N `order_line` node. The ER-graph shape that drives every result —
//!   `order → order_line ← item`, and `order` on the many side of `make`,
//!   `billing` and `shipping` — is preserved. `has` runs 1:M from `address`
//!   to `customer` (TPC-W's `C_ADDR_ID`: one address per customer), which is
//!   what lets Figure 3 nest `customer` under `address` without duplication.
//! * [`derby`] — the paper uses a real-world schema from the 1985 "Database
//!   Derby" contest, which is not available; this is a comparable real-world
//!   style manufacturing-company diagram with the same size class and a
//!   matching 20-query workload (8 updates) in `colorist-workload`.
//! * [`er1`]–[`er10`] — ten textbook/CASE-tool style diagrams, 10–30 ER-graph
//!   nodes, mixing cardinalities, cycles, M:N relationships, 1:1
//!   relationships, and a recursive relationship; the paper's own collection
//!   (from its offline web supplement) is reconstructed in spirit.
//! * [`toy_mcmr`] / [`toy_dumc`] — the two §5.2 toy graphs used to separate
//!   EN from DR and MCMR from DUMC; used heavily by tests.

use crate::model::ErDiagram;
use crate::parse::parse_diagram;

/// Parse one of the built-in DSL sources. Panics on malformed built-ins
/// (covered by tests).
fn must(src: &str) -> ErDiagram {
    parse_diagram(src).expect("built-in catalog diagram must parse")
}

/// TPC-W (Figure 1): 7 entity types, 8 relationship types, 15 ER-graph nodes.
pub fn tpcw() -> ErDiagram {
    must(
        "diagram tpcw\n\
         entity customer { id* uname fname lname email phone discount:float }\n\
         entity address { id* street1 street2 city state zip }\n\
         entity country { id* name currency exchange:float }\n\
         entity order { id* date:date subtotal:float tax:float total:float status }\n\
         entity item { id* title cost:float pub_date:date subject }\n\
         entity author { id* fname lname bio }\n\
         entity credit_card_transaction { id* cc_type cc_number expiry:date auth_id amount:float }\n\
         rel write 1:m author -- item\n\
         rel order_line m:n order -- item { qty:int discount:float comments }\n\
         rel make 1:m customer -- order!\n\
         rel has 1:m address -- customer!\n\
         rel in 1:m country -- address!\n\
         rel billing 1:m address@bill_address -- order!\n\
         rel shipping 1:m address@ship_address -- order!\n\
         rel associate 1:1 order -- credit_card_transaction\n",
    )
}

/// A Database-Derby-like real-world diagram: manufacturing company,
/// 10 entities + 11 relationships = 21 ER-graph nodes.
pub fn derby() -> ErDiagram {
    must(
        "diagram derby\n\
         entity department { id* name budget:float floor:int }\n\
         entity employee { id* name title salary:float hired:date }\n\
         entity dependent { id* name birth:date relation }\n\
         entity project { id* name deadline:date priority:int }\n\
         entity supplier { id* name city rating:int }\n\
         entity part { id* name color weight:float price:float }\n\
         entity warehouse { id* city capacity:int }\n\
         entity firm { id* name industry }\n\
         entity purchase { id* date:date total:float }\n\
         entity invoice { id* issued:date amount:float paid }\n\
         rel works_in 1:m department -- employee!\n\
         rel manages 1:1 employee -- department\n\
         rel has_dependent 1:m employee -- dependent!\n\
         rel assigned_to m:n employee -- project { hours:int }\n\
         rel controls 1:m department -- project\n\
         rel supplies m:n supplier -- part { lead_days:int }\n\
         rel stocked_in m:n part -- warehouse { qty:int }\n\
         rel places 1:m firm -- purchase!\n\
         rel includes m:n purchase -- part { qty:int }\n\
         rel billed_by 1:1 purchase -- invoice\n\
         rel ships_from 1:m warehouse -- purchase\n",
    )
}

/// ER1: university registration. 7 entities + 8 relationships = 15 nodes.
pub fn er1() -> ErDiagram {
    must(
        "diagram er1_university\n\
         entity student { id* name year:int gpa:float }\n\
         entity course { id* title credits:int }\n\
         entity section { id* term room }\n\
         entity instructor { id* name rank }\n\
         entity dept { id* name building }\n\
         entity textbook { id* title isbn }\n\
         entity club { id* name kind }\n\
         rel enrolls m:n student -- section { grade }\n\
         rel offers 1:m dept -- course!\n\
         rel has_section 1:m course -- section!\n\
         rel teaches 1:m instructor -- section\n\
         rel member_of 1:m dept -- instructor\n\
         rel uses m:n section -- textbook\n\
         rel advises 1:m instructor -- student\n\
         rel joins m:n student -- club\n",
    )
}

/// ER2: hospital. 8 entities + 8 relationships = 16 nodes.
pub fn er2() -> ErDiagram {
    must(
        "diagram er2_hospital\n\
         entity patient { id* name born:date blood }\n\
         entity doctor { id* name specialty }\n\
         entity nurse { id* name grade }\n\
         entity ward { id* name beds:int }\n\
         entity admission { id* on:date reason }\n\
         entity treatment { id* kind started:date }\n\
         entity medication { id* name dose }\n\
         entity unit { id* name }\n\
         rel admitted 1:m patient -- admission!\n\
         rel in_ward 1:m ward -- admission\n\
         rel attends 1:m doctor -- admission\n\
         rel doc_in 1:m unit -- doctor!\n\
         rel staffed_by 1:m ward -- nurse\n\
         rel prescribes 1:m admission -- treatment!\n\
         rel uses_med m:n treatment -- medication\n\
         rel heads 1:1 doctor -- unit\n",
    )
}

/// ER3: library. 8 entities + 8 relationships = 16 nodes.
pub fn er3() -> ErDiagram {
    must(
        "diagram er3_library\n\
         entity book { id* title year:int }\n\
         entity copy { id* shelf condition }\n\
         entity member { id* name joined:date }\n\
         entity loan { id* out:date due:date }\n\
         entity writer { id* name }\n\
         entity publisher { id* name city }\n\
         entity branch { id* name district }\n\
         entity reservation { id* made:date }\n\
         rel wrote m:n writer -- book\n\
         rel published_by 1:m publisher -- book\n\
         rel has_copy 1:m book -- copy!\n\
         rel held_at 1:m branch -- copy!\n\
         rel borrows 1:m member -- loan!\n\
         rel loan_of 1:m copy -- loan!\n\
         rel reserves 1:m member -- reservation!\n\
         rel reserved 1:m book -- reservation!\n",
    )
}

/// ER4: airline. 8 entities + 9 relationships = 17 nodes.
pub fn er4() -> ErDiagram {
    must(
        "diagram er4_airline\n\
         entity airport { id* code city }\n\
         entity flight { id* number days }\n\
         entity leg { id* on:date status }\n\
         entity airplane { id* tail }\n\
         entity plane_type { id* model seats:int }\n\
         entity pilot { id* name hours:int }\n\
         entity passenger { id* name tier }\n\
         entity booking { id* made:date fare:float }\n\
         rel departs 1:m airport@from -- flight\n\
         rel arrives 1:m airport@to -- flight\n\
         rel instance_of 1:m flight -- leg!\n\
         rel flown_by 1:m airplane -- leg\n\
         rel of_type 1:m plane_type -- airplane!\n\
         rel certified m:n pilot -- plane_type\n\
         rel crews m:n pilot -- leg\n\
         rel books 1:m passenger -- booking!\n\
         rel for_leg 1:m leg -- booking!\n",
    )
}

/// ER5: bank, with a 1:1 `manages` and several cycles.
/// 7 entities + 9 relationships = 16 nodes.
pub fn er5() -> ErDiagram {
    must(
        "diagram er5_bank\n\
         entity bank_branch { id* name city assets:float }\n\
         entity account { id* opened:date balance:float kind }\n\
         entity client { id* name street }\n\
         entity bank_loan { id* amount:float rate:float }\n\
         entity movement { id* on:date delta:float }\n\
         entity teller { id* name desk:int }\n\
         entity card { id* number expiry:date }\n\
         rel holds m:n client -- account\n\
         rel at_branch 1:m bank_branch -- account!\n\
         rel loan_at 1:m bank_branch -- bank_loan!\n\
         rel borrows m:n client -- bank_loan\n\
         rel acct_movement 1:m account -- movement!\n\
         rel issued_on 1:m account -- card!\n\
         rel card_owner 1:m client -- card!\n\
         rel works_at 1:m bank_branch -- teller!\n\
         rel manages 1:1 teller -- bank_branch\n",
    )
}

/// ER6: the Elmasri–Navathe COMPANY diagram, the smallest of the collection,
/// with a recursive `supervises`. 4 entities + 6 relationships = 10 nodes.
pub fn er6() -> ErDiagram {
    must(
        "diagram er6_company\n\
         entity employee { id* name salary:float born:date }\n\
         entity department { id* name located }\n\
         entity project { id* name site }\n\
         entity dependent { id* name relation }\n\
         rel works_for 1:m department -- employee!\n\
         rel manages 1:1 employee -- department\n\
         rel controls 1:m department -- project!\n\
         rel works_on m:n employee -- project { hours:float }\n\
         rel supervises 1:m employee@boss -- employee@sub\n\
         rel dependents_of 1:m employee -- dependent!\n",
    )
}

/// ER7: streaming service. 10 entities + 9 relationships = 19 nodes.
pub fn er7() -> ErDiagram {
    must(
        "diagram er7_streaming\n\
         entity user { id* email since:date }\n\
         entity profile { id* name kid }\n\
         entity movie { id* title year:int }\n\
         entity series { id* title seasons:int }\n\
         entity episode { id* title length:int }\n\
         entity genre { id* name }\n\
         entity actor { id* name }\n\
         entity rating { id* stars:int text }\n\
         entity subscription { id* since:date }\n\
         entity plan { id* name price:float }\n\
         rel has_profile 1:m user -- profile!\n\
         rel subscribes 1:1 user -- subscription\n\
         rel of_plan 1:m plan -- subscription!\n\
         rel watches m:n profile -- episode { at:date }\n\
         rel episode_of 1:m series -- episode!\n\
         rel categorized m:n movie -- genre\n\
         rel acts_in m:n actor -- movie\n\
         rel rates 1:m profile -- rating!\n\
         rel rating_of 1:m movie -- rating!\n",
    )
}

/// ER8: online auction (XMark-flavored). 7 entities + 9 relationships
/// = 16 nodes.
pub fn er8() -> ErDiagram {
    must(
        "diagram er8_auction\n\
         entity person { id* name email }\n\
         entity lot { id* name reserve:float }\n\
         entity category { id* name }\n\
         entity open_auction { id* current:float ends:date }\n\
         entity closed_auction { id* price:float closed:date }\n\
         entity bid { id* amount:float at:date }\n\
         entity region { id* name }\n\
         rel from_region 1:m region -- lot!\n\
         rel in_category m:n lot -- category\n\
         rel sells 1:m person -- open_auction!\n\
         rel auction_of 1:1 lot -- open_auction\n\
         rel bids_on 1:m open_auction -- bid!\n\
         rel bidder 1:m person -- bid!\n\
         rel buyer 1:m person -- closed_auction!\n\
         rel closed_of 1:1 lot -- closed_auction\n\
         rel watches m:n person -- open_auction\n",
    )
}

/// ER9: marketplace, the largest of the collection.
/// 12 entities + 13 relationships = 25 nodes.
pub fn er9() -> ErDiagram {
    must(
        "diagram er9_marketplace\n\
         entity seller { id* name rating:float }\n\
         entity store { id* name opened:date }\n\
         entity product { id* title price:float }\n\
         entity variant { id* sku color size }\n\
         entity warehouse { id* city }\n\
         entity shopper { id* name email }\n\
         entity order { id* placed:date total:float }\n\
         entity shipment { id* shipped:date carrier }\n\
         entity payment { id* method amount:float }\n\
         entity review { id* stars:int body }\n\
         entity coupon { id* code percent:int }\n\
         entity category { id* name }\n\
         rel owns 1:m seller -- store!\n\
         rel lists 1:m store -- product!\n\
         rel has_variant 1:m product -- variant!\n\
         rel stocked m:n variant -- warehouse { qty:int }\n\
         rel categorize m:n product -- category\n\
         rel places 1:m shopper -- order!\n\
         rel line m:n order -- variant { qty:int }\n\
         rel ships_via 1:m order -- shipment!\n\
         rel from_wh 1:m warehouse -- shipment\n\
         rel paid_by 1:1 order -- payment\n\
         rel writes 1:m shopper -- review!\n\
         rel about 1:m product -- review!\n\
         rel issues 1:m store -- coupon!\n\
         rel redeems 1:m coupon -- order\n",
    )
}

/// ER10: conference, with a deep 1:M chain
/// (`conference → track → session → paper`) that exercises the
/// ancestor–descendant collapsing the paper discusses for this diagram
/// (SHALLOW splits single `//` steps into joins). 8 entities +
/// 8 relationships = 16 nodes.
pub fn er10() -> ErDiagram {
    must(
        "diagram er10_conference\n\
         entity conference { id* name year:int city }\n\
         entity track { id* name }\n\
         entity session { id* slot room }\n\
         entity paper { id* title pages:int }\n\
         entity person { id* name }\n\
         entity affiliation { id* name country }\n\
         entity review { id* score:int text }\n\
         entity keyword { id* word }\n\
         rel has_track 1:m conference -- track!\n\
         rel has_session 1:m track -- session!\n\
         rel scheduled 1:m session -- paper\n\
         rel authored m:n person -- paper\n\
         rel affiliated 1:m affiliation -- person\n\
         rel review_of 1:m paper -- review!\n\
         rel written_by 1:m person -- review!\n\
         rel tagged m:n paper -- keyword\n",
    )
}

/// §5.2 first toy graph: entities `a, b, c, d`; `r1` (a 1:m b),
/// `r2` (c 1:m b), `r3` (b 1:m d). Algorithm MC needs two colors and —
/// whichever tree gets `r3` — either the (a,d) or the (c,d) eligible
/// association is not directly recoverable. MCMR fixes it by duplicating
/// the `b→r3→d` edges into both colors.
pub fn toy_mcmr() -> ErDiagram {
    must(
        "diagram toy_mcmr\n\
         entity a { id* }\nentity b { id* }\nentity c { id* }\nentity d { id* }\n\
         rel r1 1:m a -- b\n\
         rel r2 1:m c -- b\n\
         rel r3 1:m b -- d\n",
    )
}

/// §5.2 second toy graph: `r1` (a 1:m b), `r2` (a 1:m c), `r3` (b 1:1 c).
/// MC covers it in one (or one-plus-a-stub) color, but complete direct
/// recoverability of the 1:1 `b–c` association in *both* directions needs a
/// second full tree that no MCMR-style edge addition can produce.
pub fn toy_dumc() -> ErDiagram {
    must(
        "diagram toy_dumc\n\
         entity a { id* }\nentity b { id* }\nentity c { id* }\n\
         rel r1 1:m a -- b\n\
         rel r2 1:m a -- c\n\
         rel r3 1:1 b -- c\n",
    )
}

/// Names of the evaluation collection, in the order of Figures 12–14:
/// ER1..ER10, Derby, TPC-W.
pub const COLLECTION: [&str; 12] =
    ["er1", "er2", "er3", "er4", "er5", "er6", "er7", "er8", "er9", "er10", "derby", "tpcw"];

/// Fetch a catalog diagram by collection name.
pub fn by_name(name: &str) -> Option<ErDiagram> {
    Some(match name {
        "tpcw" => tpcw(),
        "derby" => derby(),
        "er1" => er1(),
        "er2" => er2(),
        "er3" => er3(),
        "er4" => er4(),
        "er5" => er5(),
        "er6" => er6(),
        "er7" => er7(),
        "er8" => er8(),
        "er9" => er9(),
        "er10" => er10(),
        "toy_mcmr" => toy_mcmr(),
        "toy_dumc" => toy_dumc(),
        _ => return None,
    })
}

/// The full evaluation collection as diagrams.
pub fn collection() -> Vec<ErDiagram> {
    COLLECTION.iter().map(|n| by_name(n).expect("collection name")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ErGraph;

    #[test]
    fn all_catalog_diagrams_parse_validate_and_build_graphs() {
        for name in COLLECTION.iter().chain(["toy_mcmr", "toy_dumc"].iter()) {
            let d = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(d.is_simplified(), "{name} must be simplified");
            let g = ErGraph::from_diagram(&d).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(g.node_count() >= 6, "{name} too small");
        }
    }

    #[test]
    fn collection_sizes_match_paper_range() {
        // Paper §6.2: diagrams range 10-30 (entity + relationship) nodes.
        for name in COLLECTION {
            let d = by_name(name).unwrap();
            let n = d.node_count();
            assert!((10..=30).contains(&n), "{name} has {n} nodes, outside 10..=30");
        }
    }

    #[test]
    fn tpcw_matches_figure_1_structure() {
        let d = tpcw();
        let g = ErGraph::from_diagram(&d).unwrap();
        assert_eq!(d.entities.len(), 7);
        assert_eq!(d.relationships.len(), 8);
        // order_line is the many-many relationship between order and item (§5.1)
        assert!(d.relationship("order_line").unwrap().is_many_many());
        // order is on the many side of make, billing, shipping (§5.1)
        let order = g.node_by_name("order").unwrap();
        assert_eq!(g.many_side_counts()[order.idx()], 3);
        // associate is 1:1
        assert!(d.relationship("associate").unwrap().is_one_one());
        // not translatable to single-color XML with NN+AR: has an M:N
        assert!(!g.many_many_relationships().is_empty());
    }

    #[test]
    fn er6_recursive_relationship_builds() {
        let g = ErGraph::from_diagram(&er6()).unwrap();
        let emp = g.node_by_name("employee").unwrap();
        let sup = g.node_by_name("supervises").unwrap();
        // two distinct edges between employee and supervises
        let n = g.incident(emp).iter().filter(|&&(_, o)| o == sup).count();
        assert_eq!(n, 2);
        let eps: Vec<usize> = g.incident(sup).iter().map(|&(e, _)| g.edge(e).endpoint).collect();
        assert_eq!(eps.len(), 2);
        assert_ne!(eps[0], eps[1]);
    }

    #[test]
    fn toy_graphs_shape() {
        let g = ErGraph::from_diagram(&toy_mcmr()).unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(g.many_side_counts()[b.idx()], 2);
        let g = ErGraph::from_diagram(&toy_dumc()).unwrap();
        assert!(g.many_many_relationships().is_empty());
    }
}

//! Associations (§3.1) and the enumeration of **eligible** associations.
//!
//! A pair of entity/relationship types is *associated* if there is a path
//! between them in the ER graph; an association graph is any connected
//! subgraph of the transitive closure of the ER graph, with edges labelled by
//! the ER paths they stand for (Figure 6).
//!
//! **Eligible** associations — the ones direct recoverability (DR) applies to
//! — are binary and 1:1 or 1:M (§3.1): a concrete simple path from `source`
//! to `target` in which every edge is traversed in its functional direction
//! (directed edges forward, undirected 1:1 edges either way). Following such
//! a path from `source`, each `target` instance is associated with at most
//! one `source` instance, so `source` can be an ancestor of `target` in a
//! colored tree without duplicating anything.
//!
//! M:N pairs can arise from a single many-many relationship or from a
//! *composition* of one-many paths pointing in opposite directions; they are
//! not eligible (capturing them structurally forces node redundancy, §3.1).
//!
//! Eligible associations run between **entity** endpoints (the nodes of the
//! paper's association graphs, Figure 6, are entity types; relationship
//! nodes appear only inside edge labels). Interior nodes of the path may be
//! relationships — indeed the immediate neighbors of the endpoints always
//! are. Pairs with a relationship endpoint are excluded: a query binds
//! entities, and no MC-style traversal can root a tree at a node that is
//! never in a source SCC.

use crate::graph::{EdgeId, ErGraph, NodeId, NodeKind};

/// Multiplicity class of an eligible association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssociationKind {
    /// Every edge on the path is 1:1 — the association is one-one and can be
    /// made direct in either direction.
    OneOne,
    /// At least one edge is traversed one→many — one `source` relates to many
    /// `target`s; direct recoverability requires `source` above `target`.
    OneMany,
}

/// One eligible association: a concrete functional simple path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// The "one" end.
    pub source: NodeId,
    /// The "many" (or other "one") end.
    pub target: NodeId,
    /// Nodes along the path, `source` first, `target` last.
    pub nodes: Vec<NodeId>,
    /// Edges along the path (`nodes.len() - 1` of them).
    pub path: Vec<EdgeId>,
    /// 1:1 or 1:M.
    pub kind: AssociationKind,
}

impl Association {
    /// The paper's dotted label for an association edge: the names of the
    /// interior nodes of the ER path (e.g. `has.address.in` for
    /// customer–country in TPC-W, Figure 6).
    pub fn label(&self, graph: &ErGraph) -> String {
        if self.nodes.len() <= 2 {
            return String::new();
        }
        self.nodes[1..self.nodes.len() - 1]
            .iter()
            .map(|&n| graph.node(n).name.as_str())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Number of ER edges on the path.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the association is a single ER edge.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// All eligible associations of an ER graph, up to a path-length bound.
///
/// The bound exists because dense graphs have exponentially many simple
/// paths; the diagrams the paper evaluates (10–30 nodes, sparse) stay tiny.
/// The default bound of [`EligibleAssociations::DEFAULT_MAX_LEN`] exceeds the
/// diameter of every catalog diagram.
#[derive(Debug, Clone)]
pub struct EligibleAssociations {
    all: Vec<Association>,
}

impl EligibleAssociations {
    /// Default bound on ER-path length.
    pub const DEFAULT_MAX_LEN: usize = 16;

    /// Enumerate every eligible association with a path of at most `max_len`
    /// ER edges (`max_len ≥ 1`).
    pub fn enumerate(graph: &ErGraph, max_len: usize) -> Self {
        let mut all = Vec::new();
        for source in graph.entity_nodes() {
            let mut on_path = vec![false; graph.node_count()];
            on_path[source.idx()] = true;
            let mut nodes = vec![source];
            let mut edges: Vec<EdgeId> = Vec::new();
            dfs(graph, source, max_len, &mut on_path, &mut nodes, &mut edges, &mut all);
        }
        // Deterministic order: by source, then target, then path length/ids.
        all.sort_by(|a, b| {
            (a.source, a.target, a.path.len(), &a.path).cmp(&(
                b.source,
                b.target,
                b.path.len(),
                &b.path,
            ))
        });
        EligibleAssociations { all }
    }

    /// Enumerate with the default length bound.
    pub fn enumerate_default(graph: &ErGraph) -> Self {
        Self::enumerate(graph, Self::DEFAULT_MAX_LEN)
    }

    /// All eligible associations.
    pub fn iter(&self) -> impl Iterator<Item = &Association> {
        self.all.iter()
    }

    /// Number of eligible associations (distinct paths, not just pairs).
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether there are none (single-node graphs).
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All associations from `source` to `target`.
    pub fn between(&self, source: NodeId, target: NodeId) -> Vec<&Association> {
        self.all.iter().filter(|a| a.source == source && a.target == target).collect()
    }

    /// Distinct (source, target) pairs.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self.all.iter().map(|a| (a.source, a.target)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn dfs(
    graph: &ErGraph,
    at: NodeId,
    remaining: usize,
    on_path: &mut [bool],
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    out: &mut Vec<Association>,
) {
    if remaining == 0 {
        return;
    }
    for &(e, next) in graph.incident(at) {
        if on_path[next.idx()] || !graph.traversable_from(e, at) {
            continue;
        }
        on_path[next.idx()] = true;
        nodes.push(next);
        edges.push(e);
        // only entity endpoints yield eligible associations; the DFS still
        // continues through relationship nodes.
        if graph.node(next).kind == NodeKind::Entity {
            let kind = if edges
                .iter()
                .all(|&e| matches!(graph.orientation(e), crate::graph::Orientation::Undirected))
            {
                AssociationKind::OneOne
            } else {
                AssociationKind::OneMany
            };
            out.push(Association {
                source: nodes[0],
                target: next,
                nodes: nodes.clone(),
                path: edges.clone(),
                kind,
            });
        }
        dfs(graph, next, remaining - 1, on_path, nodes, edges, out);
        edges.pop();
        nodes.pop();
        on_path[next.idx()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, ErDiagram};

    fn graph(build: impl FnOnce(&mut ErDiagram)) -> ErGraph {
        let mut d = ErDiagram::new("t");
        build(&mut d);
        ErGraph::from_diagram(&d).unwrap()
    }

    #[test]
    fn single_one_many_relationship_yields_expected_paths() {
        let g = graph(|d| {
            d.add_entity("a", vec![Attribute::key("id")]).unwrap();
            d.add_entity("b", vec![Attribute::key("id")]).unwrap();
            d.add_rel_1m("r", "a", "b").unwrap();
        });
        let assoc = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        // Entity-to-entity functional paths only: a..b via r.
        assert_eq!(assoc.between(a, b).len(), 1);
        assert_eq!(assoc.between(b, a).len(), 0); // b to a is not functional
                                                  // relationship endpoints are not eligible associations
        assert_eq!(assoc.between(a, r).len(), 0);
        assert_eq!(assoc.between(b, r).len(), 0);
        let ab = &assoc.between(a, b)[0];
        assert_eq!(ab.kind, AssociationKind::OneMany);
        assert_eq!(ab.label(&g), "r");
        assert_eq!(assoc.len(), 1);
    }

    #[test]
    fn many_many_pair_not_eligible() {
        let g = graph(|d| {
            d.add_entity("a", vec![Attribute::key("id")]).unwrap();
            d.add_entity("b", vec![Attribute::key("id")]).unwrap();
            d.add_rel_mn("r", "a", "b").unwrap();
        });
        let assoc = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        // a..b is not eligible: a composition of one-many paths in opposite
        // directions is many-many. Nothing else has entity endpoints.
        assert!(assoc.between(a, b).is_empty());
        assert!(assoc.between(b, a).is_empty());
        assert!(assoc.is_empty());
    }

    #[test]
    fn composition_through_shared_many_side_is_blocked() {
        // a -r1-> b <-r2- c : a..c would need to traverse r2 wrong way.
        let g = graph(|d| {
            for n in ["a", "b", "c"] {
                d.add_entity(n, vec![Attribute::key("id")]).unwrap();
            }
            d.add_rel_1m("r1", "a", "b").unwrap();
            d.add_rel_1m("r2", "c", "b").unwrap();
        });
        let assoc = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        assert!(assoc.between(a, c).is_empty());
        assert!(assoc.between(c, a).is_empty());
    }

    #[test]
    fn one_one_chain_is_eligible_both_ways() {
        let g = graph(|d| {
            d.add_entity("a", vec![Attribute::key("id")]).unwrap();
            d.add_entity("b", vec![Attribute::key("id")]).unwrap();
            d.add_rel_11("r", "a", "b").unwrap();
        });
        let assoc = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(assoc.between(a, b).len(), 1);
        assert_eq!(assoc.between(b, a).len(), 1);
        assert_eq!(assoc.between(a, b)[0].kind, AssociationKind::OneOne);
    }

    #[test]
    fn multiple_distinct_paths_are_distinct_associations() {
        // two parallel relationships a 1:m b via r1 and r2
        let g = graph(|d| {
            d.add_entity("a", vec![Attribute::key("id")]).unwrap();
            d.add_entity("b", vec![Attribute::key("id")]).unwrap();
            d.add_rel_1m("r1", "a", "b").unwrap();
            d.add_rel_1m("r2", "a", "b").unwrap();
        });
        let assoc = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let paths = assoc.between(a, b);
        assert_eq!(paths.len(), 2);
        let labels: Vec<String> = paths.iter().map(|p| p.label(&g)).collect();
        assert!(labels.contains(&"r1".to_string()));
        assert!(labels.contains(&"r2".to_string()));
    }

    #[test]
    fn length_bound_respected() {
        let g = graph(|d| {
            for n in ["a", "b", "c"] {
                d.add_entity(n, vec![Attribute::key("id")]).unwrap();
            }
            d.add_rel_1m("r1", "a", "b").unwrap();
            d.add_rel_1m("r2", "b", "c").unwrap();
        });
        let short = EligibleAssociations::enumerate(&g, 1);
        assert!(short.iter().all(|a| a.len() == 1));
        let full = EligibleAssociations::enumerate_default(&g);
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        assert_eq!(full.between(a, c).len(), 1);
        assert_eq!(full.between(a, c)[0].label(&g), "r1.b.r2");
        assert!(short.between(a, c).is_empty());
    }
}

//! Color identifiers.
//!
//! Colors are dense small integers; display names follow the palette the
//! paper uses in Figure 5 (BLUE, RED, PURPLE, ORANGE, GREEN) and continue
//! with more names, falling back to `color<N>` beyond the palette.

use std::fmt;

/// Identifier of one color (one overlay tree/forest) of an MCT schema or
/// database. Dense: `0..schema.color_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColorId(pub u16);

impl ColorId {
    /// The color index as a `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", color_name(*self))
    }
}

/// Human-readable name of a color, matching the paper's Figure 5 palette
/// for the first five.
pub fn color_name(c: ColorId) -> String {
    const PALETTE: [&str; 12] = [
        "blue", "red", "purple", "orange", "green", "teal", "gold", "magenta", "cyan", "olive",
        "navy", "coral",
    ];
    match PALETTE.get(c.idx()) {
        Some(name) => (*name).to_string(),
        None => format!("color{}", c.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_matches_figure_5() {
        // Figure 5 uses BLUE, RED, PURPLE, ORANGE, GREEN for TPC-W's DR schema.
        let names: Vec<String> = (0..5).map(|i| color_name(ColorId(i))).collect();
        assert_eq!(names, ["blue", "red", "purple", "orange", "green"]);
    }

    #[test]
    fn overflow_names_are_generated() {
        assert_eq!(color_name(ColorId(40)), "color40");
        assert_eq!(format!("{}", ColorId(1)), "red");
    }
}

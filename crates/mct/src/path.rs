//! Colored path expressions — the multi-colored version of XPath (§2.2).
//!
//! MCT databases are queried with XPath/XQuery extensions in which **each
//! axis step is augmented with a color** naming the overlay tree to navigate
//! in. This module provides a tiny AST used to *display* compiled plans in a
//! familiar syntax (e.g. `/blue::country[@name='Japan']//blue::order`);
//! evaluation happens on physical plans in `colorist-query`.

use crate::color::{color_name, ColorId};
use std::fmt;

/// An XPath axis. Structural recoverability only ever needs the two
/// downward axes (§3.1: direct recoverability is a single parent-child or
/// ancestor-descendant step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — parent-child.
    Child,
    /// `//` — ancestor-descendant.
    Descendant,
}

/// One colored axis step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The color in which the step navigates.
    pub color: ColorId,
    /// Child or descendant.
    pub axis: Axis,
    /// Element label (ER node type name).
    pub label: String,
    /// Optional attribute predicate, pre-rendered (e.g. `@name='Japan'`).
    pub predicate: Option<String>,
}

/// A colored path expression: a sequence of steps from a color root.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColoredPath {
    /// The steps, outermost first.
    pub steps: Vec<PathStep>,
}

impl ColoredPath {
    /// An empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step.
    pub fn push(&mut self, step: PathStep) {
        self.steps.push(step);
    }

    /// Number of axis steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of color changes between consecutive steps — each one is a
    /// *color crossing* at evaluation time.
    pub fn color_crossings(&self) -> usize {
        self.steps.windows(2).filter(|w| w[0].color != w[1].color).count()
    }
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axis = match self.axis {
            Axis::Child => "/",
            Axis::Descendant => "//",
        };
        write!(f, "{axis}{}::{}", color_name(self.color), self.label)?;
        if let Some(p) = &self.predicate {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for ColoredPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(color: u16, axis: Axis, label: &str) -> PathStep {
        PathStep { color: ColorId(color), axis, label: label.to_string(), predicate: None }
    }

    #[test]
    fn renders_like_colored_xpath() {
        let mut p = ColoredPath::new();
        p.push(PathStep {
            predicate: Some("@name='Japan'".to_string()),
            ..step(0, Axis::Child, "country")
        });
        p.push(step(0, Axis::Descendant, "order"));
        assert_eq!(p.to_string(), "/blue::country[@name='Japan']//blue::order");
        assert_eq!(p.len(), 2);
        assert_eq!(p.color_crossings(), 0);
    }

    #[test]
    fn counts_color_crossings() {
        let mut p = ColoredPath::new();
        p.push(step(0, Axis::Child, "a"));
        p.push(step(1, Axis::Descendant, "b"));
        p.push(step(1, Axis::Child, "c"));
        p.push(step(2, Axis::Descendant, "d"));
        assert_eq!(p.color_crossings(), 2);
        assert!(p.to_string().contains("//red::b"));
    }

    #[test]
    fn empty_path() {
        let p = ColoredPath::new();
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }
}

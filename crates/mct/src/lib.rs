//! # colorist-mct — the Multi-Colored Trees data model
//!
//! MCT (Jagadish et al., SIGMOD 2004, "Colorful XML: one hierarchy isn't
//! enough") extends the XML data model in two ways (§2.2 of the ICDE'06
//! paper):
//!
//! * every data node has one or more **colors** from a finite set;
//! * an MCT database consists of one colored tree per color, overlaid on the
//!   same node set — a node belongs to exactly one rooted tree for each of
//!   its colors.
//!
//! A single-color MCT database is exactly an XML database, so the paper's
//! single-color schemas (DEEP / SHALLOW / AF) are just 1-color instances of
//! the structures in this crate.
//!
//! This crate defines the **schema-level** artifacts:
//!
//! * [`color`] — color identifiers and display names;
//! * [`schema`] — the [`MctSchema`]: per-color forests of *placements* (one
//!   placement = one occurrence of an ER node type in one color), plus
//!   idref links for value-encoded associations, with derived **inter-color
//!   integrity constraints** (ICICs, §2.3);
//! * [`path`] — colored XPath-style path expressions (each axis step is
//!   augmented with a color, §2.2), used for query explanation.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod lint;
pub mod path;
pub mod schema;

pub use color::{color_name, ColorId};
pub use lint::{lint_model, lint_schema, LintModel, SchemaDiag};
pub use path::{Axis, ColoredPath, PathStep};
pub use schema::{
    Icic, IdrefLink, MctSchema, MctSchemaBuilder, Placement, PlacementId, SchemaError,
};

//! Static schema linting: well-formedness and normal-form diagnostics.
//!
//! [`lint_schema`] re-derives, from a frozen [`MctSchema`]'s raw placement
//! table alone, every invariant the builder's `finish` validation is
//! supposed to establish *plus* the consistency of all derived indexes
//! (children lists, roots, per-node and per-edge maps, ICICs) with the raw
//! data — so index desync introduced by a future mutation path surfaces as
//! a diagnostic instead of a wrong query answer. [`lint_model`] additionally
//! recomputes the four §3 schema properties with independent algorithms,
//! for cross-validation against `colorist-core`'s checkers (`S007` there).
//!
//! Diagnostic codes (`S0xx`; the plan verifier's `P0xx` codes live in
//! `colorist_query::verify`):
//!
//! | code | invariant |
//! |------|-----------|
//! | S001 | placement forests are well-formed: parents exist, colors agree along edges, no cycles, and every derived index matches the raw placement table |
//! | S002 | each placement edge's realizing ER edge connects the parent and child node types |
//! | S003 | every ER node type has a placement in some color |
//! | S004 | every ER edge is realized structurally or encoded as an idref |
//! | S005 | no ER edge is both structural and idref-encoded, and no edge carries two idref links |
//! | S006 | the ICIC set is exactly the edges realized in ≥ 2 colors, with their sorted color lists |
//!
//! `S007` (property-checker disagreement) is reported by
//! `colorist_core::properties::cross_validate`, which compares the normal
//! checkers against this module's [`LintModel`].

use crate::schema::{MctSchema, PlacementId};
use colorist_er::{Association, EdgeId, EligibleAssociations, ErGraph, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// One diagnostic produced by the schema linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaDiag {
    /// Stable diagnostic code (`S001`..`S006`).
    pub code: &'static str,
    /// Human-readable description of the violated invariant.
    pub msg: String,
}

impl fmt::Display for SchemaDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.msg)
    }
}

/// Lint one frozen schema against its ER graph. Returns every diagnostic
/// found — an empty vector means the schema is statically well-formed.
pub fn lint_schema(graph: &ErGraph, schema: &MctSchema) -> Vec<SchemaDiag> {
    let mut diags = Vec::new();
    let mut diag = |code: &'static str, msg: String| diags.push(SchemaDiag { code, msg });
    let n = schema.placements().len();

    // S001: raw forest shape — bounds, color agreement, acyclicity
    for (i, p) in schema.placements().iter().enumerate() {
        let id = PlacementId(i as u32);
        if p.color.idx() >= schema.color_count() {
            diag("S001", format!("{id} in unallocated color {}", p.color));
        }
        if p.node.idx() >= graph.node_count() {
            diag("S001", format!("{id} instantiates out-of-range ER node {:?}", p.node));
            continue;
        }
        if let Some((parent, edge)) = p.parent {
            if parent.idx() >= n {
                diag("S001", format!("{id} has out-of-range parent {parent}"));
                continue;
            }
            let pp = &schema.placements()[parent.idx()];
            if pp.color != p.color {
                diag(
                    "S001",
                    format!("{id} in color {} hangs under {parent} in color {}", p.color, pp.color),
                );
            }
            // S002: realizing edge connects the two node types
            if edge.idx() >= graph.edge_count() {
                diag("S002", format!("{id} realized by out-of-range ER edge {edge:?}"));
            } else {
                let e = graph.edge(edge);
                let connects = (e.rel == pp.node && e.participant == p.node)
                    || (e.participant == pp.node && e.rel == p.node);
                if !connects {
                    diag(
                        "S002",
                        format!(
                            "{id}: edge `{}`--`{}` does not connect `{}` to `{}`",
                            graph.node(e.rel).name,
                            graph.node(e.participant).name,
                            graph.node(pp.node).name,
                            graph.node(p.node).name
                        ),
                    );
                }
            }
        }
    }
    // acyclicity: a parent chain longer than the table has a cycle
    for i in 0..n {
        let mut cur = PlacementId(i as u32);
        let mut hops = 0usize;
        while let Some((parent, _)) = schema.placements().get(cur.idx()).and_then(|p| p.parent) {
            cur = parent;
            hops += 1;
            if hops > n {
                diag("S001", format!("placement p{i} is on a parent cycle"));
                break;
            }
        }
    }

    // S001: derived indexes must mirror the raw table exactly
    for i in 0..n {
        let id = PlacementId(i as u32);
        let raw_children: BTreeSet<PlacementId> = schema
            .placements()
            .iter()
            .enumerate()
            .filter(|(_, q)| q.parent.is_some_and(|(pp, _)| pp == id))
            .map(|(j, _)| PlacementId(j as u32))
            .collect();
        let idx_children: BTreeSet<PlacementId> = schema.children(id).iter().copied().collect();
        if raw_children != idx_children {
            diag("S001", format!("children index of {id} desynced from the placement table"));
        }
    }
    for c in schema.colors() {
        let raw_roots: BTreeSet<PlacementId> = schema
            .placements()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.color == c && p.parent.is_none())
            .map(|(j, _)| PlacementId(j as u32))
            .collect();
        let idx_roots: BTreeSet<PlacementId> = schema.roots(c).iter().copied().collect();
        if raw_roots != idx_roots {
            diag("S001", format!("root index of color {c} desynced from the placement table"));
        }
    }
    for node in graph.node_ids() {
        let raw: BTreeSet<PlacementId> = schema
            .placements()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.node == node)
            .map(|(j, _)| PlacementId(j as u32))
            .collect();
        let idx: BTreeSet<PlacementId> = schema.placements_of(node).iter().copied().collect();
        if raw != idx {
            diag(
                "S001",
                format!(
                    "per-node index of `{}` desynced from the placement table",
                    graph.node(node).name
                ),
            );
        }
    }
    for e in graph.edge_ids() {
        let raw: BTreeSet<(u16, PlacementId)> = schema
            .placements()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.parent.is_some_and(|(_, pe)| pe == e))
            .map(|(j, p)| (p.color.0, PlacementId(j as u32)))
            .collect();
        let idx: BTreeSet<(u16, PlacementId)> =
            schema.edge_realizations(e).iter().map(|&(c, p)| (c.0, p)).collect();
        if raw != idx {
            diag(
                "S001",
                format!("edge-realization index of {e} desynced from the placement table"),
            );
        }
    }

    // S003: node coverage
    let mut covered = vec![false; graph.node_count()];
    for p in schema.placements() {
        if p.node.idx() < covered.len() {
            covered[p.node.idx()] = true;
        }
    }
    for node in graph.node_ids() {
        if !covered[node.idx()] {
            diag("S003", format!("ER node `{}` has no placement", graph.node(node).name));
        }
    }

    // S004 / S005: every edge exactly-one logical realization kind
    let mut structural = vec![false; graph.edge_count()];
    for p in schema.placements() {
        if let Some((_, e)) = p.parent {
            if e.idx() < structural.len() {
                structural[e.idx()] = true;
            }
        }
    }
    let mut idref_count = vec![0usize; graph.edge_count()];
    for l in schema.idrefs() {
        if l.edge.idx() >= graph.edge_count() {
            diag("S005", format!("idref link on out-of-range ER edge {:?}", l.edge));
            continue;
        }
        idref_count[l.edge.idx()] += 1;
    }
    for e in graph.edge_ids() {
        let s = structural[e.idx()];
        let v = idref_count[e.idx()];
        if !s && v == 0 {
            diag(
                "S004",
                format!(
                    "ER edge `{}` is neither structural nor idref-encoded",
                    edge_label(graph, e)
                ),
            );
        }
        if s && v > 0 {
            diag(
                "S005",
                format!("ER edge `{}` is both structural and idref-encoded", edge_label(graph, e)),
            );
        }
        if v > 1 {
            diag("S005", format!("ER edge `{}` carries {v} idref links", edge_label(graph, e)));
        }
    }

    // S006: ICICs are exactly the multi-color realizations
    for e in graph.edge_ids() {
        let mut colors: Vec<_> = schema
            .placements()
            .iter()
            .filter(|p| p.parent.is_some_and(|(_, pe)| pe == e))
            .map(|p| p.color)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        let recorded = schema.icics().iter().find(|ic| ic.edge == e);
        match (colors.len() >= 2, recorded) {
            (true, None) => diag(
                "S006",
                format!(
                    "ER edge `{}` realized in {} colors but carries no ICIC",
                    edge_label(graph, e),
                    colors.len()
                ),
            ),
            (false, Some(_)) => diag(
                "S006",
                format!(
                    "ICIC on ER edge `{}`, which is not multiply realized",
                    edge_label(graph, e)
                ),
            ),
            (true, Some(ic)) if ic.colors != colors => diag(
                "S006",
                format!(
                    "ICIC color list of `{}` does not match realizations",
                    edge_label(graph, e)
                ),
            ),
            _ => {}
        }
    }

    diags
}

/// The four §3 properties recomputed with algorithms independent of
/// `colorist-core`'s checkers, from the raw placement table. Core's
/// `cross_validate` compares the two and reports disagreement as `S007`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintModel {
    /// No ER node has two placements in one color.
    pub node_normal: bool,
    /// No ER edge realized in more than one color.
    pub edge_normal: bool,
    /// Every ER edge structurally realized somewhere.
    pub association_recoverable: bool,
    /// Every eligible association descends a placement path in one color.
    pub direct_recoverable: bool,
    /// Number of colors.
    pub colors: usize,
    /// Number of edges realized in ≥ 2 colors (the implied ICIC count).
    pub icics: usize,
}

/// Recompute the property profile from the raw placement table.
pub fn lint_model(
    graph: &ErGraph,
    schema: &MctSchema,
    eligible: &EligibleAssociations,
) -> LintModel {
    // NN: count raw placements per (node, color) pair
    let mut pair_seen: BTreeSet<(NodeId, u16)> = BTreeSet::new();
    let mut node_normal = true;
    for p in schema.placements() {
        if !pair_seen.insert((p.node, p.color.0)) {
            node_normal = false;
        }
    }
    // EN + ICIC count: distinct realizing colors per edge
    let mut edge_colors: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); graph.edge_count()];
    for p in schema.placements() {
        if let Some((_, e)) = p.parent {
            if e.idx() < edge_colors.len() {
                edge_colors[e.idx()].insert(p.color.0);
            }
        }
    }
    let icics = edge_colors.iter().filter(|cs| cs.len() >= 2).count();
    // AR: structural somewhere
    let association_recoverable = edge_colors.iter().all(|cs| !cs.is_empty());
    // DR: top-down search (core's checker walks bottom-up from the target)
    let direct_recoverable = eligible.iter().all(|a| descends_somewhere(schema, a));

    LintModel {
        node_normal,
        edge_normal: icics == 0,
        association_recoverable,
        direct_recoverable,
        colors: schema.color_count(),
        icics,
    }
}

/// Does some color realize `assoc` as a descending placement path? Searched
/// top-down from every placement of the association's source, following raw
/// parent pointers of candidate children — deliberately the opposite walk
/// direction from `colorist-core`'s `is_directly_recoverable`.
fn descends_somewhere(schema: &MctSchema, assoc: &Association) -> bool {
    'sources: for (start, sp) in schema.placements().iter().enumerate() {
        if sp.node != assoc.nodes[0] {
            continue;
        }
        let mut frontier = vec![PlacementId(start as u32)];
        for (step, &edge) in assoc.path.iter().enumerate() {
            let want = assoc.nodes[step + 1];
            let next: Vec<PlacementId> = schema
                .placements()
                .iter()
                .enumerate()
                .filter(|(_, q)| {
                    q.node == want
                        && q.parent.is_some_and(|(pp, pe)| pe == edge && frontier.contains(&pp))
                })
                .map(|(j, _)| PlacementId(j as u32))
                .collect();
            if next.is_empty() {
                continue 'sources;
            }
            frontier = next;
        }
        return true;
    }
    false
}

fn edge_label(graph: &ErGraph, e: EdgeId) -> String {
    let edge = graph.edge(e);
    format!("{}--{}", graph.node(edge.rel).name, graph.node(edge.participant).name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MctSchemaBuilder;
    use colorist_er::{Attribute, ErDiagram};

    fn small_graph() -> ErGraph {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        ErGraph::from_diagram(&d).unwrap()
    }

    fn edge(g: &ErGraph, rel: &str, part: &str) -> EdgeId {
        let rel = g.node_by_name(rel).unwrap();
        let part = g.node_by_name(part).unwrap();
        g.edge_ids().find(|&e| g.edge(e).rel == rel && g.edge(e).participant == part).unwrap()
    }

    fn linear(g: &ErGraph) -> MctSchema {
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, g.node_by_name("a").unwrap());
        let pr = b.add_child(pa, edge(g, "r", "a"), g.node_by_name("r").unwrap());
        b.add_child(pr, edge(g, "r", "b"), g.node_by_name("b").unwrap());
        b.finish(g).unwrap()
    }

    #[test]
    fn well_formed_schema_lints_clean() {
        let g = small_graph();
        let s = linear(&g);
        let diags = lint_schema(&g, &s);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lint_model_matches_shape() {
        let g = small_graph();
        let s = linear(&g);
        let elig = EligibleAssociations::enumerate_default(&g);
        let m = lint_model(&g, &s, &elig);
        assert!(m.node_normal && m.edge_normal && m.association_recoverable);
        assert!(m.direct_recoverable);
        assert_eq!(m.colors, 1);
        assert_eq!(m.icics, 0);
    }

    #[test]
    fn idref_only_edge_is_not_ar_in_the_model() {
        let g = small_graph();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, g.node_by_name("a").unwrap());
        b.add_child(pa, edge(&g, "r", "a"), g.node_by_name("r").unwrap());
        b.add_root(c, g.node_by_name("b").unwrap());
        b.add_idref(&g, edge(&g, "r", "b"));
        let s = b.finish(&g).unwrap();
        assert!(lint_schema(&g, &s).is_empty());
        let elig = EligibleAssociations::enumerate_default(&g);
        let m = lint_model(&g, &s, &elig);
        assert!(!m.association_recoverable);
        assert!(!m.direct_recoverable);
    }
}

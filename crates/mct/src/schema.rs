//! MCT schemas (§2.3): per-color forests of **placements** plus idref links,
//! with derived inter-color integrity constraints (ICICs).
//!
//! Formally the paper defines an MCT schema as a tuple `(V, c, E1..Ec, I)`:
//! labelled nodes `V`, `c` colors, one edge set per color each forming an
//! ordered labelled graph on `V`, and a set `I` of ICICs. We represent each
//! color's edge set as a forest of *placements*:
//!
//! * a [`Placement`] is one occurrence of an ER node type in one color's
//!   forest — normalized schemas have at most one placement per (node,
//!   color), while un-normalized schemas (DEEP, UNDR) may repeat a node type
//!   within a color, which is exactly how they trade redundancy for direct
//!   recoverability;
//! * every non-root placement records the **ER edge** its placement edge
//!   realizes, which is what the normal forms quantify over: *edge normal
//!   form* (EN) says no ER edge is realized in more than one color, and each
//!   ER edge realized in ≥ 2 colors contributes one [`Icic`];
//! * ER edges not realized structurally anywhere may be encoded as
//!   [`IdrefLink`]s — id/idref attribute values recovered at query time by
//!   value joins (the expensive operation the paper designs away from).

use crate::color::ColorId;
use colorist_er::{EdgeId, ErGraph, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a placement within an [`MctSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlacementId(pub u32);

impl PlacementId {
    /// The placement index as a `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlacementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One occurrence of an ER node type in one color's forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The ER node type this placement instantiates.
    pub node: NodeId,
    /// The color whose forest contains this placement.
    pub color: ColorId,
    /// Parent placement and the ER edge the placement edge realizes;
    /// `None` for roots of the color's forest (children of the implicit
    /// per-color document root).
    pub parent: Option<(PlacementId, EdgeId)>,
}

/// A value-encoded association: the relationship element carries an idref
/// attribute pointing at the id of its participant on this ER edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdrefLink {
    /// The ER edge encoded by value.
    pub edge: EdgeId,
    /// Name of the idref attribute (e.g. `bill_address_idref`), placed on
    /// the relationship element of the edge.
    pub attr: String,
}

/// An inter-color integrity constraint (§2.3): the same ER edge realized in
/// two or more colors must be present between the same pair of data nodes in
/// *all* of those colors, or in none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Icic {
    /// The redundantly realized ER edge.
    pub edge: EdgeId,
    /// The colors realizing it (≥ 2, sorted).
    pub colors: Vec<ColorId>,
}

/// Errors detected while assembling a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A child placement's color differs from its parent's.
    ColorMismatch {
        /// The parent placement.
        parent: PlacementId,
        /// The mismatched child color.
        child_color: ColorId,
    },
    /// The realizing ER edge does not connect the parent and child node
    /// types.
    EdgeMismatch {
        /// The parent placement.
        parent: PlacementId,
        /// The offending realizing edge.
        edge: EdgeId,
    },
    /// An ER node type has no placement in any color (the schema would lose
    /// its instances).
    UncoveredNode(String),
    /// An ER edge is neither realized structurally nor encoded as an idref
    /// (the association would be unrecoverable).
    UncoveredEdge(String),
    /// The same ER edge is both structural in some color and idref-encoded.
    RedundantIdref(String),
    /// A referenced placement does not exist.
    NoSuchPlacement(PlacementId),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ColorMismatch { parent, child_color } => {
                write!(f, "placement under {parent} declared in different color {child_color}")
            }
            SchemaError::EdgeMismatch { parent, edge } => {
                write!(f, "edge {edge} does not connect placement {parent} to the child node type")
            }
            SchemaError::UncoveredNode(n) => write!(f, "ER node `{n}` has no placement"),
            SchemaError::UncoveredEdge(e) => {
                write!(f, "ER edge `{e}` is neither structural nor idref-encoded")
            }
            SchemaError::RedundantIdref(e) => {
                write!(f, "ER edge `{e}` is both structural and idref-encoded")
            }
            SchemaError::NoSuchPlacement(p) => write!(f, "no such placement {p}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete MCT schema over an ER graph.
///
/// Built through [`MctSchemaBuilder`]; immutable afterwards. All derived
/// structure (children lists, roots, per-edge realizations, ICICs) is
/// precomputed.
#[derive(Debug, Clone)]
pub struct MctSchema {
    /// Diagram name this schema was designed for.
    pub diagram: String,
    /// Label of the design strategy that produced it (e.g. `"DR"`).
    pub strategy: String,
    color_count: u16,
    placements: Vec<Placement>,
    children: Vec<Vec<PlacementId>>,
    roots: Vec<Vec<PlacementId>>,
    by_node: Vec<Vec<PlacementId>>,
    idrefs: Vec<IdrefLink>,
    icics: Vec<Icic>,
    /// Per ER edge: (color, child placement) pairs realizing it structurally.
    edge_realizations: Vec<Vec<(ColorId, PlacementId)>>,
}

impl MctSchema {
    /// Number of colors (the paper's *color frugality* metric).
    pub fn color_count(&self) -> usize {
        self.color_count as usize
    }

    /// All color ids.
    pub fn colors(&self) -> impl Iterator<Item = ColorId> {
        (0..self.color_count).map(ColorId)
    }

    /// All placements, indexable by [`PlacementId`].
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement with the given id.
    pub fn placement(&self, p: PlacementId) -> &Placement {
        &self.placements[p.idx()]
    }

    /// All placement ids.
    pub fn placement_ids(&self) -> impl Iterator<Item = PlacementId> + '_ {
        (0..self.placements.len() as u32).map(PlacementId)
    }

    /// Child placements of `p` within its color.
    pub fn children(&self, p: PlacementId) -> &[PlacementId] {
        &self.children[p.idx()]
    }

    /// Root placements of a color's forest.
    pub fn roots(&self, color: ColorId) -> &[PlacementId] {
        &self.roots[color.idx()]
    }

    /// Every placement of an ER node type, across all colors.
    pub fn placements_of(&self, node: NodeId) -> &[PlacementId] {
        &self.by_node[node.idx()]
    }

    /// Placements of `node` in one color (an NN schema yields ≤ 1).
    pub fn placements_of_in_color(&self, node: NodeId, color: ColorId) -> Vec<PlacementId> {
        self.by_node[node.idx()]
            .iter()
            .copied()
            .filter(|&p| self.placement(p).color == color)
            .collect()
    }

    /// Structural realizations of an ER edge: `(color, child placement)`.
    pub fn edge_realizations(&self, edge: EdgeId) -> &[(ColorId, PlacementId)] {
        &self.edge_realizations[edge.idx()]
    }

    /// Distinct colors in which an ER edge is structurally realized.
    pub fn edge_colors(&self, edge: EdgeId) -> Vec<ColorId> {
        let mut v: Vec<ColorId> =
            self.edge_realizations[edge.idx()].iter().map(|&(c, _)| c).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The idref links (value-encoded ER edges).
    pub fn idrefs(&self) -> &[IdrefLink] {
        &self.idrefs
    }

    /// The idref link for an edge, if the edge is value-encoded.
    pub fn idref_for(&self, edge: EdgeId) -> Option<&IdrefLink> {
        self.idrefs.iter().find(|l| l.edge == edge)
    }

    /// The derived inter-color integrity constraints. Empty iff the schema
    /// is in edge normal form.
    pub fn icics(&self) -> &[Icic] {
        &self.icics
    }

    /// Depth of a placement within its color tree (roots have depth 0).
    pub fn depth(&self, p: PlacementId) -> usize {
        let mut d = 0;
        let mut cur = p;
        while let Some((parent, _)) = self.placement(cur).parent {
            d += 1;
            cur = parent;
        }
        d
    }

    /// Whether `anc` is a proper ancestor of `desc` (same color only, since
    /// parents never cross colors).
    pub fn is_ancestor(&self, anc: PlacementId, desc: PlacementId) -> bool {
        let mut cur = desc;
        while let Some((parent, _)) = self.placement(cur).parent {
            if parent == anc {
                return true;
            }
            cur = parent;
        }
        false
    }

    /// The placements on the path from `p` up to its root, inclusive,
    /// bottom-up, with the realizing edges (`None` at the root).
    pub fn path_to_root(&self, p: PlacementId) -> Vec<(PlacementId, Option<EdgeId>)> {
        let mut out = Vec::new();
        let mut cur = p;
        loop {
            match self.placement(cur).parent {
                Some((parent, edge)) => {
                    out.push((cur, Some(edge)));
                    cur = parent;
                }
                None => {
                    out.push((cur, None));
                    return out;
                }
            }
        }
    }

    /// Iterate a placement's subtree in preorder (including `p`).
    pub fn subtree(&self, p: PlacementId) -> Vec<PlacementId> {
        let mut out = Vec::new();
        let mut stack = vec![p];
        while let Some(x) = stack.pop() {
            out.push(x);
            // push children in reverse so preorder is left-to-right
            stack.extend(self.children(x).iter().rev().copied());
        }
        out
    }

    /// Human-readable rendering of the schema, one tree per color, used in
    /// examples and reports.
    pub fn render(&self, graph: &ErGraph) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "schema {} [{}]: {} colors, {} placements, {} idrefs, {} ICICs",
            self.diagram,
            self.strategy,
            self.color_count(),
            self.placements.len(),
            self.idrefs.len(),
            self.icics.len()
        );
        for c in self.colors() {
            let _ = writeln!(s, "  ({})", crate::color::color_name(c).to_uppercase());
            for &r in self.roots(c) {
                self.render_tree(graph, r, 2, &mut s);
            }
        }
        for l in &self.idrefs {
            let e = graph.edge(l.edge);
            let _ = writeln!(
                s,
                "  idref: {} --[{}]--> {}",
                graph.node(e.rel).name,
                l.attr,
                graph.node(e.participant).name
            );
        }
        s
    }

    fn render_tree(&self, graph: &ErGraph, p: PlacementId, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "{}{}", "  ".repeat(indent), graph.node(self.placement(p).node).name);
        for &c in self.children(p) {
            self.render_tree(graph, c, indent + 1, out);
        }
    }
}

/// Incremental builder for [`MctSchema`].
#[derive(Debug)]
pub struct MctSchemaBuilder {
    diagram: String,
    strategy: String,
    color_count: u16,
    placements: Vec<Placement>,
    idrefs: Vec<IdrefLink>,
}

impl MctSchemaBuilder {
    /// Start a schema for the given diagram and strategy label.
    pub fn new(diagram: &str, strategy: &str) -> Self {
        MctSchemaBuilder {
            diagram: diagram.to_string(),
            strategy: strategy.to_string(),
            color_count: 0,
            placements: Vec::new(),
            idrefs: Vec::new(),
        }
    }

    /// Allocate a new color and return its id.
    pub fn add_color(&mut self) -> ColorId {
        let c = ColorId(self.color_count);
        self.color_count += 1;
        c
    }

    /// Number of colors allocated so far.
    pub fn color_count(&self) -> usize {
        self.color_count as usize
    }

    /// Add a root placement of `node` to `color`'s forest.
    pub fn add_root(&mut self, color: ColorId, node: NodeId) -> PlacementId {
        assert!(color.0 < self.color_count, "color not allocated");
        let id = PlacementId(self.placements.len() as u32);
        self.placements.push(Placement { node, color, parent: None });
        id
    }

    /// Add a child placement of `node` under `parent`, realizing `edge`.
    pub fn add_child(&mut self, parent: PlacementId, edge: EdgeId, node: NodeId) -> PlacementId {
        assert!(parent.idx() < self.placements.len(), "no such parent placement");
        let color = self.placements[parent.idx()].color;
        let id = PlacementId(self.placements.len() as u32);
        self.placements.push(Placement { node, color, parent: Some((parent, edge)) });
        id
    }

    /// Record `edge` as value-encoded. The idref attribute name is derived
    /// from the participant name and role: `<role-or-name>_idref`.
    pub fn add_idref(&mut self, graph: &ErGraph, edge: EdgeId) {
        let e = graph.edge(edge);
        let base = e.role.clone().unwrap_or_else(|| graph.node(e.participant).name.clone());
        self.idrefs.push(IdrefLink { edge, attr: format!("{base}_idref") });
    }

    /// Reparent an existing placement (used by MCMR-style post-passes that
    /// graft additional edges onto colors). The placement must currently be
    /// a root of its color.
    pub fn attach_root(
        &mut self,
        root: PlacementId,
        new_parent: PlacementId,
        edge: EdgeId,
    ) -> Result<(), SchemaError> {
        if root.idx() >= self.placements.len() {
            return Err(SchemaError::NoSuchPlacement(root));
        }
        if new_parent.idx() >= self.placements.len() {
            return Err(SchemaError::NoSuchPlacement(new_parent));
        }
        assert!(self.placements[root.idx()].parent.is_none(), "placement is not a root");
        let pc = self.placements[new_parent.idx()].color;
        let cc = self.placements[root.idx()].color;
        if pc != cc {
            return Err(SchemaError::ColorMismatch { parent: new_parent, child_color: cc });
        }
        self.placements[root.idx()].parent = Some((new_parent, edge));
        Ok(())
    }

    /// Current placements (for strategy algorithms that inspect their own
    /// partial output).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Validate against the ER graph and freeze.
    pub fn finish(self, graph: &ErGraph) -> Result<MctSchema, SchemaError> {
        // Structural sanity: parent colors match (guaranteed by add_child /
        // attach_root), realizing edges connect the right node types.
        for (i, p) in self.placements.iter().enumerate() {
            if let Some((parent, edge)) = p.parent {
                let parent_node = self.placements[parent.idx()].node;
                let e = graph.edge(edge);
                let connects = (e.rel == parent_node && e.participant == p.node)
                    || (e.participant == parent_node && e.rel == p.node);
                if !connects {
                    return Err(SchemaError::EdgeMismatch { parent: PlacementId(i as u32), edge });
                }
            }
        }

        // Coverage: every node placed, every edge structural or idref.
        let mut node_covered = vec![false; graph.node_count()];
        let mut edge_structural = vec![false; graph.edge_count()];
        for p in &self.placements {
            node_covered[p.node.idx()] = true;
            if let Some((_, edge)) = p.parent {
                edge_structural[edge.idx()] = true;
            }
        }
        if let Some(n) = node_covered.iter().position(|&c| !c) {
            return Err(SchemaError::UncoveredNode(graph.node(NodeId(n as u32)).name.clone()));
        }
        let idref_edges: BTreeSet<EdgeId> = self.idrefs.iter().map(|l| l.edge).collect();
        for e in graph.edge_ids() {
            let s = edge_structural[e.idx()];
            let v = idref_edges.contains(&e);
            if !s && !v {
                return Err(SchemaError::UncoveredEdge(describe_edge(graph, e)));
            }
            if s && v {
                return Err(SchemaError::RedundantIdref(describe_edge(graph, e)));
            }
        }

        // Derived structure.
        let mut children: Vec<Vec<PlacementId>> = vec![Vec::new(); self.placements.len()];
        let mut roots: Vec<Vec<PlacementId>> = vec![Vec::new(); self.color_count as usize];
        let mut by_node: Vec<Vec<PlacementId>> = vec![Vec::new(); graph.node_count()];
        let mut edge_realizations: Vec<Vec<(ColorId, PlacementId)>> =
            vec![Vec::new(); graph.edge_count()];
        for (i, p) in self.placements.iter().enumerate() {
            let id = PlacementId(i as u32);
            by_node[p.node.idx()].push(id);
            match p.parent {
                Some((parent, edge)) => {
                    children[parent.idx()].push(id);
                    edge_realizations[edge.idx()].push((p.color, id));
                }
                None => roots[p.color.idx()].push(id),
            }
        }

        // ICICs: one per ER edge realized in >= 2 distinct colors.
        let mut icics = Vec::new();
        for e in graph.edge_ids() {
            let mut colors: Vec<ColorId> =
                edge_realizations[e.idx()].iter().map(|&(c, _)| c).collect();
            colors.sort_unstable();
            colors.dedup();
            if colors.len() >= 2 {
                icics.push(Icic { edge: e, colors });
            }
        }

        Ok(MctSchema {
            diagram: self.diagram,
            strategy: self.strategy,
            color_count: self.color_count,
            placements: self.placements,
            children,
            roots,
            by_node,
            idrefs: self.idrefs,
            icics,
            edge_realizations,
        })
    }
}

fn describe_edge(graph: &ErGraph, e: EdgeId) -> String {
    let edge = graph.edge(e);
    format!("{}--{}", graph.node(edge.rel).name, graph.node(edge.participant).name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{Attribute, ErDiagram};

    fn small_graph() -> ErGraph {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        ErGraph::from_diagram(&d).unwrap()
    }

    fn edge_between(g: &ErGraph, rel: &str, part: &str) -> EdgeId {
        let rel = g.node_by_name(rel).unwrap();
        let part = g.node_by_name(part).unwrap();
        g.edge_ids().find(|&e| g.edge(e).rel == rel && g.edge(e).participant == part).unwrap()
    }

    /// A one-color a -> r -> b schema.
    fn linear_schema(g: &ErGraph) -> MctSchema {
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let pa = b.add_root(c, a);
        let pr = b.add_child(pa, edge_between(g, "r", "a"), r);
        b.add_child(pr, edge_between(g, "r", "b"), bb);
        b.finish(g).unwrap()
    }

    #[test]
    fn build_and_derive() {
        let g = small_graph();
        let s = linear_schema(&g);
        assert_eq!(s.color_count(), 1);
        assert_eq!(s.placements().len(), 3);
        assert!(s.icics().is_empty());
        let root = s.roots(ColorId(0))[0];
        assert_eq!(s.depth(root), 0);
        assert_eq!(s.children(root).len(), 1);
        let r = s.children(root)[0];
        let b = s.children(r)[0];
        assert_eq!(s.depth(b), 2);
        assert!(s.is_ancestor(root, b));
        assert!(!s.is_ancestor(b, root));
        assert_eq!(s.subtree(root), vec![root, r, b]);
        assert_eq!(s.path_to_root(b).len(), 3);
    }

    #[test]
    fn icic_derived_for_redundant_edge() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let e_ra = edge_between(&g, "r", "a");
        let e_rb = edge_between(&g, "r", "b");
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c1 = b.add_color();
        let c2 = b.add_color();
        // color 1: a -> r -> b ; color 2: b -> r (edge r--b again!)
        let pa = b.add_root(c1, a);
        let pr = b.add_child(pa, e_ra, r);
        b.add_child(pr, e_rb, bb);
        let pb2 = b.add_root(c2, bb);
        b.add_child(pb2, e_rb, r);
        let s = b.finish(&g).unwrap();
        assert_eq!(s.icics().len(), 1);
        assert_eq!(s.icics()[0].edge, e_rb);
        assert_eq!(s.icics()[0].colors, vec![c1, c2]);
        assert_eq!(s.edge_colors(e_ra), vec![c1]);
    }

    #[test]
    fn uncovered_edge_rejected_and_idref_accepted() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let e_ra = edge_between(&g, "r", "a");
        let e_rb = edge_between(&g, "r", "b");

        let mk = |with_idref: bool| {
            let mut b = MctSchemaBuilder::new("t", "TEST");
            let c = b.add_color();
            let pa = b.add_root(c, a);
            b.add_child(pa, e_ra, r);
            let _pb = b.add_root(c, bb); // b placed but r--b edge not structural
            if with_idref {
                b.add_idref(&g, e_rb);
            }
            b.finish(&g)
        };
        assert!(matches!(mk(false), Err(SchemaError::UncoveredEdge(_))));
        let s = mk(true).unwrap();
        assert_eq!(s.idrefs().len(), 1);
        assert_eq!(s.idref_for(e_rb).unwrap().attr, "b_idref");
        assert!(s.idref_for(e_ra).is_none());
    }

    #[test]
    fn uncovered_node_rejected() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        b.add_root(c, a);
        assert!(matches!(b.finish(&g), Err(SchemaError::UncoveredNode(_))));
    }

    #[test]
    fn edge_mismatch_rejected() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let e_ra = edge_between(&g, "r", "a");
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, a);
        // claim edge r--a connects a to b: wrong
        b.add_child(pa, e_ra, bb);
        assert!(matches!(b.finish(&g), Err(SchemaError::EdgeMismatch { .. })));
    }

    #[test]
    fn redundant_idref_rejected() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, a);
        let pr = b.add_child(pa, edge_between(&g, "r", "a"), r);
        b.add_child(pr, edge_between(&g, "r", "b"), bb);
        b.add_idref(&g, edge_between(&g, "r", "b"));
        assert!(matches!(b.finish(&g), Err(SchemaError::RedundantIdref(_))));
    }

    #[test]
    fn attach_root_merges_trees() {
        let g = small_graph();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let mut b = MctSchemaBuilder::new("t", "TEST");
        let c = b.add_color();
        let pa = b.add_root(c, a);
        let pr = b.add_child(pa, edge_between(&g, "r", "a"), r);
        let pb = b.add_root(c, bb);
        b.attach_root(pb, pr, edge_between(&g, "r", "b")).unwrap();
        let s = b.finish(&g).unwrap();
        assert_eq!(s.roots(c).len(), 1);
        assert_eq!(s.depth(pb), 2);
    }

    #[test]
    fn render_mentions_strategy_and_colors() {
        let g = small_graph();
        let s = linear_schema(&g);
        let out = s.render(&g);
        assert!(out.contains("TEST"));
        assert!(out.contains("BLUE"));
        assert!(out.contains("a"));
    }
}

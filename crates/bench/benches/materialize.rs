//! Materialization cost: one canonical TPC-W instance into each schema.
//! Un-normalized schemas pay for their copies here (Table 1's storage
//! column, as time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};

fn bench_materialize(c: &mut Criterion) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 200);
    let inst = generate(&g, &p, 42);
    let mut group = c.benchmark_group("materialize");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        group.bench_with_input(BenchmarkId::new("tpcw200", s.label()), &schema, |b, schema| {
            b.iter(|| std::hint::black_box(materialize(&g, schema, &inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_materialize);
criterion_main!(benches);

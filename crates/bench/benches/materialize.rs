//! Materialization cost: one canonical TPC-W instance into each schema.
//! Un-normalized schemas pay for their copies here (Table 1's storage
//! column, as time).

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};

fn main() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 200);
    let inst = generate(&g, &p, 42);
    println!("materialize — canonical TPC-W instance (200 customers) into each schema");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        micro::case(&format!("tpcw200/{}", s.label()), || materialize(&g, &schema, &inst));
    }
}

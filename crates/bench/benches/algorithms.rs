//! Design-algorithm cost: ER diagram → schema, per strategy, on the
//! smallest, a mid-size, and the largest catalog diagram. Design time is
//! the "compile-time" cost of the methodology and stays in microseconds.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_er::{catalog, ErGraph};

fn main() {
    println!("algorithms — ER diagram → MCT schema design time");
    for name in ["er6", "tpcw", "er9"] {
        let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
        for s in Strategy::ALL {
            micro::case(&format!("{}/{name}", s.label()), || design(&g, s).unwrap());
        }
    }
}

//! Design-algorithm cost: ER diagram → schema, per strategy, on the
//! smallest, a mid-size, and the largest catalog diagram. Design time is
//! the "compile-time" cost of the methodology and stays in microseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use colorist_core::{design, Strategy};
use colorist_er::{catalog, ErGraph};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    for name in ["er6", "tpcw", "er9"] {
        let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
        for s in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(s.label(), name),
                &g,
                |b, g| b.iter(|| std::hint::black_box(design(g, s).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);

//! Update cost per schema: the insert (U1) and the single-element modify
//! (U3) whose duplicate maintenance makes DEEP and UNDR pay in Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::execute_update;
use colorist_workload::tpcw;

fn bench_updates(c: &mut Criterion) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 150);
    let inst = generate(&g, &p, 42);
    let w = tpcw::workload(&g);
    let mut group = c.benchmark_group("updates");
    group.sample_size(20);
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        for uname in ["U1", "U3"] {
            let u = w.updates.iter().find(|u| u.name == uname).unwrap();
            group.bench_function(BenchmarkId::new(uname, s.label()), |b| {
                b.iter_batched(
                    || db.clone(),
                    |mut dbu| std::hint::black_box(execute_update(&mut dbu, &g, u).unwrap()),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);

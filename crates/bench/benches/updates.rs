//! Update cost per schema: the insert (U1) and the single-element modify
//! (U3) whose duplicate maintenance makes DEEP and UNDR pay in Table 1.
//! Each iteration runs on a fresh database clone; only the update itself
//! is timed.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::execute_update;
use colorist_workload::tpcw;

fn main() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 150);
    let inst = generate(&g, &p, 42);
    let w = tpcw::workload(&g);
    println!("updates — U1/U3 per schema (150 customers, fresh clone per iteration)");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        for uname in ["U1", "U3"] {
            let u = w.updates.iter().find(|u| u.name == uname).unwrap();
            micro::case_with_setup(
                &format!("{uname}/{}", s.label()),
                || db.clone(),
                |mut dbu| execute_update(&mut dbu, &g, u).unwrap(),
            );
        }
    }
}

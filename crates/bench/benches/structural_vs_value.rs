//! The cost asymmetry the whole paper rests on: structural joins (interval
//! stack-merge) versus value joins (hash build + probe over id/idref
//! values), at growing extents — "structural joins … have been shown to be
//! much more efficient than value-based joins". Also times the semi-join
//! variant, which returns one side with no pair materialization.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_mct::ColorId;
use colorist_store::{
    structural_join, structural_semi_join, value_join, AttrRef, Axis, Database, Metrics, SemiSide,
};

fn setup(customers: u32, strategy: Strategy) -> (ErGraph, Database) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, customers);
    let inst = generate(&g, &p, 42);
    let schema = design(&g, strategy).unwrap();
    let db = materialize(&g, &schema, &inst);
    (g, db)
}

fn main() {
    println!("structural_vs_value — join primitive cost at growing extents");
    for &customers in &[100u32, 400, 1600] {
        // structural: country ancestors of orders in AF's single color
        let (g, db) = setup(customers, Strategy::Af);
        let color = ColorId(0);
        let anc = db.color(color).of_node(g.node_by_name("country").unwrap()).to_vec();
        let desc = db.color(color).of_node(g.node_by_name("order").unwrap()).to_vec();
        micro::case(&format!("structural_join/{customers}"), || {
            let mut m = Metrics::default();
            structural_join(&db, color, &anc, &desc, Axis::Descendant, &mut m)
        });
        micro::case(&format!("structural_semi_join/{customers}"), || {
            let mut m = Metrics::default();
            structural_semi_join(&db, color, &anc, &desc, SemiSide::Descendant, None, &mut m)
        });

        // value: SHALLOW's order_line.item_idref = item.id
        let (g, db) = setup(customers, Strategy::Shallow);
        let ol = g.node_by_name("order_line").unwrap();
        let item = g.node_by_name("item").unwrap();
        let edge =
            g.edge_ids().find(|&e| g.edge(e).rel == ol && g.edge(e).participant == item).unwrap();
        let idref = db.idref_attr_index(&g, edge).expect("shallow idref");
        let left = db.extent(ol).to_vec();
        let right = db.extent(item).to_vec();
        micro::case(&format!("value_join/{customers}"), || {
            let mut m = Metrics::default();
            value_join(&db, &left, AttrRef::Attr(idref), &right, AttrRef::Id, &mut m)
        });
    }
}

//! The cost asymmetry the whole paper rests on: structural joins (interval
//! stack-merge) versus value joins (hash build + probe over id/idref
//! values), at growing extents — "structural joins … have been shown to be
//! much more efficient than value-based joins". Also times the semi-join
//! variant, which returns one side with no pair materialization, the
//! gallop-skipping kernels against the merge reference at growing side
//! asymmetry, and index-accelerated predicated scans against the linear
//! reference path.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_mct::ColorId;
use colorist_query::{compile, execute, CmpOp, PatternBuilder};
use colorist_store::{
    structural_join, structural_join_merge, structural_semi_join, structural_semi_join_merge,
    value_join, AttrRef, Axis, Database, Metrics, SemiSide, Value,
};

fn setup(customers: u32, strategy: Strategy) -> (ErGraph, Database) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, customers);
    let inst = generate(&g, &p, 42);
    let schema = design(&g, strategy).unwrap();
    let db = materialize(&g, &schema, &inst);
    (g, db)
}

fn main() {
    println!("structural_vs_value — join primitive cost at growing extents");
    for &customers in &[100u32, 400, 1600] {
        // structural: country ancestors of orders in AF's single color
        let (g, db) = setup(customers, Strategy::Af);
        let color = ColorId(0);
        let anc = db.color(color).of_node(g.node_by_name("country").unwrap()).to_vec();
        let desc = db.color(color).of_node(g.node_by_name("order").unwrap()).to_vec();
        micro::case(&format!("structural_join/{customers}"), || {
            let mut m = Metrics::default();
            structural_join(&db, color, &anc, &desc, Axis::Descendant, &mut m)
        });
        micro::case(&format!("structural_semi_join/{customers}"), || {
            let mut m = Metrics::default();
            structural_semi_join(&db, color, &anc, &desc, SemiSide::Descendant, None, &mut m)
        });

        // value: SHALLOW's order_line.item_idref = item.id
        let (g, db) = setup(customers, Strategy::Shallow);
        let ol = g.node_by_name("order_line").unwrap();
        let item = g.node_by_name("item").unwrap();
        let edge =
            g.edge_ids().find(|&e| g.edge(e).rel == ol && g.edge(e).participant == item).unwrap();
        let idref = db.idref_attr_index(&g, edge).expect("shallow idref");
        let left = db.extent(ol).to_vec();
        let right = db.extent(item).to_vec();
        micro::case(&format!("value_join/{customers}"), || {
            let mut m = Metrics::default();
            value_join(&db, &left, AttrRef::Attr(idref), &right, AttrRef::Id, &mut m)
        });
    }

    // merge vs gallop at growing side asymmetry: ancestor (customer)
    // prefixes of |desc| / ratio occurrences against the full order list.
    // At 4x the dispatcher stays on merge (parity row); past GALLOP_RATIO
    // the few ancestors cover few orders, and gallop binary-searches past
    // the non-joining runs the merge walk must scan one by one.
    println!("merge vs gallop — |anc| = |desc| / ratio (1600 customers)");
    let (g, db) = setup(1600, Strategy::Af);
    let color = ColorId(0);
    let anc_all = db.color(color).of_node(g.node_by_name("customer").unwrap()).to_vec();
    let desc = db.color(color).of_node(g.node_by_name("order").unwrap()).to_vec();
    for &ratio in &[4usize, 64, 512] {
        let anc = &anc_all[..anc_all.len().min((desc.len() / ratio).max(1))];
        micro::case(&format!("join_merge/x{ratio}"), || {
            let mut m = Metrics::default();
            structural_join_merge(&db, color, anc, &desc, Axis::Descendant, &mut m)
        });
        micro::case(&format!("join_auto/x{ratio}"), || {
            let mut m = Metrics::default();
            structural_join(&db, color, anc, &desc, Axis::Descendant, &mut m)
        });
        micro::case(&format!("semi_merge/x{ratio}"), || {
            let mut m = Metrics::default();
            structural_semi_join_merge(&db, color, anc, &desc, SemiSide::Descendant, None, &mut m)
        });
        micro::case(&format!("semi_auto/x{ratio}"), || {
            let mut m = Metrics::default();
            structural_semi_join(&db, color, anc, &desc, SemiSide::Descendant, None, &mut m)
        });
    }

    // indexed vs linear predicated scan: the same compiled plan run with
    // the value index live and with the reference kernels pinned, at the
    // two ends of the selectivity spectrum — a point probe (one id) and
    // the tpcw Q3 half-the-extent range
    println!("indexed vs linear predicated scan (point and range selectivity)");
    for &customers in &[100u32, 400, 1600] {
        let (g, mut db) = setup(customers, Strategy::Shallow);
        let point = PatternBuilder::new(&g, "scan_point")
            .node("item")
            .pred_eq("id", Value::Int(5))
            .output(0)
            .build()
            .unwrap();
        let range = PatternBuilder::new(&g, "scan_range")
            .node("item")
            .pred("cost", CmpOp::Lt, Value::Float(500.0))
            .output(0)
            .build()
            .unwrap();
        let point_plan = compile(&g, &db.schema, &point).unwrap();
        let range_plan = compile(&g, &db.schema, &range).unwrap();
        micro::case(&format!("scan_indexed_point/{customers}"), || {
            execute(&db, &g, &point_plan).unwrap()
        });
        micro::case(&format!("scan_indexed_range/{customers}"), || {
            execute(&db, &g, &range_plan).unwrap()
        });
        db.set_reference_kernels(true);
        micro::case(&format!("scan_linear_point/{customers}"), || {
            execute(&db, &g, &point_plan).unwrap()
        });
        micro::case(&format!("scan_linear_range/{customers}"), || {
            execute(&db, &g, &range_plan).unwrap()
        });
    }
}

//! The cost asymmetry the whole paper rests on: structural joins (interval
//! stack-merge) versus value joins (hash build + probe over id/idref
//! values), at growing extents — "structural joins … have been shown to be
//! much more efficient than value-based joins".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_mct::ColorId;
use colorist_store::{structural_join, value_join, AttrRef, Axis, Database, Metrics};

fn setup(customers: u32, strategy: Strategy) -> (ErGraph, Database) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, customers);
    let inst = generate(&g, &p, 42);
    let schema = design(&g, strategy).unwrap();
    let db = materialize(&g, &schema, &inst);
    (g, db)
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_vs_value");
    for &customers in &[100u32, 400, 1600] {
        // structural: country ancestors of orders in AF's single color
        let (g, db) = setup(customers, Strategy::Af);
        let color = ColorId(0);
        let anc = db.color(color).of_node(g.node_by_name("country").unwrap()).to_vec();
        let desc = db.color(color).of_node(g.node_by_name("order").unwrap()).to_vec();
        group.bench_with_input(
            BenchmarkId::new("structural_join", customers),
            &customers,
            |b, _| {
                b.iter(|| {
                    let mut m = Metrics::default();
                    std::hint::black_box(structural_join(
                        &db,
                        color,
                        &anc,
                        &desc,
                        Axis::Descendant,
                        &mut m,
                    ))
                })
            },
        );

        // value: SHALLOW's order_line.item_idref = item.id
        let (g, db) = setup(customers, Strategy::Shallow);
        let ol = g.node_by_name("order_line").unwrap();
        let item = g.node_by_name("item").unwrap();
        let edge = g
            .edge_ids()
            .find(|&e| g.edge(e).rel == ol && g.edge(e).participant == item)
            .unwrap();
        let idref = db.idref_attr_index(&g, edge).expect("shallow idref");
        let left = db.extent(ol).to_vec();
        let right = db.extent(item).to_vec();
        group.bench_with_input(BenchmarkId::new("value_join", customers), &customers, |b, _| {
            b.iter(|| {
                let mut m = Metrics::default();
                std::hint::black_box(value_join(
                    &db,
                    &left,
                    AttrRef::Attr(idref),
                    &right,
                    AttrRef::Id,
                    &mut m,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);

//! End-to-end query evaluation per schema: the cheap chain (Q1), the
//! multi-association star (Q8), and the longest chain (Q9) — the queries
//! whose Table 1 rows separate the strategies most. Plus two optimizer
//! micro-benches: the cost of a histogram selectivity probe vs computing
//! the true selectivity by executing the selection, and a structural star
//! run under the worst child order vs the cost-based order.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::{compile, compile_with, execute, optimize, CmpOp, Pattern};
use colorist_store::{CmpKind, Database};
use colorist_workload::tpcw;

/// Estimated rows behind one pattern node: histogram estimate when a
/// predicate is present, plain extent cardinality otherwise — the same
/// quantity the optimizer's greedy child ordering minimizes.
fn node_est(db: &Database, q: &Pattern, c: usize) -> f64 {
    let pn = &q.nodes[c];
    match &pn.predicate {
        None => db.statistics().extent_rows(pn.node) as f64,
        Some(p) => {
            let kind = match p.op {
                CmpOp::Eq => CmpKind::Eq,
                CmpOp::Lt => CmpKind::Lt,
                CmpOp::Gt => CmpKind::Gt,
            };
            db.estimate_predicate_matches(pn.node, p.attr, kind, &p.value).0
        }
    }
}

fn main() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 300);
    let inst = generate(&g, &p, 42);
    let w = tpcw::workload(&g);
    println!("query_eval — Q1/Q8/Q9 per schema (300 customers)");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        for qname in ["Q1", "Q8", "Q9"] {
            let q = w.reads.iter().find(|q| q.name == qname).unwrap();
            let plan = compile(&g, &db.schema, q).unwrap();
            micro::case(&format!("{qname}/{}", s.label()), || execute(&db, &g, &plan).unwrap());
        }
    }

    let schema = design(&g, Strategy::Deep).unwrap();
    let db = materialize(&g, &schema, &inst);

    // (a) Histogram selectivity probe vs the true selectivity, obtained by
    // executing the selection — what the histogram saves the planner.
    println!("selectivity — histogram probe vs true scan (Q3: item.cost < 500, deep)");
    let q3 = w.reads.iter().find(|q| q.name == "Q3").unwrap();
    let pn = &q3.nodes[0];
    let pred = pn.predicate.as_ref().expect("Q3 carries a range predicate");
    micro::case("selectivity/histogram-probe", || {
        db.estimate_predicate_matches(pn.node, pred.attr, CmpKind::Lt, &pred.value)
    });
    let sel_plan = compile(&g, &db.schema, q3).unwrap();
    micro::case("selectivity/true-scan", || execute(&db, &g, &sel_plan).unwrap());

    // (b) The Q8 star under the worst child order (descending estimated
    // rows — the exact inverse of the optimizer's greedy rule) vs the
    // cost-based order.
    println!("star ordering — worst vs cost-based child order (Q8, deep)");
    let q8 = w.reads.iter().find(|q| q.name == "Q8").unwrap();
    let worst = |_v: usize, children: &[usize]| -> Vec<usize> {
        let mut ch = children.to_vec();
        ch.sort_by(|&a, &b| node_est(&db, q8, b).total_cmp(&node_est(&db, q8, a)));
        ch
    };
    let worst_plan = compile_with(&g, &db.schema, q8, Some(&worst)).unwrap();
    let opt_plan = optimize(&db, &g, q8).unwrap();
    micro::case("Q8/worst-child-order", || execute(&db, &g, &worst_plan).unwrap());
    micro::case("Q8/optimized-child-order", || execute(&db, &g, &opt_plan).unwrap());
}

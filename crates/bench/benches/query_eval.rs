//! End-to-end query evaluation per schema: the cheap chain (Q1), the
//! multi-association star (Q8), and the longest chain (Q9) — the queries
//! whose Table 1 rows separate the strategies most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::{compile, execute};
use colorist_workload::tpcw;

fn bench_queries(c: &mut Criterion) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 300);
    let inst = generate(&g, &p, 42);
    let w = tpcw::workload(&g);
    let mut group = c.benchmark_group("query_eval");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        for qname in ["Q1", "Q8", "Q9"] {
            let q = w.reads.iter().find(|q| q.name == qname).unwrap();
            let plan = compile(&g, &db.schema, q).unwrap();
            group.bench_function(BenchmarkId::new(qname, s.label()), |b| {
                b.iter(|| std::hint::black_box(execute(&db, &g, &plan)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);

//! End-to-end query evaluation per schema: the cheap chain (Q1), the
//! multi-association star (Q8), and the longest chain (Q9) — the queries
//! whose Table 1 rows separate the strategies most.

use colorist_bench::micro;
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::{compile, execute};
use colorist_workload::tpcw;

fn main() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let p = ScaleProfile::tpcw(&g, 300);
    let inst = generate(&g, &p, 42);
    let w = tpcw::workload(&g);
    println!("query_eval — Q1/Q8/Q9 per schema (300 customers)");
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        for qname in ["Q1", "Q8", "Q9"] {
            let q = w.reads.iter().find(|q| q.name == qname).unwrap();
            let plan = compile(&g, &db.schema, q).unwrap();
            micro::case(&format!("{qname}/{}", s.label()), || execute(&db, &g, &plan).unwrap());
        }
    }
}

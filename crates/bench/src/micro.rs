//! A dependency-free micro-benchmark harness for the `benches/` binaries.
//!
//! The workspace builds offline with no external crates, so the former
//! Criterion benches are plain `harness = false` binaries driving this
//! module instead: warm up, then repeat the closure until a time budget
//! (`COLORIST_BENCH_MS`, default 200 ms per case) or an iteration cap is
//! spent, and report the median per-iteration time. No statistics beyond
//! the median are attempted — these numbers guide relative comparisons
//! (structural vs value join, schema vs schema), not absolute claims.

use std::time::{Duration, Instant};

/// Per-case time budget.
fn budget() -> Duration {
    let ms = std::env::var("COLORIST_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Time one case and print a `name  median  (iters)` row. Returns the
/// median per-iteration time so callers can derive ratios.
pub fn case<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    case_with_setup(name, || (), move |()| f())
}

/// Like [`case`] for workloads needing fresh input per iteration (e.g.
/// updates mutating a database clone); only `run`'s span is measured.
pub fn case_with_setup<T, R>(
    name: &str,
    mut setup: impl FnMut() -> T,
    mut run: impl FnMut(T) -> R,
) -> Duration {
    let budget = budget();
    for _ in 0..2 {
        std::hint::black_box(run(setup()));
    }
    let mut times = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget && times.len() < 100_000 {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(run(input));
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("{name:<44}{:>14}  ({} iters)", fmt_duration(median), times.len());
    median
}

/// Human-scale duration formatting (ns → s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale_appropriately() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}

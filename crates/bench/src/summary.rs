//! Machine-readable run summaries: `results/bench_summary.json`.
//!
//! The table/figure binaries print human-oriented matrices; this module
//! additionally persists one JSON document per run with the per-query wall
//! times, the per-strategy operation totals, and the run metadata (scale,
//! seed, worker count, suite wall clock) so results can be diffed across
//! commits and machines without re-parsing stdout. The format is
//! hand-rolled — the workspace is buildable offline with no external
//! crates — and kept flat enough for `jq` one-liners.
//!
//! The document is versioned: [`SCHEMA_VERSION`] bumps whenever a field is
//! added, removed, or changes meaning, and `colorist-perfgate` refuses to
//! diff documents whose versions disagree. Every field is documented in
//! EXPERIMENTS.md ("The `bench_summary.json` schema").

use colorist_workload::{QueryKind, SuiteResult};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Version stamped into every summary document as `"schema_version"`.
///
/// History: 1 — the original unversioned layout (no `schema_version`,
/// `git_rev`, `join_probes` or `bytes_touched`); 2 — adds those four
/// fields; 3 — adds per-query `index_lookups` and `elements_skipped`
/// (the index/gallop kernel counters); 4 — adds the optimizer fields:
/// `heur_scanned`/`heur_probes`/`heur_bytes` (measured gate counters of
/// the heuristic-planner twin run on every query) and, on read queries,
/// `est_scanned`/`est_probes`/`est_bytes`/`est_index_lookups` (the
/// cost-based planner's estimates, rounded to integers); 5 — the trace
/// vocabulary gains the `batch`/`snapshot` span categories with their
/// `batch_ops`/`snapshot_reads` counters (emitted by
/// `UpdateBatch::apply` and `execute_snapshot`), which
/// `colorist-perfgate --validate-trace` now whitelists; the summary
/// fields themselves are unchanged; 6 — the trace vocabulary gains the
/// `effect` span category with its `effect_keys` counter (emitted by the
/// static batch effect analysis inside `UpdateBatch::apply`); the summary
/// fields themselves are again unchanged; 7 — the pluggable paged storage
/// backend: run metadata gains `backend` (`"mem"`, `"paged"` or
/// `"paged-mem"`) and `pool_bytes` (the buffer-pool byte budget, 0 on the
/// heap backend), every per-query record gains the four deterministic page
/// counters `page_reads`/`page_writes`/`pool_hits`/`pool_evictions`, and
/// the trace vocabulary gains the `storage` span category carrying those
/// counters on op, query, and flush spans; 8 — the multi-client query
/// service: every per-query record gains the prepared-plan-cache counters
/// `plan_cache_hits`/`plan_cache_misses`/`plan_cache_evictions`
/// (deterministic; 0 when the query executed a pre-built plan without
/// consulting the cache) and the machine-dependent `queue_wait_ns`
/// (submission-queue wait, 0 outside the server), and the trace
/// vocabulary gains the `server` span category (read/admit/commit spans
/// carrying `queue_wait_ns`, the three `plan_cache_*` counters,
/// `admitted`, and `groups`). `colorist-scale` emits a sibling
/// `BENCH_scale.json` document (schema documented in EXPERIMENTS.md)
/// that the perfgate diffs with `--scale`.
pub const SCHEMA_VERSION: u64 = 8;

/// The git revision to stamp into the document: `COLORIST_GIT_REV` if set,
/// else `git rev-parse --short=12 HEAD`, else `"unknown"` (e.g. when built
/// from a tarball).
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("COLORIST_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Run metadata stamped into the summary document.
#[derive(Debug, Clone)]
pub struct SummaryMeta<'a> {
    /// Which binary produced this (e.g. `"table1"`).
    pub bench: &'a str,
    /// `COLORIST_SCALE` in effect.
    pub scale: u32,
    /// `COLORIST_SEED` in effect.
    pub seed: u64,
    /// Worker count the suite ran with (`COLORIST_THREADS`).
    pub threads: usize,
    /// Storage backend label in effect (`"mem"`, `"paged"`, `"paged-mem"`).
    pub backend: &'a str,
    /// Buffer-pool byte budget (0 on the heap backend).
    pub pool_bytes: u64,
    /// Wall time of an extra single-worker pass over the same instance,
    /// when one was taken (for the parallel speedup figure).
    pub serial_wall: Option<Duration>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the summary document.
pub fn bench_summary_json(meta: &SummaryMeta, results: &[SuiteResult]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"git_rev\": \"{}\",", esc(&git_rev()));
    let _ = writeln!(j, "  \"bench\": \"{}\",", esc(meta.bench));
    let _ = writeln!(j, "  \"scale\": {},", meta.scale);
    let _ = writeln!(j, "  \"seed\": {},", meta.seed);
    let _ = writeln!(j, "  \"threads\": {},", meta.threads);
    let _ = writeln!(j, "  \"backend\": \"{}\",", esc(meta.backend));
    let _ = writeln!(j, "  \"pool_bytes\": {},", meta.pool_bytes);
    let suite_wall = results.first().map_or(Duration::ZERO, |r| r.suite_wall);
    let _ = writeln!(j, "  \"suite_wall_ms\": {:.3},", ms(suite_wall));
    if let Some(serial) = meta.serial_wall {
        let _ = writeln!(j, "  \"serial_wall_ms\": {:.3},", ms(serial));
        if !suite_wall.is_zero() {
            let _ = writeln!(
                j,
                "  \"parallel_speedup\": {:.3},",
                serial.as_secs_f64() / suite_wall.as_secs_f64()
            );
        }
    }
    let _ = writeln!(j, "  \"strategies\": [");
    for (i, r) in results.iter().enumerate() {
        let total: Duration = r.runs.iter().map(|q| q.metrics.elapsed).sum();
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"strategy\": \"{}\",", esc(r.strategy.label()));
        let _ = writeln!(j, "      \"colors\": {},", r.colors);
        let _ = writeln!(j, "      \"elements\": {},", r.stats.elements);
        let _ = writeln!(j, "      \"data_mbytes\": {:.3},", r.stats.data_mbytes());
        let _ = writeln!(j, "      \"queries_wall_ms\": {:.3},", ms(total));
        let _ = writeln!(j, "      \"queries\": [");
        for (qi, q) in r.runs.iter().enumerate() {
            let kind = match q.kind {
                QueryKind::Read => "read",
                QueryKind::Update => "update",
            };
            let m = &q.metrics;
            // The heuristic-planner twin runs every query; a missing twin
            // (never produced by the suite today) degrades to the measured
            // counters so the domination gate trivially holds.
            let (hs, hp, hb) = q
                .heuristic
                .as_ref()
                .map_or((m.elements_scanned, m.join_probes, m.bytes_touched), |h| {
                    (h.elements_scanned, h.join_probes, h.bytes_touched)
                });
            let _ = write!(
                j,
                "        {{\"name\": \"{}\", \"kind\": \"{kind}\", \
                 \"elapsed_us\": {}, \"logical\": {}, \"physical\": {}, \
                 \"structural_joins\": {}, \"value_joins\": {}, \
                 \"color_crossings\": {}, \"dup_eliminations\": {}, \
                 \"group_bys\": {}, \"duplicate_updates\": {}, \
                 \"icic_maintenance\": {}, \"elements_scanned\": {}, \
                 \"join_probes\": {}, \"bytes_touched\": {}, \
                 \"index_lookups\": {}, \"elements_skipped\": {}, \
                 \"page_reads\": {}, \"page_writes\": {}, \
                 \"pool_hits\": {}, \"pool_evictions\": {}, \
                 \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
                 \"plan_cache_evictions\": {}, \"queue_wait_ns\": {}, \
                 \"heur_scanned\": {hs}, \"heur_probes\": {hp}, \
                 \"heur_bytes\": {hb}",
                esc(&q.name),
                m.elapsed.as_micros(),
                q.logical,
                q.physical,
                m.structural_joins,
                m.value_joins,
                m.color_crossings,
                m.dup_eliminations,
                m.group_bys,
                m.duplicate_updates,
                m.icic_maintenance,
                m.elements_scanned,
                m.join_probes,
                m.bytes_touched,
                m.index_lookups,
                m.elements_skipped,
                m.page_reads,
                m.page_writes,
                m.pool_hits,
                m.pool_evictions,
                m.plan_cache_hits,
                m.plan_cache_misses,
                m.plan_cache_evictions,
                m.queue_wait_ns,
            );
            if let Some(est) = &q.est {
                let _ = write!(
                    j,
                    ", \"est_scanned\": {}, \"est_probes\": {}, \
                     \"est_bytes\": {}, \"est_index_lookups\": {}",
                    est.scanned, est.probes, est.bytes, est.index_lookups,
                );
            }
            let _ = write!(j, "}}");
            let _ = writeln!(j, "{}", if qi + 1 < r.runs.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ]");
    let _ = write!(j, "}}");
    j
}

/// Default output path: `COLORIST_SUMMARY` if set, else
/// `results/bench_summary.json` under the current directory.
pub fn summary_path() -> PathBuf {
    std::env::var_os("COLORIST_SUMMARY")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/bench_summary.json"))
}

/// Write the summary document and return where it landed.
pub fn write_bench_summary(
    meta: &SummaryMeta,
    results: &[SuiteResult],
) -> std::io::Result<PathBuf> {
    let path = summary_path();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&path, bench_summary_json(meta, results))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_shape_on_empty_results() {
        let meta = SummaryMeta {
            bench: "t",
            scale: 1,
            seed: 2,
            threads: 3,
            backend: "mem",
            pool_bytes: 0,
            serial_wall: Some(Duration::from_millis(10)),
        };
        let j = bench_summary_json(&meta, &[]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"git_rev\": \""));
        assert!(j.contains("\"bench\": \"t\""));
        assert!(j.contains("\"threads\": 3"));
        assert!(j.contains("\"backend\": \"mem\""));
        assert!(j.contains("\"pool_bytes\": 0"));
        assert!(j.contains("\"serial_wall_ms\": 10.000"));
        assert!(j.contains("\"strategies\": ["));
    }
}

//! # colorist-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (§6):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — storage statistics and query processing time for the 7 TPC-W schemas |
//! | `fig8` | Figure 8 — structural joins per TPC-W query |
//! | `fig9` | Figure 9 — value joins + color crossings per TPC-W query |
//! | `fig10` | Figure 10 — duplicate eliminations / duplicate updates / group-bys |
//! | `fig11` | Figure 11 — query processing time |
//! | `fig12`–`fig14` | Figures 12–14 — geometric means of the three metrics over the ER collection |
//! | `collection_summary` | §6.2's prose numbers: 66-schema sweep, color counts, query counts |
//!
//! Two observability tools ride along (DESIGN.md §9): `colorist-explain`
//! prints `EXPLAIN ANALYZE` for any catalog query × strategy, and
//! `colorist-perfgate` ([`perfgate`]) diffs two `bench_summary.json`
//! documents and fails on regressions. `table1 --trace out.json` captures a
//! chrome-trace of the whole suite.
//!
//! Scale is controlled by `COLORIST_SCALE` (default 300 TPC-W customers /
//! 120 instances per collection entity) and `COLORIST_SEED` (default 42).
//! Absolute sizes are far below the paper's 2.6M-element database — this is
//! an in-memory reproduction — but every reported *shape* (who wins, by
//! what rough factor, where the crossovers are) is scale-stable; see
//! EXPERIMENTS.md.
//!
//! The `benches/` directory holds micro-benchmarks (driven by the
//! dependency-free [`micro`] harness) for the primitives underlying those
//! tables: structural vs value joins, the design algorithms,
//! materialization, query evaluation, and updates.
//!
//! Suite runs are parallel across strategies and queries
//! (`COLORIST_THREADS`, default: available parallelism); [`summary`]
//! persists each run to `results/bench_summary.json`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use colorist_core::Strategy;
use colorist_datagen::{generate, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_workload::{derby, suite, tpcw, xmark, SuiteResult, Workload};
use std::time::Duration;

pub mod micro;
pub mod perfgate;
pub mod summary;

pub use perfgate::{compare, compare_scale, validate_trace, GateConfig, GateReport};
pub use summary::{bench_summary_json, write_bench_summary, SummaryMeta, SCHEMA_VERSION};

/// TPC-W customers at scale 1.
pub fn scale() -> u32 {
    std::env::var("COLORIST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(300)
}

/// Deterministic data seed.
pub fn seed() -> u64 {
    std::env::var("COLORIST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Storage backend label in effect (`COLORIST_BACKEND`, default `"mem"`).
pub fn backend() -> String {
    colorist_store::env_backend()
}

/// Buffer-pool byte budget for the summary metadata: 0 on the heap
/// backend, else `COLORIST_POOL_BYTES` (default 16 MiB).
pub fn pool_bytes() -> u64 {
    if backend() == "mem" {
        0
    } else {
        colorist_store::env_pool_bytes()
    }
}

/// Run the TPC-W workload on all seven schemas.
pub fn tpcw_suite() -> (ErGraph, Workload, Vec<SuiteResult>) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let profile = ScaleProfile::tpcw(&g, scale());
    let results =
        suite::run_suite(&g, &Strategy::ALL, &w, &profile, seed()).expect("tpcw suite runs");
    (g, w, results)
}

/// [`tpcw_suite`] plus, when the suite ran on more than one worker, an
/// extra single-worker pass over the same instance whose wall time anchors
/// the parallel-speedup figure in the JSON summary.
pub fn tpcw_suite_with_baseline() -> (ErGraph, Workload, Vec<SuiteResult>, Option<Duration>) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let profile = ScaleProfile::tpcw(&g, scale());
    let instance = generate(&g, &profile, seed());
    let threads = suite::suite_threads();
    let results = suite::run_suite_on_threads(&g, &Strategy::ALL, &w, &instance, threads)
        .expect("tpcw suite runs");
    let serial_wall = (threads > 1).then(|| {
        suite::run_suite_on_threads(&g, &Strategy::ALL, &w, &instance, 1)
            .expect("serial baseline runs")
            .first()
            .map_or(Duration::ZERO, |r| r.suite_wall)
    });
    (g, w, results, serial_wall)
}

/// Run the appropriate workload on every diagram of the collection
/// (Figures 12–14: six strategies, UNDR excluded).
pub fn collection_suites() -> Vec<(String, Workload, Vec<SuiteResult>)> {
    let base = (scale() / 2).max(30);
    catalog::COLLECTION
        .iter()
        .map(|&name| {
            let g = ErGraph::from_diagram(&catalog::by_name(name).expect("catalog name"))
                .expect("diagram builds");
            let w = match name {
                "tpcw" => tpcw::workload(&g),
                "derby" => derby::workload(&g),
                _ => xmark::workload(&g),
            };
            let profile = match name {
                "tpcw" => ScaleProfile::tpcw(&g, base),
                _ => ScaleProfile::uniform(&g, base),
            };
            let results = suite::run_suite(&g, &Strategy::COLLECTION, &w, &profile, seed())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.to_string(), w, results)
        })
        .collect()
}

/// Print a query × strategy matrix of some metric.
pub fn print_query_matrix(
    title: &str,
    workload: &Workload,
    results: &[SuiteResult],
    cell: impl Fn(&colorist_workload::QueryRun) -> String,
) {
    println!("{title}");
    print!("{:<6}", "query");
    for r in results {
        print!("{:>9}", r.strategy.label());
    }
    println!();
    for name in workload.reported() {
        print!("{:<6}", name);
        for r in results {
            let run = r.run(name).expect("query ran");
            print!("{:>9}", cell(run));
        }
        println!();
    }
}

/// Print a diagram × strategy matrix of shifted-geometric-mean metrics over
/// the reported queries (Figures 12–14).
pub fn print_geo_matrix(
    title: &str,
    suites: &[(String, Workload, Vec<SuiteResult>)],
    metric: impl Fn(&colorist_workload::QueryRun) -> u64,
) {
    println!("{title}");
    print!("{:<8}", "diagram");
    for r in &suites[0].2 {
        print!("{:>9}", r.strategy.label());
    }
    println!();
    for (name, w, results) in suites {
        print!("{:<8}", name);
        for r in results {
            let m =
                suite::geo_mean(w.reported().iter().map(|q| metric(r.run(q).expect("query ran"))));
            print!("{:>9.2}", m);
        }
        println!();
    }
}

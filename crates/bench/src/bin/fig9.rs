//! Figure 9: number of value joins / color crossings for the TPC-W
//! queries, per schema — the metric query time tracks most closely (§6.1).

fn main() {
    let (_g, w, results) = colorist_bench::tpcw_suite();
    colorist_bench::print_query_matrix(
        "Figure 9 — value joins + color crossings per TPC-W query",
        &w,
        &results,
        |run| format!("{}+{}", run.metrics.value_joins, run.metrics.color_crossings),
    );
}

//! Figure 10: duplicate eliminations / duplicate updates / group-bys for
//! the TPC-W queries, per schema.

fn main() {
    let (_g, w, results) = colorist_bench::tpcw_suite();
    colorist_bench::print_query_matrix(
        "Figure 10 — dup eliminations + dup updates + group-bys per TPC-W query",
        &w,
        &results,
        |run| run.metrics.dup_group_metric().to_string(),
    );
}

//! Table 1: TPC-W data statistics and query processing time for the seven
//! schemas (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).

fn main() {
    let (_g, w, results) = colorist_bench::tpcw_suite();

    println!(
        "Table 1 — TPC-W data statistics and query processing time (scale: {} customers, seed {})",
        colorist_bench::scale(),
        colorist_bench::seed()
    );
    println!();
    let row = |label: &str, f: &dyn Fn(&colorist_workload::SuiteResult) -> String| {
        print!("{label:<22}");
        for r in &results {
            print!("{:>16}", f(r));
        }
        println!();
    };
    print!("{:<22}", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    row("Num. Elements", &|r| r.stats.elements.to_string());
    row("Num. Attributes", &|r| r.stats.attributes.to_string());
    row("Num. Content Nodes", &|r| r.stats.content_nodes.to_string());
    row("Data MBytes", &|r| format!("{:.2}", r.stats.data_mbytes()));
    row("Num. Colors", &|r| r.colors.to_string());
    println!();

    println!("{:<6}{:>12}  time per schema (µs); duplicates in parentheses", "query", "results");
    print!("{:<6}{:>12}", "", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    for name in w.reported() {
        let logical = results[0].run(name).expect("ran").logical;
        print!("{:<6}{:>12}", name, logical);
        for r in &results {
            let run = r.run(name).expect("ran");
            let dup = run.physical.saturating_sub(run.logical);
            let cell = if dup > 0 {
                format!("{}({})", run.metrics.elapsed.as_micros(), run.physical)
            } else {
                format!("{}", run.metrics.elapsed.as_micros())
            };
            print!("{:>16}", cell);
        }
        println!();
    }
}

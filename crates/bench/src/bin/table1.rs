//! Table 1: TPC-W data statistics and query processing time for the seven
//! schemas (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).
//!
//! `--trace out.json` additionally records a hierarchical span trace of the
//! whole run (design, materialization, every query on every worker) and
//! writes it in chrome-trace format — open it in `chrome://tracing` or
//! Perfetto.
//!
//! `--backend paged|paged-mem|mem` selects the storage backend (shorthand
//! for `COLORIST_BACKEND`), and `--pool-bytes N` sets the buffer-pool byte
//! budget (`COLORIST_POOL_BYTES`); see DESIGN.md §14.

fn main() {
    let trace_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        let usage = "usage: table1 [--trace out.json] [--backend mem|paged|paged-mem] \
                     [--pool-bytes N]";
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => match args.next() {
                    Some(p) => path = Some(p),
                    None => {
                        eprintln!("--trace requires an output path");
                        std::process::exit(2);
                    }
                },
                "--backend" => match args.next() {
                    Some(b) => std::env::set_var("COLORIST_BACKEND", b),
                    None => {
                        eprintln!("--backend requires a value; {usage}");
                        std::process::exit(2);
                    }
                },
                "--pool-bytes" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) => std::env::set_var("COLORIST_POOL_BYTES", n.to_string()),
                    None => {
                        eprintln!("--pool-bytes requires an integer; {usage}");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown argument `{other}`; {usage}");
                    std::process::exit(2);
                }
            }
        }
        path
    };
    if trace_path.is_some() {
        colorist_trace::collect_start();
    }

    let (_g, w, results, serial_wall) = colorist_bench::tpcw_suite_with_baseline();

    if let Some(path) = &trace_path {
        let trace = colorist_trace::collect_stop();
        match std::fs::write(path, colorist_trace::chrome_trace_json(&trace)) {
            Ok(()) => eprintln!("trace: {} spans -> {path}", trace.spans.len()),
            Err(e) => {
                eprintln!("trace write failed: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "Table 1 — TPC-W data statistics and query processing time (scale: {} customers, seed {})",
        colorist_bench::scale(),
        colorist_bench::seed()
    );
    let backend = colorist_bench::backend();
    if backend != "mem" {
        println!("storage backend: {backend} (buffer pool {} bytes)", colorist_bench::pool_bytes());
    }
    println!();
    let row = |label: &str, f: &dyn Fn(&colorist_workload::SuiteResult) -> String| {
        print!("{label:<22}");
        for r in &results {
            print!("{:>16}", f(r));
        }
        println!();
    };
    print!("{:<22}", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    row("Num. Elements", &|r| r.stats.elements.to_string());
    row("Num. Attributes", &|r| r.stats.attributes.to_string());
    row("Num. Content Nodes", &|r| r.stats.content_nodes.to_string());
    row("Data MBytes", &|r| format!("{:.2}", r.stats.data_mbytes()));
    row("Num. Colors", &|r| r.colors.to_string());
    println!();

    println!("{:<6}{:>12}  time per schema (µs); duplicates in parentheses", "query", "results");
    print!("{:<6}{:>12}", "", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    for name in w.reported() {
        let logical = results[0].run(name).expect("ran").logical;
        print!("{:<6}{:>12}", name, logical);
        for r in &results {
            let run = r.run(name).expect("ran");
            let dup = run.physical.saturating_sub(run.logical);
            let cell = if dup > 0 {
                format!("{}({})", run.metrics.elapsed.as_micros(), run.physical)
            } else {
                format!("{}", run.metrics.elapsed.as_micros())
            };
            print!("{:>16}", cell);
        }
        println!();
    }

    let threads = colorist_workload::suite_threads();
    let suite_wall = results[0].suite_wall;
    println!();
    print!("suite wall: {:.1} ms on {threads} worker(s)", suite_wall.as_secs_f64() * 1e3);
    if let Some(serial) = serial_wall {
        print!(
            "; serial baseline: {:.1} ms ({:.2}x speedup)",
            serial.as_secs_f64() * 1e3,
            serial.as_secs_f64() / suite_wall.as_secs_f64()
        );
    }
    println!();

    let meta = colorist_bench::SummaryMeta {
        bench: "table1",
        scale: colorist_bench::scale(),
        seed: colorist_bench::seed(),
        threads,
        backend: &colorist_bench::backend(),
        pool_bytes: colorist_bench::pool_bytes(),
        serial_wall,
    };
    match colorist_bench::write_bench_summary(&meta, &results) {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("summary write failed: {e}"),
    }
}

//! Table 1: TPC-W data statistics and query processing time for the seven
//! schemas (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).

fn main() {
    let (_g, w, results, serial_wall) = colorist_bench::tpcw_suite_with_baseline();

    println!(
        "Table 1 — TPC-W data statistics and query processing time (scale: {} customers, seed {})",
        colorist_bench::scale(),
        colorist_bench::seed()
    );
    println!();
    let row = |label: &str, f: &dyn Fn(&colorist_workload::SuiteResult) -> String| {
        print!("{label:<22}");
        for r in &results {
            print!("{:>16}", f(r));
        }
        println!();
    };
    print!("{:<22}", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    row("Num. Elements", &|r| r.stats.elements.to_string());
    row("Num. Attributes", &|r| r.stats.attributes.to_string());
    row("Num. Content Nodes", &|r| r.stats.content_nodes.to_string());
    row("Data MBytes", &|r| format!("{:.2}", r.stats.data_mbytes()));
    row("Num. Colors", &|r| r.colors.to_string());
    println!();

    println!("{:<6}{:>12}  time per schema (µs); duplicates in parentheses", "query", "results");
    print!("{:<6}{:>12}", "", "");
    for r in &results {
        print!("{:>16}", r.strategy.label());
    }
    println!();
    for name in w.reported() {
        let logical = results[0].run(name).expect("ran").logical;
        print!("{:<6}{:>12}", name, logical);
        for r in &results {
            let run = r.run(name).expect("ran");
            let dup = run.physical.saturating_sub(run.logical);
            let cell = if dup > 0 {
                format!("{}({})", run.metrics.elapsed.as_micros(), run.physical)
            } else {
                format!("{}", run.metrics.elapsed.as_micros())
            };
            print!("{:>16}", cell);
        }
        println!();
    }

    let threads = colorist_workload::suite_threads();
    let suite_wall = results[0].suite_wall;
    println!();
    print!("suite wall: {:.1} ms on {threads} worker(s)", suite_wall.as_secs_f64() * 1e3);
    if let Some(serial) = serial_wall {
        print!(
            "; serial baseline: {:.1} ms ({:.2}x speedup)",
            serial.as_secs_f64() * 1e3,
            serial.as_secs_f64() / suite_wall.as_secs_f64()
        );
    }
    println!();

    let meta = colorist_bench::SummaryMeta {
        bench: "table1",
        scale: colorist_bench::scale(),
        seed: colorist_bench::seed(),
        threads,
        serial_wall,
    };
    match colorist_bench::write_bench_summary(&meta, &results) {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("summary write failed: {e}"),
    }
}

//! Figure 8: number of structural joins for the TPC-W queries, per schema.

fn main() {
    let (_g, w, results) = colorist_bench::tpcw_suite();
    colorist_bench::print_query_matrix(
        "Figure 8 — structural joins per TPC-W query",
        &w,
        &results,
        |run| run.metrics.structural_joins.to_string(),
    );
}

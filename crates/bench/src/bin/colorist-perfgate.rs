//! The performance-regression gate (DESIGN.md §9.4).
//!
//! ```text
//! colorist-perfgate --baseline results/bench_baseline.json \
//!                   --current  results/bench_summary.json \
//!                   [--max-wall-regress 0.25] [--wall-warn-only] \
//!                   [--max-op-regress 0.0] [--q-error-budget 8.0]
//! colorist-perfgate --validate-trace trace.json
//! colorist-perfgate --scale --baseline results/BENCH_scale.json --current ...
//! ```
//!
//! `--scale` switches the diff to the `BENCH_scale.json` rules
//! (identity fields exact, plan-cache counters op-gated, throughput/p99
//! under the wall-clock rules).
//!
//! Exit status: `0` pass, `1` regression (or invalid trace), `2` usage
//! error / non-comparable documents.

use colorist_bench::{compare, compare_scale, validate_trace, GateConfig};
use colorist_trace::Json;

fn usage() -> ! {
    eprintln!(
        "usage: colorist-perfgate [--scale] --baseline FILE --current FILE \
         [--max-wall-regress F] [--wall-warn-only] [--max-op-regress F] \
         [--q-error-budget F]\n\
         \x20      colorist-perfgate --validate-trace FILE"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfgate: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut baseline = None;
    let mut current = None;
    let mut trace = None;
    let mut scale_doc = false;
    let mut cfg = GateConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("perfgate: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--current" => current = Some(value("--current")),
            "--validate-trace" => trace = Some(value("--validate-trace")),
            "--scale" => scale_doc = true,
            "--wall-warn-only" => cfg.wall_warn_only = true,
            "--max-wall-regress" | "--max-op-regress" | "--q-error-budget" => {
                let v: f64 = value(&a).parse().unwrap_or_else(|_| {
                    eprintln!("perfgate: {a} expects a number like 0.25");
                    std::process::exit(2);
                });
                match a.as_str() {
                    "--max-wall-regress" => cfg.max_wall_regress = v,
                    "--max-op-regress" => cfg.max_op_regress = v,
                    _ => cfg.q_error_budget = v,
                }
            }
            _ => usage(),
        }
    }

    if let Some(path) = trace {
        if baseline.is_some() || current.is_some() {
            usage();
        }
        match validate_trace(&load(&path)) {
            Ok(()) => {
                println!("perfgate: trace {path} is well-formed");
                return;
            }
            Err(e) => {
                eprintln!("perfgate: {e}");
                std::process::exit(1);
            }
        }
    }

    let (Some(bpath), Some(cpath)) = (baseline, current) else { usage() };
    let diff = if scale_doc { compare_scale } else { compare };
    match diff(&load(&bpath), &load(&cpath), &cfg) {
        Err(e) => {
            eprintln!("perfgate: {e}");
            std::process::exit(2);
        }
        Ok(report) => {
            for w in &report.warnings {
                eprintln!("perfgate: warning: {w}");
            }
            for f in &report.failures {
                eprintln!("perfgate: FAIL: {f}");
            }
            if report.pass() {
                println!(
                    "perfgate: pass ({} warning(s)) — {cpath} vs {bpath}",
                    report.warnings.len()
                );
            } else {
                eprintln!("perfgate: {} regression(s)", report.failures.len());
                std::process::exit(1);
            }
        }
    }
}

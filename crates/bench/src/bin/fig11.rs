//! Figure 11: query processing time for the TPC-W queries, per schema.
//! (Same data as Table 1's bottom half, presented as the chart series.)

fn main() {
    let (_g, w, results) = colorist_bench::tpcw_suite();
    colorist_bench::print_query_matrix(
        "Figure 11 — TPC-W query processing time (µs)",
        &w,
        &results,
        |run| run.metrics.elapsed.as_micros().to_string(),
    );

    let meta = colorist_bench::SummaryMeta {
        bench: "fig11",
        scale: colorist_bench::scale(),
        seed: colorist_bench::seed(),
        threads: colorist_workload::suite_threads(),
        backend: &colorist_bench::backend(),
        pool_bytes: colorist_bench::pool_bytes(),
        serial_wall: None,
    };
    match colorist_bench::write_bench_summary(&meta, &results) {
        Ok(path) => println!("\nsummary: {}", path.display()),
        Err(e) => eprintln!("summary write failed: {e}"),
    }
}

//! Figure 14: geometric mean of duplicate eliminations / duplicate updates
//! / group-bys over each diagram's workload.

fn main() {
    let suites = colorist_bench::collection_suites();
    colorist_bench::print_geo_matrix(
        "Figure 14 — geometric mean of dup eliminations + dup updates + group-bys (ER collection)",
        &suites,
        |run| run.metrics.dup_group_metric(),
    );
}

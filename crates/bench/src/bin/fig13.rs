//! Figure 13: geometric mean of value joins / color crossings over each
//! diagram's workload — the decisive metric of §6.2.

fn main() {
    let suites = colorist_bench::collection_suites();
    colorist_bench::print_geo_matrix(
        "Figure 13 — geometric mean of value joins + color crossings (ER collection)",
        &suites,
        |run| run.metrics.value_joins_plus_crossings(),
    );
}

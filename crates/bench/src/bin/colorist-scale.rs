//! Scale curves for the multi-client query service (DESIGN.md §15.7).
//!
//! For each target database size (default 1k/10k/100k/1M stored elements)
//! and each of the seven strategies, the binary calibrates a TPC-W
//! customer count to hit the element target, materializes the instance,
//! starts a [`colorist_server::Server`], and drives a round-structured
//! read-heavy mix: every round commits a small write batch through
//! admission batching, re-warms the prepared-plan cache (one serial read
//! per pattern — exactly the deterministic miss set), then fires the
//! timed read phase from `--clients` concurrent client threads.
//!
//! It publishes per-cell throughput (timed reads only), p50/p99 latency,
//! the plan-cache counters, and an order-stable FNV checksum over every
//! read answer into a schema-v8 `BENCH_scale.json` that
//! `colorist-perfgate --scale` diffs across commits: identity fields
//! (element counts, request counts, checksums, final epochs) exactly,
//! timing under the wall-clock rules.
//!
//! ```text
//! colorist-scale [--scales 1000,10000,100000,1000000] [--workers N]
//!                [--clients 4] [--rounds 4] [--reads 64] [--writes 8]
//!                [--speedup-scale 100000] [--speedup-workers 8]
//!                [--out results/BENCH_scale.json] [--trace FILE]
//! ```
//!
//! `--speedup-scale 0` skips the 1-vs-N-worker throughput comparison.
//! Worker *counters* are deterministic for any worker count; worker
//! *speedup* is a property of the host's core count (a single-core CI
//! box reports ≈1× regardless of the code), which is why the `speedup`
//! section is published but never gated.

use colorist_bench::summary::git_rev;
use colorist_bench::{backend, pool_bytes, seed, SCHEMA_VERSION};
use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph, NodeId};
use colorist_query::Pattern;
use colorist_server::{Server, ServerConfig};
use colorist_store::{Database, UpdateBatch, Value};
use colorist_workload::tpcw;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Config {
    scales: Vec<u64>,
    workers: usize,
    clients: usize,
    rounds: u32,
    reads_per_round: u32,
    writes_per_round: u32,
    speedup_scale: u64,
    speedup_workers: usize,
    out: String,
    trace: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scales: vec![1_000, 10_000, 100_000, 1_000_000],
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            clients: 4,
            rounds: 4,
            reads_per_round: 64,
            writes_per_round: 8,
            speedup_scale: 100_000,
            speedup_workers: 8,
            out: "results/BENCH_scale.json".to_string(),
            trace: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: colorist-scale [--scales N,N,...] [--workers N] [--clients N] \
         [--rounds N] [--reads N] [--writes N] [--speedup-scale N] \
         [--speedup-workers N] [--out FILE] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("colorist-scale: {flag} requires a value");
                std::process::exit(2);
            })
        };
        let parse = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("colorist-scale: {flag} expects an integer, got {v:?}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--scales" => {
                let v = value("--scales");
                cfg.scales = v.split(',').map(|s| parse("--scales", s.to_string())).collect();
                if cfg.scales.is_empty() {
                    usage();
                }
            }
            "--workers" => cfg.workers = parse(&a, value(&a.clone())).max(1) as usize,
            "--clients" => cfg.clients = parse(&a, value(&a.clone())).max(1) as usize,
            "--rounds" => cfg.rounds = parse(&a, value(&a.clone())).max(1) as u32,
            "--reads" => cfg.reads_per_round = parse(&a, value(&a.clone())).max(1) as u32,
            "--writes" => cfg.writes_per_round = parse(&a, value(&a.clone())) as u32,
            "--speedup-scale" => cfg.speedup_scale = parse(&a, value(&a.clone())),
            "--speedup-workers" => {
                cfg.speedup_workers = parse(&a, value(&a.clone())).max(2) as usize
            }
            "--out" => cfg.out = value("--out"),
            "--trace" => cfg.trace = Some(value("--trace")),
            _ => usage(),
        }
    }
    cfg
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Elements-per-customer linear fit `elements(c) ≈ a + b·c` from two
/// small probe materializations, used to pick the customer count whose
/// database lands nearest the element target.
struct Fit {
    a: f64,
    b: f64,
}

impl Fit {
    fn probe(g: &ErGraph, strategy: Strategy, seed: u64) -> Fit {
        let count = |customers: u32| {
            let schema = design(g, strategy).expect("catalog designs");
            let db = materialize(g, &schema, &generate(g, &ScaleProfile::tpcw(g, customers), seed));
            db.element_count() as f64
        };
        let (c1, c2) = (8.0, 24.0);
        let (e1, e2) = (count(8), count(24));
        let b = ((e2 - e1) / (c2 - c1)).max(1.0);
        Fit { a: e1 - b * c1, b }
    }

    fn customers_for(&self, target: u64) -> u32 {
        (((target as f64 - self.a) / self.b).round().max(1.0)) as u32
    }
}

fn by_name(g: &ErGraph, name: &str) -> NodeId {
    g.node_ids().find(|&n| g.node(n).name == name).expect("node exists")
}

/// One (scale, strategy) measurement.
struct Cell {
    strategy: &'static str,
    customers: u32,
    elements: u64,
    reads: u64,
    writes: u64,
    answers_checksum: u64,
    final_epoch: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_evictions: u64,
    queue_wait_ns: u64,
    throughput_qps: f64,
    p50_us: f64,
    p99_us: f64,
    wall_ms: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

/// Run the round-structured mix for one materialized database.
fn run_cell(
    g: &ErGraph,
    db: Database,
    patterns: &[Pattern],
    strategy: Strategy,
    customers: u32,
    cfg: &Config,
    workers: usize,
) -> Cell {
    let elements = db.element_count() as u64;
    let customer = by_name(g, "customer");
    // resolve write targets while we still hold the database; ordinals
    // cycle over the calibrated customer population
    let targets: Vec<colorist_store::ElementId> = (0..customers)
        .map(|o| db.canonical_by_ordinal(customer, o).expect("calibrated customer ordinal exists"))
        .collect();
    let server = Server::start(db, g, &ServerConfig::default().with_workers(workers));
    let main = server.client();
    let mut checksum = FNV_OFFSET;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut timed = Duration::ZERO;
    let (mut reads, mut writes) = (0u64, 0u64);
    let wall_start = Instant::now();
    for round in 0..cfg.rounds {
        // write burst: admission-batched, group-committed by the flush
        let pending: Vec<_> = (0..cfg.writes_per_round)
            .map(|k| {
                let ordinal = (round * cfg.writes_per_round + k) % customers;
                let e = targets[ordinal as usize];
                let mut b = UpdateBatch::new();
                b.write_attr(e, 1, Value::Int((round as i64) << 16 | k as i64));
                main.write(b)
            })
            .collect();
        main.flush().wait().expect("flush commits");
        for p in pending {
            p.wait().expect("write commits");
            writes += 1;
        }
        // re-warm: one serial read per pattern. These are exactly the
        // round's plan-cache misses — the write burst bumped the
        // statistics epoch, so every cached plan is stale by key.
        for q in patterns {
            let r = main.read(q).wait().expect("warm read serves");
            checksum = digest(checksum, r.results, r.distinct, &r.elements);
            reads += 1;
        }
        // timed phase: `clients` threads, global round-robin split, all
        // hits (no writes in flight, epoch stable until the next round)
        let t0 = Instant::now();
        let mut shards: Vec<Vec<(u32, Duration, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|t| {
                    let c = server.client();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = t as u32;
                        while i < cfg.reads_per_round {
                            let q = &patterns[i as usize % patterns.len()];
                            let begin = Instant::now();
                            let r = c.read(q).wait().expect("timed read serves");
                            let lat = begin.elapsed();
                            out.push((
                                i,
                                lat,
                                digest(FNV_OFFSET, r.results, r.distinct, &r.elements),
                            ));
                            i += cfg.clients as u32;
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        timed += t0.elapsed();
        // fold per-reply digests in global submission-index order so the
        // checksum is identical for any client/worker count
        let mut flat: Vec<(u32, Duration, u64)> = shards.drain(..).flatten().collect();
        flat.sort_unstable_by_key(|&(i, _, _)| i);
        for (_, lat, d) in flat {
            checksum = mix(checksum, d);
            latencies.push(lat);
            reads += 1;
        }
    }
    let wall = wall_start.elapsed();
    let m = server.metrics();
    let final_epoch = server.published_epoch();
    server.shutdown();
    latencies.sort_unstable();
    let timed_reads = cfg.rounds as u64 * cfg.reads_per_round as u64;
    Cell {
        strategy: strategy.label(),
        customers,
        elements,
        reads,
        writes,
        answers_checksum: checksum,
        final_epoch,
        plan_cache_hits: m.plan_cache_hits,
        plan_cache_misses: m.plan_cache_misses,
        plan_cache_evictions: m.plan_cache_evictions,
        queue_wait_ns: m.queue_wait_ns,
        throughput_qps: timed_reads as f64 / timed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

fn digest(h: u64, results: u64, distinct: u64, elements: &[colorist_store::ElementId]) -> u64 {
    let mut h = mix(mix(h, results), distinct);
    h = mix(h, elements.len() as u64);
    for e in elements {
        h = mix(h, e.0 as u64);
    }
    h
}

/// Build (customers, database) for one strategy at one element target.
fn build(g: &ErGraph, strategy: Strategy, fit: &Fit, target: u64, seed: u64) -> (u32, Database) {
    let customers = fit.customers_for(target);
    let schema = design(g, strategy).expect("catalog designs");
    let mut db = materialize(g, &schema, &generate(g, &ScaleProfile::tpcw(g, customers), seed));
    colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
    (customers, db)
}

fn main() {
    let cfg = parse_args();
    if cfg.trace.is_some() {
        colorist_trace::collect_start();
    }
    let seed = seed();
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let patterns: Vec<Pattern> = tpcw::workload(&g).reads;
    eprintln!(
        "colorist-scale: scales {:?}, {} workers, {} clients, {} rounds x ({} reads + {} writes), seed {seed}, backend {}",
        cfg.scales,
        cfg.workers,
        cfg.clients,
        cfg.rounds,
        cfg.reads_per_round,
        cfg.writes_per_round,
        backend()
    );

    let fits: Vec<(Strategy, Fit)> =
        Strategy::ALL.iter().map(|&s| (s, Fit::probe(&g, s, seed))).collect();

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(j, "  \"bench\": \"scale\",");
    let _ = writeln!(j, "  \"seed\": {seed},");
    let _ = writeln!(j, "  \"backend\": \"{}\",", backend());
    let _ = writeln!(j, "  \"pool_bytes\": {},", pool_bytes());
    let _ = writeln!(j, "  \"workers\": {},", cfg.workers);
    let _ = writeln!(j, "  \"clients\": {},", cfg.clients);
    let _ = writeln!(j, "  \"rounds\": {},", cfg.rounds);
    let _ = writeln!(j, "  \"reads_per_round\": {},", cfg.reads_per_round);
    let _ = writeln!(j, "  \"writes_per_round\": {},", cfg.writes_per_round);
    let _ = writeln!(j, "  \"scales\": [");
    for (si, &target) in cfg.scales.iter().enumerate() {
        let _ = writeln!(j, "    {{\"target_elements\": {target}, \"strategies\": [");
        for (ci, (strategy, fit)) in fits.iter().enumerate() {
            let (customers, db) = build(&g, *strategy, fit, target, seed);
            let cell = run_cell(&g, db, &patterns, *strategy, customers, &cfg, cfg.workers);
            eprintln!(
                "colorist-scale: {target:>8} x {:<7} {:>9} elements  {:>10.1} q/s  p50 {:>8.1} us  p99 {:>8.1} us  hit rate {:.3}",
                cell.strategy,
                cell.elements,
                cell.throughput_qps,
                cell.p50_us,
                cell.p99_us,
                cell.plan_cache_hits as f64
                    / (cell.plan_cache_hits + cell.plan_cache_misses).max(1) as f64,
            );
            let _ = writeln!(
                j,
                "      {{\"strategy\": \"{}\", \"customers\": {}, \"elements\": {},\n\
                 \x20       \"reads\": {}, \"writes\": {}, \"answers_checksum\": {},\n\
                 \x20       \"final_epoch\": {}, \"plan_cache_hits\": {},\n\
                 \x20       \"plan_cache_misses\": {}, \"plan_cache_evictions\": {},\n\
                 \x20       \"queue_wait_ns\": {}, \"throughput_qps\": {:.3},\n\
                 \x20       \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"wall_ms\": {:.3}}}{}",
                cell.strategy,
                cell.customers,
                cell.elements,
                cell.reads,
                cell.writes,
                cell.answers_checksum,
                cell.final_epoch,
                cell.plan_cache_hits,
                cell.plan_cache_misses,
                cell.plan_cache_evictions,
                cell.queue_wait_ns,
                cell.throughput_qps,
                cell.p50_us,
                cell.p99_us,
                cell.wall_ms,
                if ci + 1 < fits.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "    ]}}{}", if si + 1 < cfg.scales.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");

    // 1-vs-N-worker aggregate throughput on the read-heavy mix. On this
    // cooperative mix the speedup ceiling is min(workers, cores): a
    // single-core host honestly reports ≈1x whatever the worker count.
    if cfg.speedup_scale > 0 {
        let strategy = Strategy::Dr;
        let fit = &fits.iter().find(|(s, _)| *s == strategy).expect("DR fitted").1;
        let qps = |workers: usize| {
            let (customers, db) = build(&g, strategy, fit, cfg.speedup_scale, seed);
            run_cell(&g, db, &patterns, strategy, customers, &cfg, workers).throughput_qps
        };
        let (one, many) = (qps(1), qps(cfg.speedup_workers));
        eprintln!(
            "colorist-scale: speedup at {} elements ({}): 1 worker {one:.1} q/s, {} workers {many:.1} q/s => {:.2}x (ceiling = min(workers, cores) = {})",
            cfg.speedup_scale,
            strategy.label(),
            cfg.speedup_workers,
            many / one.max(1e-9),
            cfg.speedup_workers
                .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        );
        let _ = writeln!(
            j,
            "  \"speedup\": {{\"target_elements\": {}, \"strategy\": \"{}\",\n\
             \x20   \"workers_1_qps\": {one:.3}, \"workers_n_qps\": {many:.3},\n\
             \x20   \"workers_n\": {}, \"speedup\": {:.3},\n\
             \x20   \"host_cores\": {}}}",
            cfg.speedup_scale,
            strategy.label(),
            cfg.speedup_workers,
            many / one.max(1e-9),
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    } else {
        let _ = writeln!(j, "  \"speedup\": null");
    }
    let _ = writeln!(j, "}}");

    if let Some(dir) = std::path::Path::new(&cfg.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&cfg.out, &j).expect("write scale document");
    println!("colorist-scale: wrote {}", cfg.out);

    if let Some(path) = &cfg.trace {
        let trace = colorist_trace::collect_stop();
        std::fs::write(path, colorist_trace::chrome_trace_json(&trace))
            .expect("write trace document");
        eprintln!("colorist-scale: trace {} spans -> {path}", trace.spans.len());
    }
}

//! §6.2's prose numbers: the schema sweep over the ER collection.
//!
//! The paper: "We took our collection of 11 distinct ER diagrams, ranging
//! in size from 10-30 nodes. For each of these, we generated the six
//! different schemas … for a total of 66 different schemas. The maximum
//! number of colors used was 7. … For each of 28 queries from the XMark
//! benchmark, 8 of which are update queries, we wrote an equivalent query
//! against each of the 66 different schemas" (~1800 compiled queries, with
//! Derby's 20 on top).

use colorist_core::{design, design_report, Strategy};
use colorist_er::{catalog, EligibleAssociations, ErGraph};

fn main() {
    let mut schemas = 0usize;
    let mut max_colors = 0usize;
    let mut queries = 0usize;
    for name in catalog::COLLECTION {
        let g = ErGraph::from_diagram(&catalog::by_name(name).expect("name")).expect("builds");
        let elig = EligibleAssociations::enumerate_default(&g);
        println!(
            "{name:>6}: {:>2} nodes, {:>2} edges, {:>3} eligible associations",
            g.node_count(),
            g.edge_count(),
            elig.len()
        );
        for s in Strategy::COLLECTION {
            let schema = design(&g, s).expect("designs");
            schemas += 1;
            max_colors = max_colors.max(schema.color_count());
            // queries per diagram: 28 XMark-emulated (20 reads + 8 updates),
            // 20 for Derby, 16 for TPC-W
            queries += match name {
                "derby" => 20,
                "tpcw" => 16,
                _ => 28,
            };
        }
    }
    println!();
    println!("schemas generated: {schemas} (paper: 66 over 11 diagrams)");
    println!("maximum colors used: {max_colors} (paper: 7)");
    println!("queries compiled across schemas: {queries} (paper: ~1800 + Derby's)");
    println!();
    println!("per-diagram design report (TPC-W):");
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw");
    println!("{}", design_report(&g));
}

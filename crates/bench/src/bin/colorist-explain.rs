//! `EXPLAIN ANALYZE` from the command line (DESIGN.md §9.3).
//!
//! ```text
//! colorist-explain [--diagram tpcw] [--query Q12] [--strategy DR] [--static]
//! ```
//!
//! Compiles and executes every selected read query of the diagram's
//! workload under every selected strategy, printing each plan annotated
//! with the **measured** per-operator metrics (rows in/out, elements
//! scanned, join probes, bytes touched, wall time) next to the compiler's
//! static operation counts. Scale and seed come from `COLORIST_SCALE` /
//! `COLORIST_SEED` as for every bench binary. `--static` prints the
//! colored-XPath sketch instead of executing.
//!
//! Updates (U1–U3) are mutations, not plans, and are skipped.

use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::{compile, execute_profiled, explain, explain_analyze, optimize};
use colorist_workload::{derby, tpcw, xmark};

fn main() {
    let mut diagram = "tpcw".to_string();
    let mut query: Option<String> = None;
    let mut strategy: Option<Strategy> = None;
    let mut static_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("colorist-explain: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--diagram" => diagram = value("--diagram"),
            "--query" => query = Some(value("--query")),
            "--strategy" => {
                let v = value("--strategy");
                strategy = Some(Strategy::parse(&v).unwrap_or_else(|| {
                    eprintln!("colorist-explain: unknown strategy `{v}`");
                    std::process::exit(2);
                }));
            }
            "--static" => static_only = true,
            _ => {
                eprintln!(
                    "usage: colorist-explain [--diagram NAME] [--query QN] \
                     [--strategy LABEL] [--static]"
                );
                std::process::exit(2);
            }
        }
    }

    let Some(d) = catalog::by_name(&diagram) else {
        eprintln!("colorist-explain: unknown diagram `{diagram}` (try: {:?})", catalog::COLLECTION);
        std::process::exit(2);
    };
    let g = ErGraph::from_diagram(&d).expect("catalog diagram builds");
    let w = match diagram.as_str() {
        "tpcw" => tpcw::workload(&g),
        "derby" => derby::workload(&g),
        _ => xmark::workload(&g),
    };
    let scale = colorist_bench::scale();
    let seed = colorist_bench::seed();
    let profile = if diagram == "tpcw" {
        ScaleProfile::tpcw(&g, scale)
    } else {
        ScaleProfile::uniform(&g, scale)
    };
    let instance = generate(&g, &profile, seed);

    let strategies: Vec<Strategy> = match strategy {
        Some(s) => vec![s],
        None => Strategy::ALL.to_vec(),
    };
    let reads: Vec<_> = w
        .reads
        .iter()
        .filter(|p| query.as_deref().is_none_or(|q| q.eq_ignore_ascii_case(&p.name)))
        .collect();
    if reads.is_empty() {
        eprintln!(
            "colorist-explain: no read query matches {:?} in {diagram} (updates cannot be \
             explained)",
            query
        );
        std::process::exit(2);
    }

    println!("diagram {diagram}, scale {scale}, seed {seed}");
    for s in strategies {
        let schema = design(&g, s).expect("strategy designs the diagram");
        let db = (!static_only).then(|| {
            let mut db = materialize(&g, &schema, &instance);
            // COLORIST_BACKEND=paged|paged-mem attaches the paged storage
            // backend so the per-op pg-r/pg-hit/pg-ev columns and the page
            // totals are populated
            colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
            db
        });
        for q in &reads {
            // executed plans come from the cost-based optimizer so the
            // estimate-vs-measured drift columns are populated; the
            // --static sketch keeps the heuristic compiler (no database,
            // hence no statistics, to estimate from)
            let plan =
                match db.as_ref().map_or_else(|| compile(&g, &schema, q), |db| optimize(db, &g, q))
                {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("colorist-explain: {}/{s}: {e}", q.name);
                        std::process::exit(1);
                    }
                };
            if let Some(db) = &db {
                let (result, prof) = match execute_profiled(db, &g, &plan) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("colorist-explain: {}/{s}: {e}", q.name);
                        std::process::exit(1);
                    }
                };
                print!("{}", explain_analyze(&g, &plan, &result, &prof));
            } else {
                print!("{}", explain(&g, &plan));
            }
            println!();
        }
    }
}

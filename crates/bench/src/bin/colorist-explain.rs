//! `EXPLAIN ANALYZE` from the command line (DESIGN.md §9.3).
//!
//! ```text
//! colorist-explain [--diagram tpcw] [--query Q12] [--strategy DR] [--static]
//! colorist-explain --updates [--diagram tpcw] [--query U2] [--strategy DR]
//! ```
//!
//! Compiles and executes every selected read query of the diagram's
//! workload under every selected strategy, printing each plan annotated
//! with the **measured** per-operator metrics (rows in/out, elements
//! scanned, join probes, bytes touched, wall time) next to the compiler's
//! static operation counts. Scale and seed come from `COLORIST_SCALE` /
//! `COLORIST_SEED` as for every bench binary. `--static` prints the
//! colored-XPath sketch instead of executing.
//!
//! `--updates` switches to the workload's updates (U1–U3): modify/delete
//! specs are located, converted to an [`UpdateBatch`], and applied
//! atomically, printing the batch receipt — op count, duplicate
//! writes, occurrences removed, commit epoch, and `pages_written` (the
//! paged backend's commit-transaction cost) — plus the locate phase's
//! buffer-pool hit rate. Insert specs go through the inserter (their
//! position/link resolution is not a batch op) and report the same
//! storage costs from their metrics. `COLORIST_BACKEND=paged-mem` (or
//! `paged`) populates the page numbers; the heap backend reports them
//! as zero.

use colorist_core::{design, Strategy};
use colorist_datagen::{generate, materialize, ScaleProfile};
use colorist_er::{catalog, ErGraph};
use colorist_query::{
    compile, execute, execute_profiled, execute_update, explain, explain_analyze, optimize,
    UpdateAction,
};
use colorist_store::UpdateBatch;
use colorist_workload::{derby, tpcw, xmark};

fn main() {
    let mut diagram = "tpcw".to_string();
    let mut query: Option<String> = None;
    let mut strategy: Option<Strategy> = None;
    let mut static_only = false;
    let mut updates = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("colorist-explain: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--diagram" => diagram = value("--diagram"),
            "--query" => query = Some(value("--query")),
            "--strategy" => {
                let v = value("--strategy");
                strategy = Some(Strategy::parse(&v).unwrap_or_else(|| {
                    eprintln!("colorist-explain: unknown strategy `{v}`");
                    std::process::exit(2);
                }));
            }
            "--static" => static_only = true,
            "--updates" => updates = true,
            _ => {
                eprintln!(
                    "usage: colorist-explain [--diagram NAME] [--query QN] \
                     [--strategy LABEL] [--static | --updates]"
                );
                std::process::exit(2);
            }
        }
    }

    let Some(d) = catalog::by_name(&diagram) else {
        eprintln!("colorist-explain: unknown diagram `{diagram}` (try: {:?})", catalog::COLLECTION);
        std::process::exit(2);
    };
    let g = ErGraph::from_diagram(&d).expect("catalog diagram builds");
    let w = match diagram.as_str() {
        "tpcw" => tpcw::workload(&g),
        "derby" => derby::workload(&g),
        _ => xmark::workload(&g),
    };
    let scale = colorist_bench::scale();
    let seed = colorist_bench::seed();
    let profile = if diagram == "tpcw" {
        ScaleProfile::tpcw(&g, scale)
    } else {
        ScaleProfile::uniform(&g, scale)
    };
    let instance = generate(&g, &profile, seed);

    let strategies: Vec<Strategy> = match strategy {
        Some(s) => vec![s],
        None => Strategy::ALL.to_vec(),
    };

    if updates {
        explain_updates(&g, &w, &instance, &strategies, query.as_deref(), &diagram, scale, seed);
        return;
    }

    let reads: Vec<_> = w
        .reads
        .iter()
        .filter(|p| query.as_deref().is_none_or(|q| q.eq_ignore_ascii_case(&p.name)))
        .collect();
    if reads.is_empty() {
        eprintln!(
            "colorist-explain: no read query matches {:?} in {diagram} (updates cannot be \
             explained)",
            query
        );
        std::process::exit(2);
    }

    println!("diagram {diagram}, scale {scale}, seed {seed}");
    for s in strategies {
        let schema = design(&g, s).expect("strategy designs the diagram");
        let db = (!static_only).then(|| {
            let mut db = materialize(&g, &schema, &instance);
            // COLORIST_BACKEND=paged|paged-mem attaches the paged storage
            // backend so the per-op pg-r/pg-hit/pg-ev columns and the page
            // totals are populated
            colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
            db
        });
        for q in &reads {
            // executed plans come from the cost-based optimizer so the
            // estimate-vs-measured drift columns are populated; the
            // --static sketch keeps the heuristic compiler (no database,
            // hence no statistics, to estimate from)
            let plan =
                match db.as_ref().map_or_else(|| compile(&g, &schema, q), |db| optimize(db, &g, q))
                {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("colorist-explain: {}/{s}: {e}", q.name);
                        std::process::exit(1);
                    }
                };
            if let Some(db) = &db {
                let (result, prof) = match execute_profiled(db, &g, &plan) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("colorist-explain: {}/{s}: {e}", q.name);
                        std::process::exit(1);
                    }
                };
                print!("{}", explain_analyze(&g, &plan, &result, &prof));
            } else {
                print!("{}", explain(&g, &plan));
            }
            println!();
        }
    }
}

/// Format a locate/apply phase's buffer-pool hit rate.
fn pool_rate(m: &colorist_store::Metrics) -> String {
    let requests = m.pool_hits + m.page_reads;
    if requests == 0 {
        "n/a (no page requests)".to_string()
    } else {
        format!(
            "{:.3} ({} hits / {} faults)",
            m.pool_hits as f64 / requests as f64,
            m.pool_hits,
            m.page_reads
        )
    }
}

/// `--updates`: apply each selected update spec on a fresh materialization
/// and print its storage cost — the batch receipt's `pages_written` for
/// modify/delete specs, the metrics' page counters for insert specs.
#[allow(clippy::too_many_arguments)]
fn explain_updates(
    g: &ErGraph,
    w: &colorist_workload::Workload,
    instance: &colorist_datagen::CanonicalInstance,
    strategies: &[Strategy],
    query: Option<&str>,
    diagram: &str,
    scale: u32,
    seed: u64,
) {
    let specs: Vec<_> = w
        .updates
        .iter()
        .filter(|u| query.is_none_or(|q| q.eq_ignore_ascii_case(&u.name)))
        .collect();
    if specs.is_empty() {
        eprintln!("colorist-explain: no update matches {query:?} in {diagram}");
        std::process::exit(2);
    }
    println!("diagram {diagram}, scale {scale}, seed {seed} (update batches)");
    for &s in strategies {
        let schema = design(g, s).expect("strategy designs the diagram");
        for u in &specs {
            // fresh database per spec so every receipt reports the cost of
            // exactly one batch against the pristine instance
            let mut db = materialize(g, &schema, instance);
            colorist_store::attach_from_env(&mut db).expect("storage backend attaches");
            let fail = |e: &dyn std::fmt::Display| -> ! {
                eprintln!("colorist-explain: {}/{s}: {e}", u.name);
                std::process::exit(1);
            };
            if let UpdateAction::Insert(_) = &u.action {
                // inserts resolve positions/links through the inserter, not
                // the batch layer; their flush cost lands in page_writes
                let out = match execute_update(&mut db, g, u) {
                    Ok(o) => o,
                    Err(e) => fail(&e),
                };
                let m = &out.metrics;
                println!(
                    "{} [{s}]  insert: {} logical ({} physical), {} duplicate update(s); \
                     pages written {}; pool hit rate {}",
                    u.name,
                    out.logical,
                    out.physical,
                    m.duplicate_updates,
                    m.page_writes,
                    pool_rate(m),
                );
                continue;
            }
            let plan = match optimize(&db, g, &u.pattern) {
                Ok(p) => p,
                Err(e) => fail(&e),
            };
            let located = match execute(&db, g, &plan) {
                Ok(r) => r,
                Err(e) => fail(&e),
            };
            let mut batch = UpdateBatch::new();
            let action = match &u.action {
                UpdateAction::Modify { attr, value } => {
                    for &t in &located.elements {
                        batch.write_attr(t, *attr, value.clone());
                    }
                    "modify"
                }
                UpdateAction::Delete => {
                    for &t in &located.elements {
                        batch.delete(t);
                    }
                    "delete"
                }
                UpdateAction::Insert(_) => unreachable!("handled above"),
            };
            let receipt = match batch.apply(&mut db, g) {
                Ok(r) => r,
                Err(e) => fail(&e),
            };
            println!(
                "{} [{s}]  {action}: {} target(s) located (scanned {}, probes {}, pool hit rate {})",
                u.name,
                located.elements.len(),
                located.metrics.elements_scanned,
                located.metrics.join_probes,
                pool_rate(&located.metrics),
            );
            println!(
                "  batch receipt: {} op(s), {} duplicate write(s), {} occurrence(s) removed, \
                 epoch {}, pages written {}",
                receipt.ops,
                receipt.duplicate_writes,
                receipt.occurrences_removed,
                receipt.epoch,
                receipt.pages_written,
            );
        }
    }
}

//! Figure 12: geometric mean of structural joins over each diagram's
//! workload, for the ER collection (ER1–ER10, Derby, TPC-W) × 6 schemas.

fn main() {
    let suites = colorist_bench::collection_suites();
    colorist_bench::print_geo_matrix(
        "Figure 12 — geometric mean of structural joins (ER collection)",
        &suites,
        |run| run.metrics.structural_joins,
    );
}

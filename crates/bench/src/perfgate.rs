//! The performance-regression gate behind `colorist-perfgate`.
//!
//! Diffs two [`bench_summary.json`](crate::summary) documents — a committed
//! baseline and the current run — and classifies the differences:
//!
//! * **meta mismatches** (schema version, bench name, scale, seed, storage
//!   backend, pool budget) are usage errors — the two documents do not
//!   describe comparable runs;
//! * **operation-count drift** (structural/value joins, crossings,
//!   dup-eliminations, group-bys, scans, probes, bytes, result counts) is a
//!   **failure** when the current count regresses past the allowed factor,
//!   and a **warning** when it *improves* — improvements mean the baseline
//!   is stale and should be refreshed, not that the build is broken. The
//!   counters are deterministic (same scale + seed ⇒ same counts), so the
//!   default tolerance is zero: any growth fails;
//! * **wall-clock regression** (`suite_wall_ms`) past the allowed fraction
//!   is a failure by default, downgradeable to a warning with
//!   [`GateConfig::wall_warn_only`] for shared/noisy CI hardware;
//! * **optimizer quality** (schema v4): on every query of *both*
//!   documents, the cost-based planner's measured gate sum
//!   (`elements_scanned + join_probes + bytes_touched`) must not exceed
//!   the heuristic twin's (`heur_*`) — the optimizer never loses to the
//!   planner it replaced — and where estimates are recorded, the q-error
//!   between estimated and measured gate sums must stay within
//!   [`GateConfig::q_error_budget`].
//!
//! The module also hosts [`validate_trace`], the shape checker for
//! chrome-trace documents emitted by `--trace`, and [`compare_scale`],
//! the diff for the `BENCH_scale.json` documents emitted by
//! `colorist-scale` (schema v8): identity fields (element counts,
//! answer checksums, final epochs) must match exactly, plan-cache
//! counters follow the op-regress rules, and throughput/p99 latency
//! follow the wall-clock rules (machine-dependent, downgradeable).

use crate::summary::SCHEMA_VERSION;
use colorist_trace::Json;
use std::collections::BTreeMap;

/// What the gate tolerates before failing.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Allowed fractional growth in `suite_wall_ms` (e.g. `0.25` = +25%).
    pub max_wall_regress: f64,
    /// Downgrade wall-clock failures to warnings (shared CI hardware).
    pub wall_warn_only: bool,
    /// Allowed fractional growth in any deterministic counter. `0.0`
    /// demands byte-exact counts.
    pub max_op_regress: f64,
    /// Largest tolerated q-error (`max(est+1, meas+1) / min(est+1, meas+1)`)
    /// between a query's estimated and measured gate sums. Histograms are
    /// equi-depth with 16 buckets, so single-predicate estimates land well
    /// inside this; the budget mainly bounds drift on multi-join chains.
    pub q_error_budget: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            max_wall_regress: 0.25,
            wall_warn_only: false,
            max_op_regress: 0.0,
            q_error_budget: 8.0,
        }
    }
}

/// The gate's verdict: failures block, warnings inform.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Regressions past the configured tolerances.
    pub failures: Vec<String>,
    /// Improvements and downgraded wall-clock regressions.
    pub warnings: Vec<String>,
}

impl GateReport {
    /// `true` when nothing blocks.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The deterministic per-query counters the gate compares exactly. The
/// `heur_*` counters come from the heuristic-planner twin run and are
/// just as deterministic as the primary ones.
const OP_FIELDS: [&str; 24] = [
    "logical",
    "physical",
    "structural_joins",
    "value_joins",
    "color_crossings",
    "dup_eliminations",
    "group_bys",
    "duplicate_updates",
    "icic_maintenance",
    "elements_scanned",
    "join_probes",
    "bytes_touched",
    "index_lookups",
    "elements_skipped",
    "page_reads",
    "page_writes",
    "pool_hits",
    "pool_evictions",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
    "heur_scanned",
    "heur_probes",
    "heur_bytes",
];
// `queue_wait_ns` is deliberately NOT an OP_FIELD: it is wall-clock
// derived (like `elapsed_us`) and never exact-gated.

/// Counter keys a span of a known category may carry in its `args` (beside
/// the structural `id`/`parent` links). Spans of categories not listed here
/// (`compile`, `suite`, …) emit no counters today and are unconstrained.
const SPAN_COUNTERS: [(&str, &[&str]); 8] = [
    (
        "op",
        &[
            "rows_in",
            "rows_out",
            "elements_scanned",
            "join_probes",
            "bytes_touched",
            "structural_joins",
            "value_joins",
            "color_crossings",
            "dup_eliminations",
            "group_bys",
            "index_lookups",
            "elements_skipped",
            "page_reads",
            "page_writes",
            "pool_hits",
            "pool_evictions",
        ],
    ),
    (
        "query",
        &[
            "results",
            "distinct",
            "elements_scanned",
            "join_probes",
            "bytes_touched",
            "index_lookups",
            "elements_skipped",
            "page_reads",
            "page_writes",
            "pool_hits",
            "pool_evictions",
        ],
    ),
    ("materialize", &["elements", "colors"]),
    ("batch", &["batch_ops"]),
    ("snapshot", &["snapshot_reads"]),
    ("effect", &["effect_keys"]),
    ("storage", &["page_reads", "page_writes", "pool_hits", "pool_evictions"]),
    (
        "server",
        &[
            "queue_wait_ns",
            "plan_cache_hits",
            "plan_cache_misses",
            "plan_cache_evictions",
            "admitted",
            "groups",
        ],
    ),
];

fn require_u64(doc: &Json, key: &str, what: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or non-integer `{key}`"))
}

fn require_str<'a>(doc: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    doc.get(key).and_then(Json::as_str).ok_or_else(|| format!("{what}: missing `{key}`"))
}

/// Index a document's strategies as `strategy -> query -> counters`.
#[allow(clippy::type_complexity)]
fn index<'a>(
    doc: &'a Json,
    what: &str,
) -> Result<BTreeMap<String, BTreeMap<String, &'a Json>>, String> {
    let mut out = BTreeMap::new();
    let strategies = doc
        .get("strategies")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: missing `strategies` array"))?;
    for s in strategies {
        let label = require_str(s, "strategy", what)?.to_string();
        let queries = s
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{what}: strategy {label} missing `queries`"))?;
        let mut by_name = BTreeMap::new();
        for q in queries {
            by_name.insert(require_str(q, "name", what)?.to_string(), q);
        }
        out.insert(label, by_name);
    }
    Ok(out)
}

/// Diff `current` against `baseline` under `cfg`.
///
/// `Err` means the documents are not comparable (wrong schema version,
/// different bench/scale/seed, malformed JSON shape) — a usage error, not a
/// regression. `Ok` carries the [`GateReport`].
pub fn compare(baseline: &Json, current: &Json, cfg: &GateConfig) -> Result<GateReport, String> {
    for (doc, what) in [(baseline, "baseline"), (current, "current")] {
        let v = require_u64(doc, "schema_version", what)?;
        if v != SCHEMA_VERSION {
            return Err(format!(
                "{what}: schema_version {v} != supported {SCHEMA_VERSION}; \
                 regenerate the document with this build"
            ));
        }
    }
    for key in ["bench", "scale", "seed", "backend", "pool_bytes"] {
        let b = baseline.get(key);
        let c = current.get(key);
        if b != c {
            return Err(format!(
                "meta mismatch on `{key}`: baseline {b:?} vs current {c:?} — \
                 the runs are not comparable"
            ));
        }
    }

    let mut report = GateReport::default();

    // wall clock
    let b_wall = baseline.get("suite_wall_ms").and_then(Json::as_f64);
    let c_wall = current.get("suite_wall_ms").and_then(Json::as_f64);
    if let (Some(b), Some(c)) = (b_wall, c_wall) {
        if b > 0.0 && c > b * (1.0 + cfg.max_wall_regress) {
            let msg = format!(
                "suite_wall_ms regressed {:.1}% ({b:.3} -> {c:.3} ms; allowed +{:.0}%)",
                (c / b - 1.0) * 100.0,
                cfg.max_wall_regress * 100.0
            );
            if cfg.wall_warn_only {
                report.warnings.push(format!("{msg} [wall-warn-only]"));
            } else {
                report.failures.push(msg);
            }
        }
    }

    // deterministic counters
    let base = index(baseline, "baseline")?;
    let cur = index(current, "current")?;
    for label in base.keys() {
        if !cur.contains_key(label) {
            report.failures.push(format!("strategy {label} disappeared from the current run"));
        }
    }
    for (label, cur_queries) in &cur {
        let Some(base_queries) = base.get(label) else {
            report.warnings.push(format!("strategy {label} is new (not in the baseline)"));
            continue;
        };
        for name in base_queries.keys() {
            if !cur_queries.contains_key(name) {
                report.failures.push(format!("{label}/{name} disappeared from the current run"));
            }
        }
        for (name, cq) in cur_queries {
            let Some(bq) = base_queries.get(name) else {
                report.warnings.push(format!("{label}/{name} is new (not in the baseline)"));
                continue;
            };
            for field in OP_FIELDS {
                let what = format!("{label}/{name}");
                let b = require_u64(bq, field, &format!("baseline {what}"))?;
                let c = require_u64(cq, field, &format!("current {what}"))?;
                let allowed = (b as f64 * (1.0 + cfg.max_op_regress)).floor() as u64;
                if c > allowed.max(b) {
                    report.failures.push(format!(
                        "{what}: {field} regressed {b} -> {c} (allowed <= {})",
                        allowed.max(b)
                    ));
                } else if c < b {
                    report.warnings.push(format!(
                        "{what}: {field} improved {b} -> {c} — refresh the baseline"
                    ));
                }
            }
        }
    }

    // optimizer quality: domination and estimate drift, on both documents
    // (the committed baseline must satisfy its own gate, not just the run
    // under test)
    for (doc, what) in [(baseline, "baseline"), (current, "current")] {
        optimizer_gate(doc, what, cfg, &mut report)?;
    }
    Ok(report)
}

/// Identity fields of one `(scale, strategy)` cell of a
/// `BENCH_scale.json` document. These describe *what ran* (instance
/// size, request mix, answers, commit count), so any difference in
/// either direction means the runs are not measuring the same thing —
/// a failure, not a warning.
const SCALE_IDENTITY_FIELDS: [&str; 6] =
    ["customers", "elements", "reads", "writes", "answers_checksum", "final_epoch"];

/// Plan-cache counters of one cell: deterministic costs under the
/// serve-under-lock cache design, gated like [`OP_FIELDS`] (growth past
/// `max_op_regress` fails, improvement warns).
const SCALE_CACHE_FIELDS: [&str; 3] =
    ["plan_cache_hits", "plan_cache_misses", "plan_cache_evictions"];

/// Index a scale document as `target_elements -> strategy -> cell`.
#[allow(clippy::type_complexity)]
fn scale_index<'a>(
    doc: &'a Json,
    what: &str,
) -> Result<BTreeMap<u64, BTreeMap<String, &'a Json>>, String> {
    let mut out = BTreeMap::new();
    let scales = doc
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: missing `scales` array"))?;
    for s in scales {
        let target = require_u64(s, "target_elements", what)?;
        let cells = s
            .get("strategies")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{what}: scale {target} missing `strategies`"))?;
        let mut by_label = BTreeMap::new();
        for c in cells {
            by_label.insert(require_str(c, "strategy", what)?.to_string(), c);
        }
        out.insert(target, by_label);
    }
    Ok(out)
}

/// Diff two `BENCH_scale.json` documents (emitted by `colorist-scale`)
/// under `cfg`.
///
/// Identity fields (customers, elements, reads, writes, answers
/// checksum, final epoch) must match exactly in both directions;
/// plan-cache counters follow the `max_op_regress` rules;
/// `throughput_qps` (lower is worse) and `p99_us` (higher is worse)
/// follow the wall-clock rules and respect [`GateConfig::wall_warn_only`].
/// The `speedup` section is not diffed — worker scaling is a property of
/// the host's core count, not of the code under test.
pub fn compare_scale(
    baseline: &Json,
    current: &Json,
    cfg: &GateConfig,
) -> Result<GateReport, String> {
    for (doc, what) in [(baseline, "baseline"), (current, "current")] {
        let v = require_u64(doc, "schema_version", what)?;
        if v != SCHEMA_VERSION {
            return Err(format!(
                "{what}: schema_version {v} != supported {SCHEMA_VERSION}; \
                 regenerate the document with this build"
            ));
        }
        let bench = require_str(doc, "bench", what)?;
        if bench != "scale" {
            return Err(format!("{what}: bench `{bench}` is not a scale document"));
        }
    }
    let meta_keys =
        ["seed", "backend", "workers", "clients", "rounds", "reads_per_round", "writes_per_round"];
    for key in meta_keys {
        let b = baseline.get(key);
        let c = current.get(key);
        if b != c {
            return Err(format!(
                "meta mismatch on `{key}`: baseline {b:?} vs current {c:?} — \
                 the runs are not comparable"
            ));
        }
    }

    let mut report = GateReport::default();
    let base = scale_index(baseline, "baseline")?;
    let cur = scale_index(current, "current")?;
    for (target, cells) in &base {
        let Some(cur_cells) = cur.get(target) else {
            report.failures.push(format!("scale {target} disappeared from the current run"));
            continue;
        };
        for label in cells.keys() {
            if !cur_cells.contains_key(label) {
                report
                    .failures
                    .push(format!("scale {target}/{label} disappeared from the current run"));
            }
        }
    }
    for (target, cur_cells) in &cur {
        let Some(base_cells) = base.get(target) else {
            report.warnings.push(format!("scale {target} is new (not in the baseline)"));
            continue;
        };
        for (label, cc) in cur_cells {
            let Some(bc) = base_cells.get(label) else {
                report
                    .warnings
                    .push(format!("scale {target}/{label} is new (not in the baseline)"));
                continue;
            };
            let what = format!("scale {target}/{label}");
            for field in SCALE_IDENTITY_FIELDS {
                let b = require_u64(bc, field, &format!("baseline {what}"))?;
                let c = require_u64(cc, field, &format!("current {what}"))?;
                if b != c {
                    report.failures.push(format!(
                        "{what}: identity field {field} changed {b} -> {c} — \
                         the runs did not execute the same workload"
                    ));
                }
            }
            for field in SCALE_CACHE_FIELDS {
                let b = require_u64(bc, field, &format!("baseline {what}"))?;
                let c = require_u64(cc, field, &format!("current {what}"))?;
                let allowed = (b as f64 * (1.0 + cfg.max_op_regress)).floor() as u64;
                // hits shrinking is the regression; misses/evictions growing is
                if field == "plan_cache_hits" {
                    if c < b {
                        report.failures.push(format!("{what}: {field} regressed {b} -> {c}"));
                    } else if c > b {
                        report.warnings.push(format!(
                            "{what}: {field} improved {b} -> {c} — refresh the baseline"
                        ));
                    }
                } else if c > allowed.max(b) {
                    report.failures.push(format!(
                        "{what}: {field} regressed {b} -> {c} (allowed <= {})",
                        allowed.max(b)
                    ));
                } else if c < b {
                    report.warnings.push(format!(
                        "{what}: {field} improved {b} -> {c} — refresh the baseline"
                    ));
                }
            }
            // machine-dependent throughput/latency: wall-clock rules
            let pairs = [("throughput_qps", false), ("p99_us", true)];
            for (field, higher_is_worse) in pairs {
                let b = bc.get(field).and_then(Json::as_f64);
                let c = cc.get(field).and_then(Json::as_f64);
                let (Some(b), Some(c)) = (b, c) else { continue };
                if b <= 0.0 {
                    continue;
                }
                let regressed = if higher_is_worse {
                    c > b * (1.0 + cfg.max_wall_regress)
                } else {
                    c < b / (1.0 + cfg.max_wall_regress)
                };
                if regressed {
                    let msg = format!(
                        "{what}: {field} regressed {b:.1} -> {c:.1} (allowed ±{:.0}%)",
                        cfg.max_wall_regress * 100.0
                    );
                    if cfg.wall_warn_only {
                        report.warnings.push(format!("{msg} [wall-warn-only]"));
                    } else {
                        report.failures.push(msg);
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Check one document's optimizer-quality invariants (schema v4):
///
/// * **domination** — on every query, the measured gate sum
///   (`elements_scanned + join_probes + bytes_touched`) under cost-based
///   planning must not exceed the heuristic twin's `heur_*` sum;
/// * **drift** — where a query records estimates (`est_*`), the q-error
///   between estimated and measured gate sums must stay within
///   [`GateConfig::q_error_budget`].
fn optimizer_gate(
    doc: &Json,
    what: &str,
    cfg: &GateConfig,
    report: &mut GateReport,
) -> Result<(), String> {
    for (label, queries) in index(doc, what)? {
        for (name, q) in queries {
            let ctx = format!("{what} {label}/{name}");
            let measured: u64 = ["elements_scanned", "join_probes", "bytes_touched"]
                .iter()
                .map(|f| require_u64(q, f, &ctx))
                .sum::<Result<u64, _>>()?;
            let heuristic: u64 = ["heur_scanned", "heur_probes", "heur_bytes"]
                .iter()
                .map(|f| require_u64(q, f, &ctx))
                .sum::<Result<u64, _>>()?;
            if measured > heuristic {
                report.failures.push(format!(
                    "{ctx}: optimized gate sum {measured} exceeds heuristic {heuristic} \
                     — the cost-based plan lost to the heuristic one"
                ));
            }
            if q.get("est_scanned").is_some() {
                let est: u64 = ["est_scanned", "est_probes", "est_bytes"]
                    .iter()
                    .map(|f| require_u64(q, f, &ctx))
                    .sum::<Result<u64, _>>()?;
                let q_err = colorist_query::q_error(est as f64, measured as f64);
                if q_err > cfg.q_error_budget {
                    report.failures.push(format!(
                        "{ctx}: estimate drift q-error {q_err:.2} exceeds budget {:.2} \
                         (estimated gate sum {est}, measured {measured})",
                        cfg.q_error_budget
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Validate the shape of a chrome-trace document emitted by `--trace`:
/// a `traceEvents` array whose `X` events carry `name`/`cat`/`pid`/`tid`,
/// non-negative `ts`/`dur`, unique `args.id`, whose `args.parent`
/// references an existing span on the same thread that contains the child's
/// interval (with a small µs-rounding slack), and whose counters are
/// restricted to the per-category whitelist (e.g. only `op` and `query`
/// spans may carry `index_lookups`/`elements_skipped`) with non-negative
/// integer values.
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace: missing `traceEvents` array")?;
    // (id -> (tid, start, end)); slack for the ns -> µs {:.3} rounding
    let mut spans: BTreeMap<u64, (u64, f64, f64)> = BTreeMap::new();
    let mut xs = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = require_str(e, "ph", &format!("trace event {i}"))?;
        for key in ["name", "cat"] {
            if ph == "X" {
                require_str(e, key, &format!("trace event {i}"))?;
            }
        }
        require_u64(e, "pid", &format!("trace event {i}"))?;
        let tid = require_u64(e, "tid", &format!("trace event {i}"))?;
        if ph != "X" {
            continue;
        }
        xs += 1;
        let ts = e.get("ts").and_then(Json::as_f64).ok_or(format!("trace event {i}: no ts"))?;
        let dur = e.get("dur").and_then(Json::as_f64).ok_or(format!("trace event {i}: no dur"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("trace event {i}: negative ts/dur"));
        }
        let args = e.get("args").ok_or(format!("trace event {i}: no args"))?;
        let id = require_u64(args, "id", &format!("trace event {i} args"))?;
        if spans.insert(id, (tid, ts, ts + dur)).is_some() {
            return Err(format!("trace: duplicate span id {id}"));
        }
        // counter keys are cat-scoped: an `op` span may not carry a
        // `query`-level counter (or a typo'd one), and every counter must
        // be a non-negative integer
        let cat = e.get("cat").and_then(Json::as_str).expect("checked above");
        if let Some((_, allowed)) = SPAN_COUNTERS.iter().find(|(c, _)| *c == cat) {
            let pairs = args.as_obj().ok_or(format!("trace event {i}: args not an object"))?;
            for (key, value) in pairs {
                if key == "id" || key == "parent" {
                    continue;
                }
                if !allowed.contains(&key.as_str()) {
                    return Err(format!(
                        "trace: span {id} (cat {cat}) carries unknown counter `{key}`"
                    ));
                }
                if value.as_u64().is_none() {
                    return Err(format!(
                        "trace: span {id} counter `{key}` is not a non-negative integer"
                    ));
                }
            }
        }
    }
    if xs == 0 {
        return Err("trace: no X (complete) events".to_string());
    }
    const SLACK: f64 = 0.01; // µs
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = e.get("args").expect("checked above");
        let Some(parent) = args.get("parent").and_then(Json::as_u64) else { continue };
        let id = args.get("id").and_then(Json::as_u64).expect("checked above");
        let &(ctid, cs, ce) = spans.get(&id).expect("indexed above");
        let Some(&(ptid, ps, pe)) = spans.get(&parent) else {
            return Err(format!("trace: span {id} has unknown parent {parent}"));
        };
        if ptid != ctid {
            return Err(format!("trace: span {id} and parent {parent} on different threads"));
        }
        if cs + SLACK < ps || ce > pe + SLACK {
            return Err(format!(
                "trace: span {id} [{cs}, {ce}] escapes parent {parent} [{ps}, {pe}]"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{bench_summary_json, SummaryMeta};
    use colorist_core::Strategy;
    use colorist_datagen::ScaleProfile;
    use colorist_er::{catalog, ErGraph};
    use colorist_workload::{suite, tpcw};

    fn small_summary() -> String {
        let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
        let w = tpcw::workload(&g);
        let profile = ScaleProfile::tpcw(&g, 20);
        let results = suite::run_suite(&g, &[Strategy::Af, Strategy::Dr], &w, &profile, 7)
            .expect("suite runs");
        let meta = SummaryMeta {
            bench: "gate-test",
            scale: 20,
            seed: 7,
            threads: 1,
            backend: "mem",
            pool_bytes: 0,
            serial_wall: None,
        };
        bench_summary_json(&meta, &results)
    }

    #[test]
    fn identical_documents_pass() {
        let j = small_summary();
        let doc = Json::parse(&j).expect("summary parses");
        let report = compare(&doc, &doc, &GateConfig::default()).expect("comparable");
        assert!(report.pass(), "{:?}", report.failures);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn injected_double_op_count_fails() {
        let j = small_summary();
        let base = Json::parse(&j).expect("parses");
        // double every structural_joins count in the current document
        let mut cur = base.clone();
        fn double(j: &mut Json) {
            match j {
                Json::Obj(m) => {
                    for (k, v) in m.iter_mut() {
                        if k == "structural_joins" {
                            if let Json::Num(n) = v {
                                *n *= 2.0;
                            }
                        } else {
                            double(v);
                        }
                    }
                }
                Json::Arr(v) => v.iter_mut().for_each(double),
                _ => {}
            }
        }
        double(&mut cur);
        let report = compare(&base, &cur, &GateConfig::default()).expect("comparable");
        assert!(!report.pass());
        assert!(
            report.failures.iter().any(|f| f.contains("structural_joins regressed")),
            "{:?}",
            report.failures
        );
        // and the reverse direction is a warning, not a failure
        let rev = compare(&cur, &base, &GateConfig::default()).expect("comparable");
        assert!(rev.pass(), "{:?}", rev.failures);
        assert!(rev.warnings.iter().any(|w| w.contains("improved")), "{:?}", rev.warnings);
    }

    #[test]
    fn optimizer_gate_rejects_domination_and_drift_violations() {
        let j = small_summary();
        let base = Json::parse(&j).expect("parses");
        // the real run passes its own optimizer gate
        let clean = compare(&base, &base, &GateConfig::default()).expect("comparable");
        assert!(clean.pass(), "{:?}", clean.failures);

        // shrink every heur_* counter to zero: the measured counters now
        // exceed the heuristic twin → domination failure
        fn patch(j: &mut Json, key: &str, value: f64) {
            match j {
                Json::Obj(m) => {
                    for (k, v) in m.iter_mut() {
                        if k == key {
                            *v = Json::Num(value);
                        } else {
                            patch(v, key, value);
                        }
                    }
                }
                Json::Arr(v) => v.iter_mut().for_each(|x| patch(x, key, value)),
                _ => {}
            }
        }
        let mut lost = base.clone();
        for key in ["heur_scanned", "heur_probes", "heur_bytes"] {
            patch(&mut lost, key, 0.0);
        }
        let report = compare(&lost, &lost, &GateConfig::default()).expect("comparable");
        assert!(
            report.failures.iter().any(|f| f.contains("exceeds heuristic")),
            "{:?}",
            report.failures
        );

        // inflate every estimate far past the measured gate sum → the
        // q-error drift gate trips
        let mut drifted = base.clone();
        patch(&mut drifted, "est_scanned", 1e12);
        let report = compare(&drifted, &drifted, &GateConfig::default()).expect("comparable");
        assert!(
            report.failures.iter().any(|f| f.contains("estimate drift")),
            "{:?}",
            report.failures
        );
        // a generous budget accepts the same drift
        let lax = GateConfig { q_error_budget: f64::INFINITY, ..GateConfig::default() };
        let report = compare(&drifted, &drifted, &lax).expect("comparable");
        assert!(!report.failures.iter().any(|f| f.contains("estimate drift")));
    }

    #[test]
    fn wall_regression_respects_warn_only() {
        let j = small_summary();
        let base = Json::parse(&j).expect("parses");
        let mut cur = base.clone();
        if let Json::Obj(m) = &mut cur {
            for (k, v) in m.iter_mut() {
                if k == "suite_wall_ms" {
                    if let Json::Num(n) = v {
                        *n = *n * 10.0 + 1000.0;
                    }
                }
            }
        }
        let hard = compare(&base, &cur, &GateConfig::default()).expect("comparable");
        assert!(!hard.pass());
        let soft =
            compare(&base, &cur, &GateConfig { wall_warn_only: true, ..GateConfig::default() })
                .expect("comparable");
        assert!(soft.pass());
        assert!(soft.warnings.iter().any(|w| w.contains("wall-warn-only")), "{:?}", soft.warnings);
    }

    #[test]
    fn meta_mismatch_is_a_usage_error() {
        let j = small_summary();
        let base = Json::parse(&j).expect("parses");
        let mut cur = base.clone();
        if let Json::Obj(m) = &mut cur {
            for (k, v) in m.iter_mut() {
                if k == "seed" {
                    *v = Json::Num(999.0);
                }
            }
        }
        assert!(compare(&base, &cur, &GateConfig::default()).is_err());
        // wrong schema version too
        let mut old = base.clone();
        if let Json::Obj(m) = &mut old {
            for (k, v) in m.iter_mut() {
                if k == "schema_version" {
                    *v = Json::Num(1.0);
                }
            }
        }
        assert!(compare(&old, &base, &GateConfig::default()).is_err());
    }

    fn small_scale_doc() -> Json {
        let text = format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "bench": "scale", "seed": 42,
            "backend": "mem", "workers": 2, "clients": 2, "rounds": 4,
            "reads_per_round": 16, "writes_per_round": 2,
            "scales": [
              {{"target_elements": 1000, "strategies": [
                {{"strategy": "DR", "customers": 70, "elements": 1006,
                  "reads": 64, "writes": 8, "answers_checksum": 12345,
                  "final_epoch": 8, "plan_cache_hits": 60,
                  "plan_cache_misses": 12, "plan_cache_evictions": 0,
                  "throughput_qps": 1000.0, "p50_us": 10.0, "p99_us": 50.0,
                  "wall_ms": 6.4}}
              ]}}
            ],
            "speedup": {{"target_elements": 1000, "strategy": "DR",
              "workers_1_qps": 900.0, "workers_n_qps": 1100.0,
              "workers_n": 2, "speedup": 1.22}}}}"#
        );
        Json::parse(&text).expect("scale doc parses")
    }

    fn patch_num(j: &mut Json, key: &str, value: f64) {
        match j {
            Json::Obj(m) => {
                for (k, v) in m.iter_mut() {
                    if k == key {
                        *v = Json::Num(value);
                    } else {
                        patch_num(v, key, value);
                    }
                }
            }
            Json::Arr(v) => v.iter_mut().for_each(|x| patch_num(x, key, value)),
            _ => {}
        }
    }

    #[test]
    fn scale_gate_passes_identical_and_fails_identity_drift() {
        let doc = small_scale_doc();
        let clean = compare_scale(&doc, &doc, &GateConfig::default()).expect("comparable");
        assert!(clean.pass(), "{:?}", clean.failures);
        assert!(clean.warnings.is_empty(), "{:?}", clean.warnings);

        // identity fields fail in BOTH directions: a changed answers
        // checksum means the runs computed different answers
        let mut cur = doc.clone();
        patch_num(&mut cur, "answers_checksum", 99999.0);
        for (b, c) in [(&doc, &cur), (&cur, &doc)] {
            let report = compare_scale(b, c, &GateConfig::default()).expect("comparable");
            assert!(
                report.failures.iter().any(|f| f.contains("answers_checksum")),
                "{:?}",
                report.failures
            );
        }
    }

    #[test]
    fn scale_gate_op_rules_for_cache_and_wall_rules_for_throughput() {
        let doc = small_scale_doc();
        // more misses = regression; fewer = warning
        let mut missy = doc.clone();
        patch_num(&mut missy, "plan_cache_misses", 40.0);
        let report = compare_scale(&doc, &missy, &GateConfig::default()).expect("comparable");
        assert!(
            report.failures.iter().any(|f| f.contains("plan_cache_misses regressed")),
            "{:?}",
            report.failures
        );
        let rev = compare_scale(&missy, &doc, &GateConfig::default()).expect("comparable");
        assert!(rev.pass(), "{:?}", rev.failures);
        assert!(rev.warnings.iter().any(|w| w.contains("improved")), "{:?}", rev.warnings);

        // fewer hits is the hit-count regression direction
        let mut cold = doc.clone();
        patch_num(&mut cold, "plan_cache_hits", 1.0);
        let report = compare_scale(&doc, &cold, &GateConfig::default()).expect("comparable");
        assert!(
            report.failures.iter().any(|f| f.contains("plan_cache_hits regressed")),
            "{:?}",
            report.failures
        );

        // throughput collapse follows the wall rules incl. warn-only
        let mut slow = doc.clone();
        patch_num(&mut slow, "throughput_qps", 100.0);
        let hard = compare_scale(&doc, &slow, &GateConfig::default()).expect("comparable");
        assert!(!hard.pass());
        let soft = compare_scale(
            &doc,
            &slow,
            &GateConfig { wall_warn_only: true, ..GateConfig::default() },
        )
        .expect("comparable");
        assert!(soft.pass(), "{:?}", soft.failures);
        assert!(soft.warnings.iter().any(|w| w.contains("wall-warn-only")), "{:?}", soft.warnings);

        // meta mismatch is a usage error, and a plain bench summary is not
        // a scale document
        let mut other = doc.clone();
        patch_num(&mut other, "workers", 16.0);
        assert!(compare_scale(&doc, &other, &GateConfig::default()).is_err());
        let summary = Json::parse(&small_summary()).expect("parses");
        assert!(compare_scale(&summary, &summary, &GateConfig::default()).is_err());
    }

    #[test]
    fn validates_a_real_trace_and_rejects_shapes() {
        colorist_trace::collect_start();
        {
            let mut outer = colorist_trace::span("t", "outer");
            outer.counter("k", 1);
            let _inner = colorist_trace::span("t", "inner");
        }
        let trace = colorist_trace::collect_stop();
        let doc = Json::parse(&colorist_trace::chrome_trace_json(&trace)).expect("parses");
        validate_trace(&doc).expect("well-formed trace validates");

        assert!(validate_trace(&Json::parse("{}").unwrap()).is_err());
        let orphan = r#"{"traceEvents": [
            {"ph": "X", "name": "a", "cat": "t", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "parent": 99}}
        ]}"#;
        assert!(validate_trace(&Json::parse(orphan).unwrap()).is_err());
    }

    #[test]
    fn rejects_unknown_and_non_integer_span_counters() {
        // a known counter on a known category validates
        let ok = r#"{"traceEvents": [
            {"ph": "X", "name": "scan", "cat": "op", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "index_lookups": 3,
             "elements_skipped": 40}}
        ]}"#;
        validate_trace(&Json::parse(ok).unwrap()).expect("whitelisted counters pass");
        // an unknown key on an `op` span is rejected
        let unknown = r#"{"traceEvents": [
            {"ph": "X", "name": "scan", "cat": "op", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "index_lookup": 3}}
        ]}"#;
        let err = validate_trace(&Json::parse(unknown).unwrap()).unwrap_err();
        assert!(err.contains("unknown counter"), "{err}");
        // a query-level counter is not valid on an `op` span
        let wrong_cat = r#"{"traceEvents": [
            {"ph": "X", "name": "scan", "cat": "op", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "results": 3}}
        ]}"#;
        assert!(validate_trace(&Json::parse(wrong_cat).unwrap()).is_err());
        // counters must be non-negative integers
        let float = r#"{"traceEvents": [
            {"ph": "X", "name": "q", "cat": "query", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "results": 1.5}}
        ]}"#;
        let err = validate_trace(&Json::parse(float).unwrap()).unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
        // the batch/snapshot categories carry exactly their own counters
        let mutation = r#"{"traceEvents": [
            {"ph": "X", "name": "apply", "cat": "batch", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "batch_ops": 7}},
            {"ph": "X", "name": "query:q1", "cat": "snapshot", "pid": 1,
             "tid": 0, "ts": 2.0, "dur": 1.0,
             "args": {"id": 1, "snapshot_reads": 1}}
        ]}"#;
        validate_trace(&Json::parse(mutation).unwrap()).expect("batch/snapshot counters pass");
        let crossed = r#"{"traceEvents": [
            {"ph": "X", "name": "apply", "cat": "batch", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0, "args": {"id": 0, "snapshot_reads": 1}}
        ]}"#;
        assert!(validate_trace(&Json::parse(crossed).unwrap()).is_err());
    }
}

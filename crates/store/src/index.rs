//! The persistent attribute value index (DESIGN.md §10).
//!
//! TIMBER never walks a document linearly: element lists arrive from index
//! lookups, so query cost tracks the *selected* data, not the stored data.
//! This module gives the executor the same property. [`ValueIndex`] is one
//! flat vector of [`IndexEntry`] records — `(node, attr, key, element)` —
//! sorted lexicographically, covering every attribute of every **canonical**
//! element (copies always carry the same attribute values as their
//! canonical, and extents list canonicals only, so indexing canonicals is
//! complete).
//!
//! Keying by element rather than occurrence makes the index invariant under
//! the operations that churn occurrence ids: `relabel_color` remaps every
//! `OccId` after a structural update without touching this index. The
//! maintenance points are attribute writes, element inserts, and logical
//! deletes, all of which funnel through `Database::write_attr` /
//! `insert_element` / `remove_element_occurrences` — a delete retracts the
//! instance's postings along with its extent entry and statistics
//! contribution, so index probes never see ghost elements that scans no
//! longer return.
//!
//! Lookups are two `partition_point` binary searches (equality probes) or a
//! bounded group walk (range predicates, which must compare stored keys to
//! the constant in *value* order — see `Interner::key_value_cmp` — because
//! `ValueKey`'s derived order interleaves variants differently than
//! `Value::total_cmp`).

use crate::database::{Element, ElementId};
use crate::value::{Interner, Value, ValueKey};
use colorist_er::NodeId;

/// One posting of the value index: canonical `element` (of ER type `node`)
/// has `key` as the join key of its attribute `attr`.
///
/// The derived lexicographic order — node, then attribute, then key, then
/// element — is the index's sort order, so an entry doubles as its own
/// binary-search probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexEntry {
    /// The ER node type (extents are per-node, and so are index ranges).
    pub node: NodeId,
    /// Attribute position in the element's stored attribute vector
    /// (declared attributes first, then idref appendix values).
    pub attr: u32,
    /// The `Copy` join key of the stored value (text interned).
    pub key: ValueKey,
    /// The canonical element holding the value.
    pub element: ElementId,
}

/// Sorted per-`(node, attr)` value index over canonical elements.
///
/// Built once in `DatabaseBuilder::finish` and maintained by the database's
/// write paths; a maintenance write costs one binary search plus an `O(n)`
/// vector shift, which updates already dwarf with their eager per-color
/// relabel (TIMBER charges index maintenance to update cost the same way).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueIndex {
    entries: Vec<IndexEntry>,
}

impl ValueIndex {
    /// Rebuild an index from already-sorted postings, as the paged storage
    /// loader decodes them (the postings segment stores entries in index
    /// order).
    pub(crate) fn from_entries(entries: Vec<IndexEntry>) -> ValueIndex {
        debug_assert!(entries.windows(2).all(|w| w[0] <= w[1]), "postings must arrive sorted");
        ValueIndex { entries }
    }

    /// Index every attribute of every canonical element. `interner` must
    /// already contain all stored text (it does by the time
    /// `DatabaseBuilder::finish` builds the index).
    pub fn build(elements: &[Element], interner: &Interner) -> ValueIndex {
        let mut entries = Vec::new();
        for (i, el) in elements.iter().enumerate() {
            let id = ElementId(i as u32);
            if el.canonical != id {
                continue; // copies mirror their canonical's attributes
            }
            for (a, v) in el.attrs.iter().enumerate() {
                entries.push(IndexEntry {
                    node: el.node,
                    attr: a as u32,
                    key: interner.key(v),
                    element: id,
                });
            }
        }
        entries.sort_unstable();
        ValueIndex { entries }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Every posting, in sort order — the raw material of the S008
    /// integrity audit (`Database::check_integrity`).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Whether the index holds no postings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All postings for `(node, attr)`, sorted by key then element.
    pub fn of_attr(&self, node: NodeId, attr: usize) -> &[IndexEntry] {
        let attr = attr as u32;
        let lo = self.entries.partition_point(|e| (e.node, e.attr) < (node, attr));
        let hi = self.entries.partition_point(|e| (e.node, e.attr) <= (node, attr));
        &self.entries[lo..hi]
    }

    /// The postings matching an equality probe, sorted by element (which is
    /// extent order — canonical ids ascend within a node's extent).
    pub fn matching(&self, node: NodeId, attr: usize, key: ValueKey) -> &[IndexEntry] {
        let attr = attr as u32;
        let lo = self.entries.partition_point(|e| (e.node, e.attr, e.key) < (node, attr, key));
        let hi = self.entries.partition_point(|e| (e.node, e.attr, e.key) <= (node, attr, key));
        &self.entries[lo..hi]
    }

    /// Walk the distinct-key groups of `(node, attr)` in key order — the
    /// range-predicate path: the caller orders each group's key against the
    /// comparison constant (`Interner::key_value_cmp`) and takes whole
    /// groups, paying one comparison per distinct stored value instead of
    /// one per element.
    pub fn groups(&self, node: NodeId, attr: usize) -> Groups<'_> {
        Groups { rest: self.of_attr(node, attr) }
    }

    /// Add a posting (element insert maintenance). No-op if the exact
    /// posting is already present.
    pub fn insert(&mut self, entry: IndexEntry) {
        if let Err(pos) = self.entries.binary_search(&entry) {
            self.entries.insert(pos, entry);
        }
    }

    /// Drop a posting (the old-value half of an attribute overwrite).
    /// No-op if absent.
    pub fn remove(&mut self, entry: IndexEntry) {
        if let Ok(pos) = self.entries.binary_search(&entry) {
            self.entries.remove(pos);
        }
    }

    /// Attribute-overwrite maintenance: move `element`'s posting for
    /// `(node, attr)` from `old_key` to `new_key`.
    pub fn reindex(
        &mut self,
        node: NodeId,
        attr: usize,
        element: ElementId,
        old_key: ValueKey,
        new_key: ValueKey,
    ) {
        if old_key == new_key {
            return;
        }
        self.remove(IndexEntry { node, attr: attr as u32, key: old_key, element });
        self.insert(IndexEntry { node, attr: attr as u32, key: new_key, element });
    }

    /// Linear-scan reference lookup (test oracle for the binary-search
    /// paths): elements of `node` whose `attr` value keys equal `key(v)`.
    pub fn matching_linear(
        &self,
        interner: &Interner,
        node: NodeId,
        attr: usize,
        v: &Value,
    ) -> Vec<ElementId> {
        let key = interner.try_key(v);
        self.entries
            .iter()
            .filter(|e| e.node == node && e.attr == attr as u32 && Some(e.key) == key)
            .map(|e| e.element)
            .collect()
    }
}

/// Iterator over the distinct-key groups of one `(node, attr)` index range
/// (see [`ValueIndex::groups`]).
#[derive(Debug)]
pub struct Groups<'a> {
    rest: &'a [IndexEntry],
}

impl<'a> Iterator for Groups<'a> {
    type Item = (ValueKey, &'a [IndexEntry]);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.rest.first()?;
        let n = self.rest.iter().take_while(|e| e.key == first.key).count();
        let (group, rest) = self.rest.split_at(n);
        self.rest = rest;
        Some((first.key, group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{Database, DatabaseBuilder};
    use colorist_er::{Attribute, ErDiagram, ErGraph};
    use colorist_mct::ColorId;

    /// Two-entity database with mixed int/text attributes and a copy, so
    /// the canonical-only rule is exercised.
    fn setup() -> (ErGraph, Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id"), Attribute::text("tag")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = s.placements_of_in_color(a, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s, g.node_count());
        for i in 0..6i64 {
            let e = bd.add_canonical(a, vec![Value::Int(i), Value::Text(format!("tag_{}", i % 3))]);
            bd.add_occurrence(c, e, pa, None);
        }
        for i in 0..4i64 {
            let e = bd.add_canonical(b, vec![Value::Int(i % 2)]);
            bd.add_occurrence(c, e, pb, None);
        }
        // one copy: must not add postings
        let first_a = ElementId(0);
        bd.add_copy(first_a);
        (g, bd.finish())
    }

    #[test]
    fn build_covers_canonicals_only_and_probes_match_linear() {
        let (g, db) = setup();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let idx = db.value_index();
        // 6 a-elements × 2 attrs + 4 b-elements × 1 attr; the copy adds none
        assert_eq!(idx.len(), 16);
        for (node, attr, v) in [
            (a, 0, Value::Int(3)),
            (a, 1, Value::Text("tag_1".into())),
            (b, 0, Value::Int(1)),
            (b, 0, Value::Int(9)), // matches nothing
            (a, 1, Value::Text("never-stored".into())),
        ] {
            let fast: Vec<ElementId> = match db.try_join_key(&v) {
                Some(k) => idx.matching(node, attr, k).iter().map(|e| e.element).collect(),
                None => Vec::new(),
            };
            assert_eq!(fast, idx.matching_linear(db.interner(), node, attr, &v), "{v}");
        }
        // probe results agree with a predicate walk over the extent
        let hits: Vec<ElementId> = idx
            .matching(a, 1, db.join_key(&Value::Text("tag_2".into())))
            .iter()
            .map(|e| e.element)
            .collect();
        let walked: Vec<ElementId> = db
            .extent(a)
            .iter()
            .copied()
            .filter(|&e| db.element(e).attrs[1].matches(&Value::Text("tag_2".into())))
            .collect();
        assert_eq!(hits, walked);
    }

    #[test]
    fn groups_walk_in_key_order_and_partition_the_range() {
        let (g, db) = setup();
        let a = g.node_by_name("a").unwrap();
        let idx = db.value_index();
        let mut total = 0;
        let mut prev: Option<ValueKey> = None;
        for (key, group) in idx.groups(a, 0) {
            assert!(prev.is_none_or(|p| p < key), "keys ascend");
            assert!(group.iter().all(|e| e.key == key));
            total += group.len();
            prev = Some(key);
        }
        assert_eq!(total, idx.of_attr(a, 0).len());
        assert_eq!(idx.groups(a, 0).count(), 6, "ids are unique");
        assert_eq!(idx.groups(a, 1).count(), 3, "three tag values");
    }

    #[test]
    fn write_attr_moves_postings_and_insert_element_adds_them() {
        let (g, db) = setup();
        let mut db = db;
        let a = g.node_by_name("a").unwrap();
        let e0 = db.extent(a)[0];
        let old_hits = db.value_index().matching(a, 1, db.join_key(&Value::Text("tag_0".into())));
        assert!(old_hits.iter().any(|en| en.element == e0));
        db.write_attr(e0, 1, Value::Text("fresh".into()));
        let idx = db.value_index();
        assert!(
            !idx.matching(a, 1, db.join_key(&Value::Text("tag_0".into())))
                .iter()
                .any(|en| en.element == e0),
            "old posting removed"
        );
        let fresh = idx.matching(a, 1, db.join_key(&Value::Text("fresh".into())));
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].element, e0);
        assert_eq!(idx.len(), 16, "a move keeps the posting count");

        let e_new = db.insert_element(a, vec![Value::Int(99), Value::Text("tag_0".into())]);
        let idx = db.value_index();
        assert_eq!(idx.len(), 18, "two new postings");
        assert!(idx
            .matching(a, 0, db.join_key(&Value::Int(99)))
            .iter()
            .any(|en| en.element == e_new));
    }

    #[test]
    fn writes_to_copies_leave_the_index_alone() {
        let (g, db) = setup();
        let mut db = db;
        let a = g.node_by_name("a").unwrap();
        let copy = ElementId(db.element_count() as u32 - 1);
        assert!(db.element(copy).is_copy(copy), "setup appended a copy last");
        let before = db.value_index().len();
        db.write_attr(copy, 1, Value::Text("copy-only".into()));
        assert_eq!(db.value_index().len(), before);
        assert!(
            db.value_index()
                .matching(a, 1, db.join_key(&Value::Text("copy-only".into())))
                .is_empty(),
            "copies contribute no postings"
        );
    }
}

//! Statistics catalog — the estimation substrate of the cost-based planner
//! (DESIGN.md §11).
//!
//! Not to be confused with [`crate::stats`]: **this** module is the
//! optimizer's catalog, maintained incrementally at the mutation choke
//! points and consulted at plan time, while `stats` is the one-shot
//! Table-1 *storage accounting* (elements, attributes, content nodes,
//! data bytes) computed for reporting only.
//!
//! Three families of summaries, all deterministic functions of the stored
//! data:
//!
//! * **Column statistics** — per `(node, attr)`: row count, distinct-key
//!   count, and an equi-depth histogram over the attribute's join keys,
//!   computed from the persistent value index (the index's distinct-key
//!   groups are exactly the histogram's raw material). Bucket boundaries
//!   always align with group boundaries, so one stored key never spans two
//!   buckets — which bounds every estimate's absolute error by the deepest
//!   bucket (see [`Statistics::max_bucket_rows`], the bound the property
//!   tests assert).
//! * **Extent cardinalities** — canonical instances per ER node type.
//! * **Parent-fanout summaries** — occurrence counts per schema placement
//!   (the denominator/numerator pairs behind average child fanout along a
//!   placement edge), refreshed whenever a color is relabelled.
//!
//! Maintenance rides the same choke points as the value index: column
//! statistics refresh in `Database::write_attr` and
//! `Database::insert_element`, placement counts in
//! `Database::relabel_color`. A refresh recomputes the affected column from
//! the index, so the catalog is always byte-identical to a from-scratch
//! build — an invariant the tests pin.
//!
//! Histogram keys are ordered by **value order** (the order
//! `Interner::key_value_cmp` answers range predicates in), not by
//! [`ValueKey`]'s derived `Ord`, whose variant interleaving differs; see
//! [`key_order`].

use crate::index::ValueIndex;
use crate::value::{Interner, ValueKey};
use colorist_er::NodeId;
use colorist_mct::PlacementId;
use std::cmp::Ordering;

/// Number of equi-depth buckets per column histogram. Small enough that a
/// catalog refresh is a rounding error next to the index maintenance it
/// rides on; the estimation error bound is one bucket's depth, i.e. about
/// `rows / HISTOGRAM_BUCKETS` plus the largest single-key group.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Predicate comparison kinds the estimator understands (mirrors the query
/// layer's operators without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// Equality probe.
    Eq,
    /// Strictly-less range.
    Lt,
    /// Strictly-greater range.
    Gt,
}

/// An estimated fraction of rows, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selectivity(pub f64);

/// An estimated row count (fractional: estimates are expectations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cardinality(pub f64);

impl Cardinality {
    /// Round to a whole-row count.
    pub fn rows(self) -> u64 {
        self.0.max(0.0).round() as u64
    }
}

/// One equi-depth histogram bucket: a contiguous run of distinct-key groups
/// in value order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest key in the bucket (value order).
    pub lo: ValueKey,
    /// Largest key in the bucket (value order).
    pub hi: ValueKey,
    /// Rows (postings) in the bucket.
    pub rows: u64,
    /// Distinct keys in the bucket.
    pub distinct: u64,
}

/// Statistics of one `(node, attr)` column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColumnStats {
    /// Total postings (canonical elements carrying the attribute).
    pub rows: u64,
    /// Distinct stored join keys.
    pub distinct: u64,
    /// Equi-depth buckets in value order (empty iff `rows == 0`).
    pub buckets: Vec<Bucket>,
}

impl ColumnStats {
    /// Build from the column's index postings (sorted by key in the index's
    /// derived order; regrouped and re-sorted into value order here).
    fn build(postings: &[crate::index::IndexEntry], interner: &Interner) -> ColumnStats {
        // distinct-key groups (postings arrive grouped by derived key order)
        let mut groups: Vec<(ValueKey, u64)> = Vec::new();
        for e in postings {
            match groups.last_mut() {
                Some((k, n)) if *k == e.key => *n += 1,
                _ => groups.push((e.key, 1)),
            }
        }
        groups.sort_by(|a, b| key_order(interner, a.0, b.0));
        let rows: u64 = groups.iter().map(|g| g.1).sum();
        let distinct = groups.len() as u64;
        let target = rows.div_ceil(HISTOGRAM_BUCKETS as u64).max(1);
        let mut buckets = Vec::new();
        let mut cur: Option<Bucket> = None;
        for &(k, n) in &groups {
            match cur.as_mut() {
                Some(b) => {
                    b.hi = k;
                    b.rows += n;
                    b.distinct += 1;
                }
                None => cur = Some(Bucket { lo: k, hi: k, rows: n, distinct: 1 }),
            }
            if cur.as_ref().is_some_and(|b| b.rows >= target) {
                buckets.push(cur.take().expect("bucket present"));
            }
        }
        buckets.extend(cur);
        ColumnStats { rows, distinct, buckets }
    }

    /// Depth of the deepest bucket — the absolute error bound of every
    /// estimate over this column (a distinct key never spans buckets, so a
    /// range misestimates at most the one straddling bucket, and an
    /// equality probe at most the bucket holding its key).
    pub fn max_bucket_rows(&self) -> u64 {
        self.buckets.iter().map(|b| b.rows).max().unwrap_or(0)
    }

    /// Estimated matching rows for a predicate, given the ordering of each
    /// stored key against the comparison constant (`cmp(key)` must return
    /// `key.cmp(constant)` in value order, as `Interner::key_value_cmp`
    /// does).
    pub fn estimate(
        &self,
        kind: CmpKind,
        mut cmp: impl FnMut(ValueKey) -> Ordering,
    ) -> Cardinality {
        let mut est = 0.0;
        for b in &self.buckets {
            let (lo, hi) = (cmp(b.lo), cmp(b.hi));
            match kind {
                CmpKind::Eq => {
                    // the bucket contains the constant: uniform over its
                    // distinct keys
                    if lo != Ordering::Greater && hi != Ordering::Less {
                        est += b.rows as f64 / b.distinct.max(1) as f64;
                    }
                }
                CmpKind::Lt => {
                    if hi == Ordering::Less {
                        est += b.rows as f64; // bucket entirely below
                    } else if lo == Ordering::Less {
                        est += b.rows as f64 / 2.0; // straddles: half-bucket
                    }
                }
                CmpKind::Gt => {
                    if lo == Ordering::Greater {
                        est += b.rows as f64;
                    } else if hi == Ordering::Greater {
                        est += b.rows as f64 / 2.0;
                    }
                }
            }
        }
        Cardinality(est)
    }
}

/// The per-database statistics catalog.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    /// `[node][attr]` column statistics.
    columns: Vec<Vec<ColumnStats>>,
    /// Canonical instances per ER node type.
    extent_rows: Vec<u64>,
    /// Occurrences per schema placement (all colors).
    placement_occs: Vec<u64>,
    /// Maintenance generation: bumped by every catalog mutation
    /// (`refresh_column`, `note_insert`, `note_delete`,
    /// `set_placement_occs`). Cached artifacts derived from the catalog —
    /// the prepared-plan cache keys on it (DESIGN.md §15) — are invalidated
    /// by comparing epochs, so a stale plan is re-optimized rather than
    /// served. Not part of the catalog's *content*: equality (and hence
    /// `Database::same_state`) ignores it, because two maintenance
    /// histories that converge to the same summaries are the same catalog.
    epoch: u64,
}

/// Content equality: the summaries, not the maintenance history. Two
/// catalogs reached by different numbers of refreshes (e.g. either order
/// of two commuting batches, or a from-scratch build vs. an incrementally
/// maintained one) compare equal whenever their summaries agree.
impl PartialEq for Statistics {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
            && self.extent_rows == other.extent_rows
            && self.placement_occs == other.placement_occs
    }
}

impl Statistics {
    /// Build every summary from scratch. `arity` gives the stored attribute
    /// count per node (declared attributes plus idref appendix).
    pub fn build(
        node_count: usize,
        arity: impl Fn(usize) -> usize,
        extent_rows: Vec<u64>,
        placement_occs: Vec<u64>,
        index: &ValueIndex,
        interner: &Interner,
    ) -> Statistics {
        let columns = (0..node_count)
            .map(|n| {
                let node = NodeId(n as u32);
                (0..arity(n))
                    .map(|a| ColumnStats::build(index.of_attr(node, a), interner))
                    .collect()
            })
            .collect();
        Statistics { columns, extent_rows, placement_occs, epoch: 0 }
    }

    /// The maintenance generation: how many catalog mutations this
    /// statistics object has absorbed. A fresh [`Statistics::build`] starts
    /// at 0; every `refresh_column` / `note_insert` / `note_delete` /
    /// `set_placement_occs` bumps it. Plan caches key on this.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Recompute one column from the index (attribute-write / element-insert
    /// maintenance). Grows the node's column vector if the attribute is new.
    pub fn refresh_column(
        &mut self,
        node: NodeId,
        attr: usize,
        index: &ValueIndex,
        interner: &Interner,
    ) {
        if self.columns.len() <= node.idx() {
            self.columns.resize(node.idx() + 1, Vec::new());
        }
        let cols = &mut self.columns[node.idx()];
        if cols.len() <= attr {
            cols.resize(attr + 1, ColumnStats::default());
        }
        cols[attr] = ColumnStats::build(index.of_attr(node, attr), interner);
        self.epoch += 1;
    }

    /// Record one new canonical instance (element-insert maintenance).
    pub fn note_insert(&mut self, node: NodeId) {
        if self.extent_rows.len() <= node.idx() {
            self.extent_rows.resize(node.idx() + 1, 0);
        }
        self.extent_rows[node.idx()] += 1;
        self.epoch += 1;
    }

    /// Record one deleted canonical instance (element-delete maintenance) —
    /// the retraction mirror of [`Statistics::note_insert`].
    pub fn note_delete(&mut self, node: NodeId) {
        if let Some(rows) = self.extent_rows.get_mut(node.idx()) {
            *rows = rows.saturating_sub(1);
        }
        self.epoch += 1;
    }

    /// Replace the per-placement occurrence counts (relabel maintenance).
    pub fn set_placement_occs(&mut self, occs: Vec<u64>) {
        self.placement_occs = occs;
        self.epoch += 1;
    }

    /// Canonical instances of an ER node type.
    pub fn extent_rows(&self, node: NodeId) -> u64 {
        self.extent_rows.get(node.idx()).copied().unwrap_or(0)
    }

    /// Statistics of one column, if the node stores that attribute.
    pub fn column(&self, node: NodeId, attr: usize) -> Option<&ColumnStats> {
        self.columns.get(node.idx()).and_then(|c| c.get(attr))
    }

    /// Occurrences instantiating a placement (all colors).
    pub fn placement_occs(&self, p: PlacementId) -> u64 {
        self.placement_occs.get(p.idx()).copied().unwrap_or(0)
    }

    /// Average children at `child` per parent occurrence at `parent` — the
    /// parent-fanout summary (each child occurrence has exactly one parent
    /// occurrence, so the ratio of counts is the mean fanout).
    pub fn fanout(&self, parent: PlacementId, child: PlacementId) -> f64 {
        let p = self.placement_occs(parent);
        if p == 0 {
            return 0.0;
        }
        self.placement_occs(child) as f64 / p as f64
    }

    /// The absolute error bound of predicate estimates on a column (one
    /// bucket's depth; 0 for an unknown column, whose estimate is exactly 0).
    pub fn max_bucket_rows(&self, node: NodeId, attr: usize) -> u64 {
        self.column(node, attr).map_or(0, ColumnStats::max_bucket_rows)
    }

    /// Estimated rows of `node` matching a predicate on `attr`, with
    /// `cmp(key)` ordering each stored key against the comparison constant
    /// in value order.
    pub fn estimate_matches(
        &self,
        node: NodeId,
        attr: usize,
        kind: CmpKind,
        cmp: impl FnMut(ValueKey) -> Ordering,
    ) -> Cardinality {
        self.column(node, attr).map_or(Cardinality(0.0), |c| c.estimate(kind, cmp))
    }

    /// Estimated selectivity (fraction of the column's rows) of a predicate.
    pub fn selectivity(
        &self,
        node: NodeId,
        attr: usize,
        kind: CmpKind,
        cmp: impl FnMut(ValueKey) -> Ordering,
    ) -> Selectivity {
        match self.column(node, attr) {
            Some(c) if c.rows > 0 => {
                Selectivity((c.estimate(kind, cmp).0 / c.rows as f64).clamp(0.0, 1.0))
            }
            _ => Selectivity(0.0),
        }
    }
}

/// Order two stored join keys in **value order** — the order in which
/// `Interner::key_value_cmp` answers range predicates: numeric variants
/// promote to `f64` against one another, text resolves through the symbol
/// table and sorts greatest. This differs from `ValueKey`'s derived `Ord`
/// (all `Num` before all `Bits`, raw bit order among floats), which the
/// index uses for binary-search layout but which does not match value
/// comparisons. Ties (distinct keys comparing equal, impossible for keys of
/// one column) fall back to the derived order so the sort stays total.
pub fn key_order(interner: &Interner, a: ValueKey, b: ValueKey) -> Ordering {
    use ValueKey::*;
    let sem = match (a, b) {
        (Num(x), Num(y)) => x.cmp(&y),
        (Num(x), Bits(y)) => (x as f64).total_cmp(&f64::from_bits(y)),
        (Bits(x), Num(y)) => f64::from_bits(x).total_cmp(&(y as f64)),
        (Bits(x), Bits(y)) => f64::from_bits(x).total_cmp(&f64::from_bits(y)),
        (Sym(x), Sym(y)) => interner.resolve(x).cmp(interner.resolve(y)),
        (Num(_) | Bits(_), Sym(_)) => Ordering::Less,
        (Sym(_), Num(_) | Bits(_)) => Ordering::Greater,
    };
    sem.then_with(|| a.cmp(&b))
}

/// Cost-model crossover between the stack-merge and gallop structural
/// kernels: gallop wins when the driving (small) side's binary searches —
/// about `⌈log₂ large⌉` probes each — are estimated below walking the large
/// side end to end, i.e. `small · ⌈log₂ large⌉ < large`. This replaces the
/// fixed [`crate::join::GALLOP_RATIO`] ratio under cost-model dispatch; the
/// ratio remains the statistics-free fallback (heuristic dispatch).
pub fn gallop_cost_wins(small: usize, large: usize) -> bool {
    small.saturating_mul(log2_ceil(large)) < large
}

/// `⌈log₂ n⌉` (0 for `n ≤ 1`).
fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.saturating_sub(1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexEntry;
    use crate::value::Value;
    use crate::ElementId;

    fn postings(keys: &[ValueKey]) -> Vec<IndexEntry> {
        let node = NodeId(0);
        let mut v: Vec<IndexEntry> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| IndexEntry { node, attr: 0, key, element: ElementId(i as u32) })
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn equi_depth_buckets_align_to_groups() {
        // 64 rows over 8 distinct keys, skewed: key 0 has 57 rows
        let mut keys = vec![ValueKey::Num(0); 57];
        for k in 1..8 {
            keys.push(ValueKey::Num(k));
        }
        let it = Interner::default();
        let c = ColumnStats::build(&postings(&keys), &it);
        assert_eq!(c.rows, 64);
        assert_eq!(c.distinct, 8);
        // the skewed group lands whole in one bucket
        assert!(c.buckets.iter().any(|b| b.rows >= 57));
        let total: u64 = c.buckets.iter().map(|b| b.rows).sum();
        assert_eq!(total, 64);
        let distinct: u64 = c.buckets.iter().map(|b| b.distinct).sum();
        assert_eq!(distinct, 8);
        // buckets are disjoint and ordered
        for w in c.buckets.windows(2) {
            assert_eq!(key_order(&it, w[0].hi, w[1].lo), Ordering::Less);
        }
    }

    #[test]
    fn estimates_within_one_bucket_of_truth() {
        // uniform-ish: 200 rows over 50 keys
        let keys: Vec<ValueKey> = (0..200).map(|i| ValueKey::Num(i % 50)).collect();
        let it = Interner::default();
        let c = ColumnStats::build(&postings(&keys), &it);
        let bound = c.max_bucket_rows() as f64;
        for v in [-1i64, 0, 7, 25, 49, 50, 200] {
            let truth_lt = keys.iter().filter(|k| matches!(k, ValueKey::Num(x) if *x < v)).count();
            let truth_eq = keys.iter().filter(|k| matches!(k, ValueKey::Num(x) if *x == v)).count();
            let cv = Value::Int(v);
            let est_lt = c.estimate(CmpKind::Lt, |k| it.key_value_cmp(k, &cv));
            let est_eq = c.estimate(CmpKind::Eq, |k| it.key_value_cmp(k, &cv));
            assert!((est_lt.0 - truth_lt as f64).abs() <= bound, "lt {v}");
            assert!((est_eq.0 - truth_eq as f64).abs() <= bound, "eq {v}");
        }
    }

    #[test]
    fn value_order_differs_from_derived_order_on_negative_floats() {
        let it = Interner::default();
        let neg = ValueKey::Bits((-2.5f64).to_bits());
        let pos = ValueKey::Bits(2.5f64.to_bits());
        let int = ValueKey::Num(1);
        // derived order: Num < Bits, and negative floats have the high bit
        assert!(int < neg && pos < neg);
        // value order: -2.5 < 1 < 2.5
        assert_eq!(key_order(&it, neg, int), Ordering::Less);
        assert_eq!(key_order(&it, int, pos), Ordering::Less);
    }

    #[test]
    fn gallop_crossover_tracks_the_log_model() {
        // the kernels-test sizes: 1:160 gallops, 40:160 merges
        assert!(gallop_cost_wins(1, 160));
        assert!(!gallop_cost_wins(40, 160));
        // more aggressive than the fixed ratio where the log is small
        assert!(gallop_cost_wins(19, 160)); // 19·16 ≥ 160 but 19·8 < 160
        assert!(!gallop_cost_wins(0, 0));
        assert!(gallop_cost_wins(0, 1));
    }

    #[test]
    fn epoch_counts_mutations_but_not_content() {
        let mut a = Statistics::default();
        let mut b = Statistics::default();
        assert_eq!(a.epoch(), 0);
        a.note_insert(NodeId(0));
        a.note_delete(NodeId(0));
        assert_eq!(a.epoch(), 2);
        a.set_placement_occs(Vec::new());
        assert_eq!(a.epoch(), 3);
        // same content reached through a shorter maintenance history:
        // equal despite the diverged epochs — same_state must not see them
        b.note_insert(NodeId(0));
        b.note_delete(NodeId(0));
        assert_eq!(b.epoch(), 2);
        assert_eq!(a, b);
        // but the epoch alone distinguishes the histories (plan-cache keys)
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn selectivity_clamps_and_handles_unknown_columns() {
        let s = Statistics::default();
        let n = NodeId(3);
        assert_eq!(s.extent_rows(n), 0);
        assert!(s.column(n, 0).is_none());
        let est = s.estimate_matches(n, 0, CmpKind::Eq, |_| Ordering::Equal);
        assert_eq!(est.rows(), 0);
        let sel = s.selectivity(n, 0, CmpKind::Eq, |_| Ordering::Equal);
        assert_eq!(sel.0, 0.0);
    }
}

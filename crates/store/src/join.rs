//! The two join primitives.
//!
//! **Structural join** (Al-Khalifa et al., ICDE 2002): given ancestor
//! candidates and descendant candidates in one color, both in document
//! order, produce the containment pairs with a single stack-based merge —
//! `O(|anc| + |desc| + |output|)`, no hashing, no value materialization.
//!
//! **Value join**: the id/idref fallback for associations a schema does not
//! capture structurally. Builds a hash table over one side's attribute
//! values and probes with the other side — every probe materializes and
//! hashes attribute values, which is the cost asymmetry the paper's whole
//! design space is about (and which `benches/structural_vs_value.rs`
//! measures).

use crate::database::{Database, ElementId, OccId, Occurrence};
use crate::metrics::Metrics;
use crate::value::{Value, ValueKey};
use colorist_mct::ColorId;
use std::collections::HashMap;

/// What a value join compares on one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrRef {
    /// The element's implicit id (the logical ordinal every element carries
    /// as an XML `id` attribute; idref attributes store these).
    Id,
    /// A declared attribute, by index into the element's attribute vector.
    Attr(usize),
}

/// Fetch the referenced value of an element.
pub fn attr_value(db: &Database, e: ElementId, r: AttrRef) -> Value {
    match r {
        AttrRef::Id => Value::Int(db.element(db.element(e).canonical).ordinal as i64),
        AttrRef::Attr(i) => db.element(e).attrs[i].clone(),
    }
}

/// The vertical axis of a structural join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Parent-child (levels differ by exactly one).
    Child,
    /// Ancestor-descendant (any positive level difference).
    Descendant,
}

/// Stack-based structural join: all `(ancestor, descendant)` pairs from
/// `anc × desc` under interval containment in color `c`.
///
/// Both inputs must be sorted by `start` (document order) — as produced by
/// [`crate::database::ColorTree::of_placement`] and by upstream joins.
pub fn structural_join(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    axis: Axis,
    metrics: &mut Metrics,
) -> Vec<(OccId, OccId)> {
    metrics.structural_joins += 1;
    metrics.elements_scanned += (anc.len() + desc.len()) as u64;
    let tree = db.color(c);
    let occ = |o: OccId| -> &Occurrence { tree.occ(o) };

    let mut out = Vec::new();
    let mut stack: Vec<OccId> = Vec::new();
    let (mut ai, mut di) = (0usize, 0usize);
    while di < desc.len() {
        let d = occ(desc[di]);
        // push ancestors that start before d
        while ai < anc.len() && occ(anc[ai]).start < d.start {
            // pop finished ancestors first
            while let Some(&top) = stack.last() {
                if occ(top).end < occ(anc[ai]).start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(anc[ai]);
            ai += 1;
        }
        // pop ancestors that ended before d starts
        while let Some(&top) = stack.last() {
            if occ(top).end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        for &a in stack.iter() {
            let ao = occ(a);
            if ao.start < d.start && d.end <= ao.end {
                match axis {
                    Axis::Descendant => out.push((a, desc[di])),
                    Axis::Child => {
                        if ao.level + 1 == d.level {
                            out.push((a, desc[di]));
                        }
                    }
                }
            }
        }
        di += 1;
    }
    // keep descendant-major document order for downstream joins
    out
}

/// Hash value join: pairs `(l, r)` with `l.attrs[left_attr]` matching
/// `r.attrs[right_attr]`.
pub fn value_join(
    db: &Database,
    left: &[ElementId],
    left_attr: AttrRef,
    right: &[ElementId],
    right_attr: AttrRef,
    metrics: &mut Metrics,
) -> Vec<(ElementId, ElementId)> {
    metrics.value_joins += 1;
    metrics.elements_scanned += (left.len() + right.len()) as u64;
    // build on the smaller side
    let (build, build_attr, probe, probe_attr, swapped) = if left.len() <= right.len() {
        (left, left_attr, right, right_attr, false)
    } else {
        (right, right_attr, left, left_attr, true)
    };
    let mut table: HashMap<ValueKey, Vec<ElementId>> = HashMap::with_capacity(build.len());
    for &e in build {
        let v = attr_value(db, e, build_attr);
        table.entry(v.join_key()).or_default().push(e);
    }
    let mut out = Vec::new();
    for &e in probe {
        let v = attr_value(db, e, probe_attr);
        if let Some(matches) = table.get(&v.join_key()) {
            for &m in matches {
                out.push(if swapped { (e, m) } else { (m, e) });
            }
        }
    }
    out
}

/// Reference implementations used by property tests: quadratic nested-loop
/// versions of both joins.
pub mod naive {
    use super::*;

    /// Quadratic structural join (test oracle).
    pub fn structural_join(
        db: &Database,
        c: ColorId,
        anc: &[OccId],
        desc: &[OccId],
        axis: Axis,
    ) -> Vec<(OccId, OccId)> {
        let tree = db.color(c);
        let mut out = Vec::new();
        for &d in desc {
            for &a in anc {
                let ao = tree.occ(a);
                let dd = tree.occ(d);
                let contains = ao.start < dd.start && dd.end <= ao.end;
                let ok = match axis {
                    Axis::Descendant => contains,
                    Axis::Child => contains && ao.level + 1 == dd.level,
                };
                if ok {
                    out.push((a, d));
                }
            }
        }
        out
    }

    /// Quadratic value join (test oracle).
    pub fn value_join(
        db: &Database,
        left: &[ElementId],
        left_attr: AttrRef,
        right: &[ElementId],
        right_attr: AttrRef,
    ) -> Vec<(ElementId, ElementId)> {
        let mut out = Vec::new();
        for &l in left {
            for &r in right {
                if attr_value(db, l, left_attr).matches(&attr_value(db, r, right_attr)) {
                    out.push((l, r));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::value::Value;
    use colorist_er::{Attribute, ErDiagram, ErGraph};

    /// Build a database over a 1:m chain with `n_a` roots each having
    /// `per_a` relationship children each with one `b` child.
    fn chain_db(n_a: usize, per_a: usize) -> (ErGraph, Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::key("a_ref")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s, g.node_count());
        let mut bi = 0i64;
        for ai in 0..n_a {
            let ea = bd.add_canonical(a, vec![Value::Int(ai as i64)]);
            let oa = bd.add_occurrence(c, ea, pa, None);
            for _ in 0..per_a {
                let er = bd.add_canonical(r, vec![]);
                let or = bd.add_occurrence(c, er, pr, Some(oa));
                let eb = bd.add_canonical(b, vec![Value::Int(bi), Value::Int(ai as i64)]);
                bd.add_occurrence(c, eb, pb, Some(or));
                bi += 1;
            }
        }
        (g, bd.finish())
    }

    #[test]
    fn structural_join_matches_naive() {
        let (g, db) = chain_db(5, 3);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let anc = db.color(c).of_placement(pa).to_vec();
        let desc = db.color(c).of_placement(pb).to_vec();
        let mut m = Metrics::default();
        for axis in [Axis::Descendant, Axis::Child] {
            let fast = structural_join(&db, c, &anc, &desc, axis, &mut m);
            let slow = naive::structural_join(&db, c, &anc, &desc, axis);
            assert_eq!(fast, slow, "{axis:?}");
        }
        // every b has exactly one a ancestor at distance 2
        let fast = structural_join(&db, c, &anc, &desc, Axis::Descendant, &mut m);
        assert_eq!(fast.len(), 15);
        let children = structural_join(&db, c, &anc, &desc, Axis::Child, &mut m);
        assert!(children.is_empty(), "b is a grandchild, not a child");
        assert_eq!(m.structural_joins, 4);
    }

    #[test]
    fn structural_join_with_subset_inputs() {
        let (g, db) = chain_db(4, 2);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        // only the second a, all bs
        let anc = vec![db.color(c).of_placement(pa)[1]];
        let desc = db.color(c).of_placement(pb).to_vec();
        let mut m = Metrics::default();
        let pairs = structural_join(&db, c, &anc, &desc, Axis::Descendant, &mut m);
        assert_eq!(pairs.len(), 2);
        for (x, y) in pairs {
            assert!(db.color(c).is_ancestor(x, y));
        }
    }

    #[test]
    fn value_join_matches_naive_and_counts() {
        let (g, db) = chain_db(6, 2);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        // join a.id = b.a_ref
        let fast = value_join(&db, &la, AttrRef::Attr(0), &lb, AttrRef::Attr(1), &mut m);
        let mut slow = naive::value_join(&db, &la, AttrRef::Attr(0), &lb, AttrRef::Attr(1));
        let mut fast_sorted = fast.clone();
        fast_sorted.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast_sorted, slow);
        assert_eq!(fast.len(), 12);
        assert_eq!(m.value_joins, 1);
        assert_eq!(m.elements_scanned, 18);
    }

    #[test]
    fn value_join_build_side_selection_is_transparent() {
        let (g, db) = chain_db(2, 5);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        // left bigger than right: output sides must stay (left, right)
        let out = value_join(&db, &lb, AttrRef::Attr(1), &la, AttrRef::Id, &mut m);
        for (l, r) in out {
            assert_eq!(db.element(l).node, b);
            assert_eq!(db.element(r).node, a);
        }
    }
}

//! The two join primitives.
//!
//! **Structural join** (Al-Khalifa et al., ICDE 2002): given ancestor
//! candidates and descendant candidates in one color, both in document
//! order, produce the containment pairs with a single stack-based merge —
//! `O(|anc| + |desc| + |output|)`, no hashing, no value materialization.
//!
//! **Value join**: the id/idref fallback for associations a schema does not
//! capture structurally. Builds a hash table over one side's attribute
//! values and probes with the other side — every probe materializes and
//! hashes attribute values, which is the cost asymmetry the paper's whole
//! design space is about (and which `benches/structural_vs_value.rs`
//! measures).
//!
//! Each structural kernel comes in two interchangeable implementations:
//! the stack **merge** (`*_merge`), which walks both inputs end to end, and
//! a **gallop** variant that binary-searches past non-joining runs when one
//! side is much smaller — the small side drives, and each of its
//! occurrences either probes the large side's `start`-sorted window
//! (ancestors driving) or climbs its parent chain and membership-tests the
//! ancestor list (descendants driving). [`structural_join`] and
//! [`structural_semi_join`] dispatch between them on the side-size ratio
//! ([`GALLOP_RATIO`]) unless the database pins
//! `Database::reference_kernels`. Both produce byte-identical output; only
//! the deterministic cost counters differ (gallop charges what it examined
//! and credits `elements_skipped` with what it leapt over).

use crate::database::{Database, ElementId, OccId, Occurrence};
use crate::metrics::Metrics;
use crate::value::{Value, ValueKey};
use colorist_mct::ColorId;
use std::borrow::Cow;
use std::collections::HashMap;

/// What a value join compares on one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrRef {
    /// The element's implicit id (the logical ordinal every element carries
    /// as an XML `id` attribute; idref attributes store these).
    Id,
    /// A declared attribute, by index into the element's attribute vector.
    Attr(usize),
}

/// Fetch the referenced value of an element (clones text; the join paths
/// use [`attr_key`] instead, which never allocates).
pub fn attr_value(db: &Database, e: ElementId, r: AttrRef) -> Value {
    match r {
        AttrRef::Id => Value::Int(db.element(db.element(e).canonical).ordinal as i64),
        AttrRef::Attr(i) => db.element(e).attrs[i].clone(),
    }
}

/// The `Copy` join key of an element's referenced value — zero allocations
/// per call (text resolves through the database's symbol table).
#[inline]
pub fn attr_key(db: &Database, e: ElementId, r: AttrRef) -> ValueKey {
    match r {
        AttrRef::Id => ValueKey::Num(db.element(db.element(e).canonical).ordinal as i64),
        AttrRef::Attr(i) => db.join_key(&db.element(e).attrs[i]),
    }
}

/// The vertical axis of a structural join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Parent-child (levels differ by exactly one).
    Child,
    /// Ancestor-descendant (any positive level difference).
    Descendant,
}

/// Statistics-free fallback for the merge-vs-gallop dispatch: under
/// [`KernelDispatch::Ratio`](crate::database::KernelDispatch::Ratio),
/// gallop runs when `min(|anc|, |desc|) * GALLOP_RATIO < max(|anc|,
/// |desc|)`. The merge costs `O(|anc| + |desc|)` regardless of asymmetry
/// while gallop costs `O(small · (log large + matches))`, so the crossover
/// is where the small side's per-element binary search beats walking the
/// large side; 16 approximates the `log`-factor with a wide safety margin.
/// The default dispatch
/// ([`CostModel`](crate::database::KernelDispatch::CostModel)) replaces
/// the fixed ratio with the estimator's crossover,
/// [`gallop_cost_wins`](crate::statistics::gallop_cost_wins), which tracks
/// the actual `⌈log₂ large⌉` instead of a constant.
pub const GALLOP_RATIO: usize = 16;

/// Deterministic, size-only gallop dispatch decision, per the database's
/// [`KernelDispatch`](crate::database::KernelDispatch) mode.
fn gallop_applies(db: &Database, anc: usize, desc: usize) -> bool {
    use crate::database::KernelDispatch;
    let (small, large) = if anc <= desc { (anc, desc) } else { (desc, anc) };
    match db.kernel_dispatch() {
        KernelDispatch::Reference => false,
        KernelDispatch::Ratio => small.saturating_mul(GALLOP_RATIO) < large,
        KernelDispatch::CostModel => crate::statistics::gallop_cost_wins(small, large),
    }
}

/// Structural join: all `(ancestor, descendant)` pairs from `anc × desc`
/// under interval containment in color `c`.
///
/// Both inputs must be sorted by `start` (document order) — as produced by
/// [`crate::database::ColorTree::of_placement`] and by upstream joins.
/// Dispatches to [`structural_join_gallop`] when the side-size ratio
/// crosses [`GALLOP_RATIO`] (and the database does not pin the reference
/// kernels), otherwise to [`structural_join_merge`]; the output is
/// identical either way.
pub fn structural_join(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    axis: Axis,
    metrics: &mut Metrics,
) -> Vec<(OccId, OccId)> {
    if gallop_applies(db, anc.len(), desc.len()) {
        structural_join_gallop(db, c, anc, desc, axis, metrics)
    } else {
        structural_join_merge(db, c, anc, desc, axis, metrics)
    }
}

/// The stack-merge reference implementation of [`structural_join`]:
/// a single `O(|anc| + |desc| + |output|)` pass over both inputs.
pub fn structural_join_merge(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    axis: Axis,
    metrics: &mut Metrics,
) -> Vec<(OccId, OccId)> {
    metrics.structural_joins += 1;
    metrics.elements_scanned += (anc.len() + desc.len()) as u64;
    metrics.bytes_touched += ((anc.len() + desc.len()) * std::mem::size_of::<Occurrence>()) as u64;
    let tree = db.color(c);
    let occ = |o: OccId| -> &Occurrence { tree.occ(o) };

    let mut out = Vec::new();
    let mut stack: Vec<OccId> = Vec::new();
    let (mut ai, mut di) = (0usize, 0usize);
    while di < desc.len() {
        let d = occ(desc[di]);
        // push ancestors that start before d
        while ai < anc.len() && occ(anc[ai]).start < d.start {
            // pop finished ancestors first
            while let Some(&top) = stack.last() {
                if occ(top).end < occ(anc[ai]).start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(anc[ai]);
            ai += 1;
        }
        // pop ancestors that ended before d starts
        while let Some(&top) = stack.last() {
            if occ(top).end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        metrics.join_probes += stack.len() as u64;
        for &a in stack.iter() {
            let ao = occ(a);
            if ao.start < d.start && d.end <= ao.end {
                match axis {
                    Axis::Descendant => out.push((a, desc[di])),
                    Axis::Child => {
                        if ao.level + 1 == d.level {
                            out.push((a, desc[di]));
                        }
                    }
                }
            }
        }
        di += 1;
    }
    // keep descendant-major document order for downstream joins
    out
}

/// Gallop-skipping implementation of [`structural_join`]: the smaller side
/// drives and the larger side is entered by binary search, so runs of the
/// large input with no partner are never touched (they are credited to
/// `Metrics::elements_skipped`). Output is byte-identical to
/// [`structural_join_merge`] — descendant-major document order.
///
/// With few ancestors, each ancestor binary-searches the descendants for
/// its `(start, end)` window and scans only that window (interval nesting
/// within one color tree makes every window entry a true descendant). With
/// few descendants, each descendant climbs its parent chain and
/// membership-tests the chain against the ancestor list (document order is
/// `OccId` order after relabelling, so membership is a binary search).
pub fn structural_join_gallop(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    axis: Axis,
    metrics: &mut Metrics,
) -> Vec<(OccId, OccId)> {
    metrics.structural_joins += 1;
    let tree = db.color(c);
    let occ = |o: OccId| -> &Occurrence { tree.occ(o) };
    let mut out = Vec::new();
    let mut examined: u64 = 0;
    if anc.len() <= desc.len() {
        for &a in anc {
            let ao = occ(a);
            let lo = desc.partition_point(|&d| occ(d).start <= ao.start);
            for &d in &desc[lo..] {
                let dd = occ(d);
                if dd.start >= ao.end {
                    break;
                }
                examined += 1;
                metrics.join_probes += 1;
                if dd.end <= ao.end {
                    match axis {
                        Axis::Descendant => out.push((a, d)),
                        Axis::Child => {
                            if ao.level + 1 == dd.level {
                                out.push((a, d));
                            }
                        }
                    }
                }
            }
        }
        charge_gallop(metrics, anc.len(), desc.len(), examined);
    } else {
        for &d in desc {
            let dd = *occ(d);
            let mut cur = dd.parent;
            while let Some(p) = cur {
                examined += 1;
                metrics.join_probes += 1;
                let po = occ(p);
                if anc.binary_search(&p).is_ok() {
                    match axis {
                        Axis::Descendant => out.push((p, d)),
                        Axis::Child => {
                            if po.level + 1 == dd.level {
                                out.push((p, d));
                            }
                        }
                    }
                }
                if axis == Axis::Child {
                    break; // only the immediate parent can qualify
                }
                cur = po.parent;
            }
        }
        charge_gallop(metrics, desc.len(), anc.len(), examined);
    }
    // restore the merge kernel's descendant-major document order
    out.sort_unstable_by_key(|&(a, d)| (d, a));
    out
}

/// Gallop cost accounting: the driving (small) side plus everything the
/// large side actually exposed is scanned; the rest of the large side was
/// proven irrelevant without being touched.
fn charge_gallop(metrics: &mut Metrics, small: usize, large: usize, examined: u64) {
    metrics.elements_scanned += small as u64 + examined;
    metrics.elements_skipped += (large as u64).saturating_sub(examined);
    metrics.bytes_touched += (small as u64 + examined) * std::mem::size_of::<Occurrence>() as u64;
}

/// Hash value join: pairs `(l, r)` with `l.attrs[left_attr]` matching
/// `r.attrs[right_attr]`.
pub fn value_join(
    db: &Database,
    left: &[ElementId],
    left_attr: AttrRef,
    right: &[ElementId],
    right_attr: AttrRef,
    metrics: &mut Metrics,
) -> Vec<(ElementId, ElementId)> {
    metrics.value_joins += 1;
    metrics.elements_scanned += (left.len() + right.len()) as u64;
    metrics.bytes_touched += ((left.len() + right.len()) * std::mem::size_of::<ValueKey>()) as u64;
    // build on the smaller side
    let (build, build_attr, probe, probe_attr, swapped) = if left.len() <= right.len() {
        (left, left_attr, right, right_attr, false)
    } else {
        (right, right_attr, left, left_attr, true)
    };
    let mut table: HashMap<ValueKey, Vec<ElementId>> = HashMap::with_capacity(build.len());
    for &e in build {
        table.entry(attr_key(db, e, build_attr)).or_default().push(e);
    }
    let mut out = Vec::new();
    metrics.join_probes += probe.len() as u64;
    for &e in probe {
        // keys are Copy (text is interned): no per-probe String allocation
        if let Some(matches) = table.get(&attr_key(db, e, probe_attr)) {
            for &m in matches {
                out.push(if swapped { (e, m) } else { (m, e) });
            }
        }
    }
    out
}

/// Which side a [`structural_semi_join`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiSide {
    /// Keep ancestors having at least one qualifying descendant.
    Ancestor,
    /// Keep descendants having at least one qualifying ancestor.
    Descendant,
}

/// Structural **semi**-join: the subset of one side with at least one
/// containment partner on the other, in color `c`.
///
/// Unlike [`structural_join`] this never materializes `(anc, desc)` pairs —
/// each kept occurrence is emitted exactly once — so the output is at most
/// one side's input, not the cross product. `depth` of `Some(k)`
/// additionally requires the level distance to be exactly `k` (so
/// `Some(1)` is [`Axis::Child`]); `None` accepts any ancestor-descendant
/// distance.
///
/// Both inputs must be sorted by `start` (document order). The output is in
/// document order and duplicate-free. Dispatches to
/// [`structural_semi_join_gallop`] when the side-size ratio crosses
/// [`GALLOP_RATIO`] (and the database does not pin the reference kernels),
/// otherwise to [`structural_semi_join_merge`]; the output is identical
/// either way.
pub fn structural_semi_join(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    keep: SemiSide,
    depth: Option<u16>,
    metrics: &mut Metrics,
) -> Vec<OccId> {
    if gallop_applies(db, anc.len(), desc.len()) {
        structural_semi_join_gallop(db, c, anc, desc, keep, depth, metrics)
    } else {
        structural_semi_join_merge(db, c, anc, desc, keep, depth, metrics)
    }
}

/// The stack-merge reference implementation of [`structural_semi_join`]:
/// one pass over both inputs, with early exit as soon as a kept
/// occurrence's first partner is found.
pub fn structural_semi_join_merge(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    keep: SemiSide,
    depth: Option<u16>,
    metrics: &mut Metrics,
) -> Vec<OccId> {
    metrics.structural_joins += 1;
    metrics.elements_scanned += (anc.len() + desc.len()) as u64;
    metrics.bytes_touched += ((anc.len() + desc.len()) * std::mem::size_of::<Occurrence>()) as u64;
    let tree = db.color(c);
    let occ = |o: OccId| -> &Occurrence { tree.occ(o) };
    let level_ok = |a: &Occurrence, d: &Occurrence| {
        depth.is_none_or(|k| a.level as u32 + k as u32 == d.level as u32)
    };

    let mut out = Vec::new();
    // (ancestor, already emitted) — the emitted flag makes the Ancestor
    // side duplicate-free without a pair vector or a hash set
    let mut stack: Vec<(OccId, bool)> = Vec::new();
    let (mut ai, mut di) = (0usize, 0usize);
    while di < desc.len() {
        let d = occ(desc[di]);
        // push ancestors that start before d
        while ai < anc.len() && occ(anc[ai]).start < d.start {
            // pop finished ancestors first
            while let Some(&(top, _)) = stack.last() {
                if occ(top).end < occ(anc[ai]).start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push((anc[ai], false));
            ai += 1;
        }
        // pop ancestors that ended before d starts
        while let Some(&(top, _)) = stack.last() {
            if occ(top).end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        match keep {
            SemiSide::Descendant => {
                for &(a, _) in stack.iter() {
                    metrics.join_probes += 1;
                    let ao = occ(a);
                    if ao.start < d.start && d.end <= ao.end && level_ok(ao, d) {
                        out.push(desc[di]);
                        break; // early exit: one partner suffices
                    }
                }
            }
            SemiSide::Ancestor => {
                for (a, emitted) in stack.iter_mut() {
                    metrics.join_probes += 1;
                    if *emitted {
                        continue;
                    }
                    let ao = occ(*a);
                    if ao.start < d.start && d.end <= ao.end && level_ok(ao, d) {
                        out.push(*a);
                        *emitted = true;
                    }
                }
            }
        }
        di += 1;
    }
    // Descendant outputs arrive in document order already; ancestors are
    // emitted at their first partner, so restore document order
    if keep == SemiSide::Ancestor {
        out.sort_unstable();
    }
    out
}

/// Gallop-skipping implementation of [`structural_semi_join`]: same
/// driving-side strategy as [`structural_join_gallop`], with the
/// semi-join's early exits (an ancestor stops scanning its window at the
/// first qualifying descendant; a descendant stops climbing at the first
/// qualifying ancestor). Output is byte-identical to
/// [`structural_semi_join_merge`] — document order, duplicate-free.
pub fn structural_semi_join_gallop(
    db: &Database,
    c: ColorId,
    anc: &[OccId],
    desc: &[OccId],
    keep: SemiSide,
    depth: Option<u16>,
    metrics: &mut Metrics,
) -> Vec<OccId> {
    metrics.structural_joins += 1;
    let tree = db.color(c);
    let occ = |o: OccId| -> &Occurrence { tree.occ(o) };
    let level_ok = |a: &Occurrence, d: &Occurrence| {
        depth.is_none_or(|k| a.level as u32 + k as u32 == d.level as u32)
    };
    let mut out = Vec::new();
    let mut examined: u64 = 0;
    if anc.len() <= desc.len() {
        // ancestors drive: window-scan the descendants per ancestor
        for &a in anc {
            let ao = occ(a);
            let lo = desc.partition_point(|&d| occ(d).start <= ao.start);
            for &d in &desc[lo..] {
                let dd = occ(d);
                if dd.start >= ao.end {
                    break;
                }
                examined += 1;
                metrics.join_probes += 1;
                if dd.end <= ao.end && level_ok(ao, dd) {
                    match keep {
                        SemiSide::Ancestor => {
                            out.push(a);
                            break; // early exit: one partner suffices
                        }
                        // nested ancestors may both expose the same
                        // descendant; dedup below
                        SemiSide::Descendant => out.push(d),
                    }
                }
            }
        }
        if keep == SemiSide::Descendant {
            out.sort_unstable();
            out.dedup();
        }
        charge_gallop(metrics, anc.len(), desc.len(), examined);
    } else {
        // descendants drive: climb the parent chain, membership-test `anc`
        for &d in desc {
            let dd = *occ(d);
            let mut cur = dd.parent;
            let mut dist: u16 = 1;
            while let Some(p) = cur {
                examined += 1;
                let po = occ(p);
                // with an exact depth only the k-th parent can qualify, so
                // the chain is climbed without probing until that level
                if depth.is_none_or(|k| k == dist) {
                    metrics.join_probes += 1;
                    if anc.binary_search(&p).is_ok() {
                        match keep {
                            SemiSide::Descendant => {
                                out.push(d);
                                break; // early exit: one partner suffices
                            }
                            SemiSide::Ancestor => out.push(p),
                        }
                    }
                }
                if depth.is_some_and(|k| dist >= k) {
                    break;
                }
                cur = po.parent;
                dist = dist.saturating_add(1);
            }
        }
        if keep == SemiSide::Ancestor {
            // several descendants may share an ancestor
            out.sort_unstable();
            out.dedup();
        }
        charge_gallop(metrics, desc.len(), anc.len(), examined);
    }
    out
}

/// K-way merge of sorted, pairwise-disjoint occurrence lists (e.g. the
/// per-placement document-order lists of one node in one color) into one
/// sorted list. Borrows when at most one input is non-empty, so the
/// single-placement case of a `Down` step allocates nothing. Inputs being
/// disjoint, no deduplication is performed.
pub fn kmerge_sorted<'a>(lists: &[&'a [OccId]]) -> Cow<'a, [OccId]> {
    let live: Vec<&'a [OccId]> = lists.iter().copied().filter(|l| !l.is_empty()).collect();
    match live.len() {
        0 => Cow::Owned(Vec::new()),
        1 => Cow::Borrowed(live[0]),
        _ => {
            // repeated min-pick over the heads: the fan-in is the number of
            // placements of one node in one color, which is tiny
            let total = live.iter().map(|l| l.len()).sum();
            let mut heads = vec![0usize; live.len()];
            let mut out: Vec<OccId> = Vec::with_capacity(total);
            loop {
                let mut best: Option<usize> = None;
                for (i, l) in live.iter().enumerate() {
                    if heads[i] < l.len() && best.is_none_or(|b| l[heads[i]] < live[b][heads[b]]) {
                        best = Some(i);
                    }
                }
                match best {
                    Some(i) => {
                        out.push(live[i][heads[i]]);
                        heads[i] += 1;
                    }
                    None => break,
                }
            }
            Cow::Owned(out)
        }
    }
}

/// Reference implementations used by property tests: quadratic nested-loop
/// versions of both joins.
pub mod naive {
    use super::*;

    /// Quadratic structural join (test oracle).
    pub fn structural_join(
        db: &Database,
        c: ColorId,
        anc: &[OccId],
        desc: &[OccId],
        axis: Axis,
    ) -> Vec<(OccId, OccId)> {
        let tree = db.color(c);
        let mut out = Vec::new();
        for &d in desc {
            for &a in anc {
                let ao = tree.occ(a);
                let dd = tree.occ(d);
                let contains = ao.start < dd.start && dd.end <= ao.end;
                let ok = match axis {
                    Axis::Descendant => contains,
                    Axis::Child => contains && ao.level + 1 == dd.level,
                };
                if ok {
                    out.push((a, d));
                }
            }
        }
        out
    }

    /// Quadratic value join (test oracle).
    pub fn value_join(
        db: &Database,
        left: &[ElementId],
        left_attr: AttrRef,
        right: &[ElementId],
        right_attr: AttrRef,
    ) -> Vec<(ElementId, ElementId)> {
        let mut out = Vec::new();
        for &l in left {
            for &r in right {
                if attr_value(db, l, left_attr).matches(&attr_value(db, r, right_attr)) {
                    out.push((l, r));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::value::Value;
    use colorist_er::{Attribute, ErDiagram, ErGraph};

    /// Build a database over a 1:m chain with `n_a` roots each having
    /// `per_a` relationship children each with one `b` child.
    fn chain_db(n_a: usize, per_a: usize) -> (ErGraph, Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::key("a_ref")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s, g.node_count());
        let mut bi = 0i64;
        for ai in 0..n_a {
            let ea = bd.add_canonical(a, vec![Value::Int(ai as i64)]);
            let oa = bd.add_occurrence(c, ea, pa, None);
            for _ in 0..per_a {
                let er = bd.add_canonical(r, vec![]);
                let or = bd.add_occurrence(c, er, pr, Some(oa));
                let eb = bd.add_canonical(b, vec![Value::Int(bi), Value::Int(ai as i64)]);
                bd.add_occurrence(c, eb, pb, Some(or));
                bi += 1;
            }
        }
        (g, bd.finish())
    }

    #[test]
    fn structural_join_matches_naive() {
        let (g, db) = chain_db(5, 3);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let anc = db.color(c).of_placement(pa).to_vec();
        let desc = db.color(c).of_placement(pb).to_vec();
        let mut m = Metrics::default();
        for axis in [Axis::Descendant, Axis::Child] {
            let fast = structural_join(&db, c, &anc, &desc, axis, &mut m);
            let slow = naive::structural_join(&db, c, &anc, &desc, axis);
            assert_eq!(fast, slow, "{axis:?}");
        }
        // every b has exactly one a ancestor at distance 2
        let fast = structural_join(&db, c, &anc, &desc, Axis::Descendant, &mut m);
        assert_eq!(fast.len(), 15);
        let children = structural_join(&db, c, &anc, &desc, Axis::Child, &mut m);
        assert!(children.is_empty(), "b is a grandchild, not a child");
        assert_eq!(m.structural_joins, 4);
    }

    #[test]
    fn structural_join_with_subset_inputs() {
        let (g, db) = chain_db(4, 2);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        // only the second a, all bs
        let anc = vec![db.color(c).of_placement(pa)[1]];
        let desc = db.color(c).of_placement(pb).to_vec();
        let mut m = Metrics::default();
        let pairs = structural_join(&db, c, &anc, &desc, Axis::Descendant, &mut m);
        assert_eq!(pairs.len(), 2);
        for (x, y) in pairs {
            assert!(db.color(c).is_ancestor(x, y));
        }
    }

    #[test]
    fn value_join_matches_naive_and_counts() {
        let (g, db) = chain_db(6, 2);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        // join a.id = b.a_ref
        let fast = value_join(&db, &la, AttrRef::Attr(0), &lb, AttrRef::Attr(1), &mut m);
        let mut slow = naive::value_join(&db, &la, AttrRef::Attr(0), &lb, AttrRef::Attr(1));
        let mut fast_sorted = fast.clone();
        fast_sorted.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast_sorted, slow);
        assert_eq!(fast.len(), 12);
        assert_eq!(m.value_joins, 1);
        assert_eq!(m.elements_scanned, 18);
    }

    /// Semi-join oracle: run the pair join, apply the depth filter, keep
    /// one side, dedup.
    fn semi_via_pairs(
        db: &Database,
        c: ColorId,
        anc: &[OccId],
        desc: &[OccId],
        keep: SemiSide,
        depth: Option<u16>,
    ) -> Vec<OccId> {
        let mut m = Metrics::default();
        let tree = db.color(c);
        let mut out: Vec<OccId> = structural_join(db, c, anc, desc, Axis::Descendant, &mut m)
            .into_iter()
            .filter(|&(a, d)| {
                depth
                    .is_none_or(|k| tree.occ(a).level as u32 + k as u32 == tree.occ(d).level as u32)
            })
            .map(|(a, d)| match keep {
                SemiSide::Ancestor => a,
                SemiSide::Descendant => d,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn structural_semi_join_matches_filtered_pair_join() {
        let (g, mut db) = chain_db(5, 3);
        // Pin the ratio fallback: the assertions below spell out the merge
        // kernel's exact charging, which the cost model would trade away by
        // galloping the single-ancestor cases.
        db.set_kernel_dispatch(crate::database::KernelDispatch::Ratio);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pr = db.schema.placements_of_in_color(r, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let anc_sets = [
            db.color(c).of_placement(pa).to_vec(),
            db.color(c).of_placement(pr).to_vec(),
            vec![db.color(c).of_placement(pa)[2]],
        ];
        let desc_sets =
            [db.color(c).of_placement(pb).to_vec(), db.color(c).of_placement(pr).to_vec()];
        for anc in &anc_sets {
            for desc in &desc_sets {
                for depth in [None, Some(1), Some(2), Some(7)] {
                    for keep in [SemiSide::Ancestor, SemiSide::Descendant] {
                        let mut m = Metrics::default();
                        let fast = structural_semi_join(&db, c, anc, desc, keep, depth, &mut m);
                        let slow = semi_via_pairs(&db, c, anc, desc, keep, depth);
                        assert_eq!(fast, slow, "{keep:?} depth {depth:?}");
                        assert_eq!(m.structural_joins, 1);
                        assert_eq!(m.elements_scanned, (anc.len() + desc.len()) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn structural_semi_join_counts_each_side_once() {
        // every a has 3 r children; keep=Ancestor must not emit an a per
        // child, and keep=Descendant must not emit an r per matching a
        let (g, db) = chain_db(4, 3);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pr = db.schema.placements_of_in_color(r, c)[0];
        let anc = db.color(c).of_placement(pa).to_vec();
        let desc = db.color(c).of_placement(pr).to_vec();
        let mut m = Metrics::default();
        let anc_out =
            structural_semi_join(&db, c, &anc, &desc, SemiSide::Ancestor, Some(1), &mut m);
        assert_eq!(anc_out.len(), 4);
        let desc_out =
            structural_semi_join(&db, c, &anc, &desc, SemiSide::Descendant, Some(1), &mut m);
        assert_eq!(desc_out.len(), 12);
    }

    /// Database over two entities sharing a text attribute with a small
    /// vocabulary (so text joins have real fan-out), plus an int key.
    fn text_db(n_a: usize, n_b: usize) -> (ErGraph, Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id"), Attribute::text("tag")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("tag")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = s.placements_of_in_color(a, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s, g.node_count());
        for i in 0..n_a {
            let e = bd.add_canonical(
                a,
                vec![Value::Int(i as i64), Value::Text(format!("tag_{}", i % 3))],
            );
            bd.add_occurrence(c, e, pa, None);
        }
        for i in 0..n_b {
            let e = bd.add_canonical(
                b,
                vec![Value::Int(i as i64), Value::Text(format!("tag_{}", i % 4))],
            );
            bd.add_occurrence(c, e, pb, None);
        }
        (g, bd.finish())
    }

    #[test]
    fn interned_text_value_join_matches_cloning_oracle() {
        let (g, db) = text_db(9, 14);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        // a.tag = b.tag — the text path the interner makes allocation-free
        let mut fast = value_join(&db, &la, AttrRef::Attr(1), &lb, AttrRef::Attr(1), &mut m);
        let mut slow = naive::value_join(&db, &la, AttrRef::Attr(1), &lb, AttrRef::Attr(1));
        fast.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty(), "vocabularies overlap on tag_0..tag_2");
        // key equality agrees with Value::matches on the text path
        for (l, r) in &fast {
            assert_eq!(attr_key(&db, *l, AttrRef::Attr(1)), attr_key(&db, *r, AttrRef::Attr(1)));
        }
    }

    #[test]
    fn value_join_sees_text_written_after_build() {
        let (g, db) = text_db(4, 6);
        let mut db = db;
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        // write a brand-new string (not in the build vocabulary) to one
        // element on each side: write_attr must intern it so the join still
        // matches them up
        db.write_attr(db.extent(a)[0], 1, Value::Text("fresh".into()));
        db.write_attr(db.extent(b)[5], 1, Value::Text("fresh".into()));
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        let mut fast = value_join(&db, &la, AttrRef::Attr(1), &lb, AttrRef::Attr(1), &mut m);
        let mut slow = naive::value_join(&db, &la, AttrRef::Attr(1), &lb, AttrRef::Attr(1));
        fast.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast, slow);
        assert!(fast.contains(&(db.extent(a)[0], db.extent(b)[5])));
    }

    #[test]
    fn value_join_build_side_selection_is_transparent() {
        let (g, db) = chain_db(2, 5);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.extent(a).to_vec();
        let lb = db.extent(b).to_vec();
        let mut m = Metrics::default();
        // left bigger than right: output sides must stay (left, right)
        let out = value_join(&db, &lb, AttrRef::Attr(1), &la, AttrRef::Id, &mut m);
        for (l, r) in out {
            assert_eq!(db.element(l).node, b);
            assert_eq!(db.element(r).node, a);
        }
    }

    /// Both gallop driving directions (small-ancestor windows and
    /// small-descendant chain climbs) must reproduce the merge kernels'
    /// output byte for byte, for the pair join and every semi-join shape.
    #[test]
    fn gallop_kernels_match_merge_kernels() {
        let (g, db) = chain_db(40, 4);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pr = db.schema.placements_of_in_color(r, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let every =
            |occs: &[OccId], k: usize| -> Vec<OccId> { occs.iter().copied().step_by(k).collect() };
        let anc_sets = [
            db.color(c).of_placement(pa).to_vec(),
            every(db.color(c).of_placement(pa), 13),
            vec![db.color(c).of_placement(pa)[7]],
            db.color(c).of_placement(pr).to_vec(),
            Vec::new(),
        ];
        let desc_sets = [
            db.color(c).of_placement(pb).to_vec(),
            every(db.color(c).of_placement(pb), 11),
            db.color(c).of_placement(pr).to_vec(),
            vec![db.color(c).of_placement(pb)[3]],
            Vec::new(),
        ];
        for anc in &anc_sets {
            for desc in &desc_sets {
                let mut m = Metrics::default();
                for axis in [Axis::Descendant, Axis::Child] {
                    assert_eq!(
                        structural_join_gallop(&db, c, anc, desc, axis, &mut m),
                        structural_join_merge(&db, c, anc, desc, axis, &mut m),
                        "pair {axis:?} |anc|={} |desc|={}",
                        anc.len(),
                        desc.len()
                    );
                }
                for keep in [SemiSide::Ancestor, SemiSide::Descendant] {
                    for depth in [None, Some(1), Some(2), Some(9)] {
                        assert_eq!(
                            structural_semi_join_gallop(&db, c, anc, desc, keep, depth, &mut m),
                            structural_semi_join_merge(&db, c, anc, desc, keep, depth, &mut m),
                            "semi {keep:?} depth {depth:?} |anc|={} |desc|={}",
                            anc.len(),
                            desc.len()
                        );
                    }
                }
            }
        }
    }

    /// The dispatchers go gallop only past the size ratio, never when the
    /// database pins the reference kernels, and the gallop cost model
    /// credits `elements_skipped` for the untouched large-side remainder.
    #[test]
    fn dispatch_ratio_and_reference_pin() {
        let (g, mut db) = chain_db(40, 4);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let one_a = vec![db.color(c).of_placement(pa)[7]];
        let all_b = db.color(c).of_placement(pb).to_vec(); // 160 ≫ 16·1
        let mut gallop_m = Metrics::default();
        let out =
            structural_semi_join(&db, c, &one_a, &all_b, SemiSide::Descendant, None, &mut gallop_m);
        assert_eq!(out.len(), 4, "one a owns 4 bs");
        assert!(gallop_m.elements_skipped > 0, "dispatcher chose gallop");
        assert!(
            gallop_m.elements_scanned < (one_a.len() + all_b.len()) as u64,
            "gallop scans less than the merge walk"
        );

        db.set_reference_kernels(true);
        let mut ref_m = Metrics::default();
        let ref_out =
            structural_semi_join(&db, c, &one_a, &all_b, SemiSide::Descendant, None, &mut ref_m);
        assert_eq!(ref_out, out, "pinning the reference path never changes answers");
        assert_eq!(ref_m.elements_skipped, 0, "merge skips nothing");
        assert_eq!(ref_m.elements_scanned, (one_a.len() + all_b.len()) as u64);
        db.set_reference_kernels(false);

        // balanced sides stay on the merge even unpinned
        let mut bal_m = Metrics::default();
        let all_a = db.color(c).of_placement(pa).to_vec(); // 40·⌈log₂ 160⌉ = 320 ≥ 160
        structural_semi_join(&db, c, &all_a, &all_b, SemiSide::Descendant, None, &mut bal_m);
        assert_eq!(bal_m.elements_skipped, 0);
        assert_eq!(bal_m.elements_scanned, (all_a.len() + all_b.len()) as u64);

        // 19 vs 160 separates the two non-reference dispatchers: the cost
        // model gallops (19·⌈log₂ 160⌉ = 152 < 160) while the ratio fallback
        // merges (19·16 = 304 ≥ 160).
        let nineteen_a = all_a[..19].to_vec();
        assert_eq!(db.kernel_dispatch(), crate::database::KernelDispatch::CostModel);
        let mut cost_m = Metrics::default();
        let cost_out = structural_semi_join(
            &db,
            c,
            &nineteen_a,
            &all_b,
            SemiSide::Descendant,
            None,
            &mut cost_m,
        );
        assert!(cost_m.elements_skipped > 0, "cost model chose gallop");

        db.set_kernel_dispatch(crate::database::KernelDispatch::Ratio);
        let mut ratio_m = Metrics::default();
        let ratio_out = structural_semi_join(
            &db,
            c,
            &nineteen_a,
            &all_b,
            SemiSide::Descendant,
            None,
            &mut ratio_m,
        );
        assert_eq!(ratio_out, cost_out, "dispatch mode never changes answers");
        assert_eq!(ratio_m.elements_skipped, 0, "ratio fallback stayed on the merge");
        assert_eq!(ratio_m.elements_scanned, (nineteen_a.len() + all_b.len()) as u64);
        assert!(
            cost_m.elements_scanned + cost_m.join_probes + cost_m.bytes_touched
                <= ratio_m.elements_scanned + ratio_m.join_probes + ratio_m.bytes_touched,
            "cost dispatch never exceeds the fallback's gate sum here"
        );
    }

    #[test]
    fn kmerge_sorted_merges_disjoint_lists_and_borrows_trivial_cases() {
        let (g, db) = chain_db(6, 2);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let la = db.color(c).of_placement(db.schema.placements_of_in_color(a, c)[0]);
        let lb = db.color(c).of_placement(db.schema.placements_of_in_color(b, c)[0]);
        let merged = kmerge_sorted(&[la, lb]);
        let mut expected: Vec<OccId> = la.iter().chain(lb.iter()).copied().collect();
        expected.sort_unstable();
        assert_eq!(merged.as_ref(), expected.as_slice());
        assert!(matches!(kmerge_sorted(&[la, lb]), std::borrow::Cow::Owned(_)));
        assert!(matches!(kmerge_sorted(&[la]), std::borrow::Cow::Borrowed(_)));
        assert!(matches!(kmerge_sorted(&[la, &[]]), std::borrow::Cow::Borrowed(_)));
        assert!(kmerge_sorted(&[]).is_empty());
        assert!(kmerge_sorted(&[&[], &[]]).is_empty());
    }
}
